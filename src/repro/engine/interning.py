"""State interning: hash each discovered state exactly once.

Exploration is the one place the engine still touches :class:`State`
objects; everything downstream works on the integer indices handed out
here.  The interner's fast path is a single ``dict.setdefault`` — the old
``index.get`` / insert pair hashed every already-known successor twice,
which on dense graphs (every state re-discovered once per incoming edge)
doubles the hashing bill of exploration.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.ts.system import State


class StateInterner:
    """Bidirectional ``State ↔ index`` map with a single-hash intern path."""

    __slots__ = ("_index", "_states")

    def __init__(self) -> None:
        self._index: Dict[State, int] = {}
        self._states: List[State] = []

    def __len__(self) -> int:
        return len(self._states)

    def __contains__(self, state: State) -> bool:
        return state in self._index

    def intern(self, state: State) -> Tuple[int, bool]:
        """``(index, is_new)`` for ``state``, hashing it exactly once.

        ``setdefault`` probes the table a single time: if the state is
        already interned the candidate index is discarded, otherwise the
        insert has already happened and only the side tables need updating.
        """
        candidate = len(self._states)
        index = self._index.setdefault(state, candidate)
        if index != candidate:
            return index, False
        self._states.append(state)
        return index, True

    def lookup(self, state: State) -> int | None:
        """The index of ``state`` without interning it (one hash)."""
        return self._index.get(state)

    def state_of(self, index: int) -> State:
        """The state interned at ``index``."""
        return self._states[index]

    @property
    def states(self) -> List[State]:
        """All interned states in discovery order (shared, do not mutate)."""
        return self._states

    @property
    def index(self) -> Dict[State, int]:
        """The underlying ``State → index`` dict (shared, do not mutate)."""
        return self._index
