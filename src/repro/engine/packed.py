"""Packed transition storage: flat int arrays instead of object graphs.

A transition is three small integers — ``(source, command_id, target)`` —
and the engine stores exactly that, in three parallel ``array('q')``
columns indexed by *transition id* (the position in the graph's original
transition order, which all deterministic guarantees are phrased in).
Adjacency is CSR: ``out_start[i]:out_start[i+1]`` slices ``out_eid`` into
the transition ids leaving state ``i``, in original transition order (the
counting sort below is stable), so iteration order matches the object API
exactly.

Command labels are interned to bit positions by :class:`CommandTable`;
per-state and per-region command sets then become plain ints, and the set
algebra of the fairness analyses (``enabled − executed`` etc.) becomes
bitwise arithmetic.
"""

from __future__ import annotations

from array import array
from typing import Dict, Iterable, List, Sequence, Tuple


class CommandTable:
    """Interns command labels to dense ids (= bit positions)."""

    __slots__ = ("_labels", "_ids", "_singletons", "_mask_cache")

    def __init__(self, labels: Sequence[str]) -> None:
        self._labels: Tuple[str, ...] = tuple(labels)
        self._ids: Dict[str, int] = {label: i for i, label in enumerate(self._labels)}
        if len(self._ids) != len(self._labels):
            raise ValueError(f"duplicate command labels in {self._labels!r}")
        self._singletons: Tuple[frozenset, ...] = tuple(
            frozenset({label}) for label in self._labels
        )
        self._mask_cache: Dict[int, frozenset] = {0: frozenset()}

    def __len__(self) -> int:
        return len(self._labels)

    @property
    def labels(self) -> Tuple[str, ...]:
        return self._labels

    def id_of(self, label: str) -> int:
        return self._ids[label]

    def label_of(self, command_id: int) -> str:
        return self._labels[command_id]

    def singleton(self, command_id: int) -> frozenset:
        """The cached one-element frozenset ``{label}`` for ``command_id``."""
        return self._singletons[command_id]

    def mask_of(self, labels: Iterable[str]) -> int:
        """The bitmask with the bit of every label in ``labels`` set."""
        mask = 0
        ids = self._ids
        for label in labels:
            mask |= 1 << ids[label]
        return mask

    def labels_of_mask(self, mask: int) -> frozenset:
        """The frozenset of labels whose bits are set in ``mask`` (cached).

        Distinct masks are few (bounded by the distinct command sets the
        analyses ever form), so caching turns the per-transition
        ``enabled(p) ∪ enabled(p')`` unions of the checker into a dict hit.
        """
        cached = self._mask_cache.get(mask)
        if cached is not None:
            return cached
        labels = self._labels
        result = frozenset(
            labels[i] for i in range(len(labels)) if mask & (1 << i)
        )
        self._mask_cache[mask] = result
        return result


class PackedGraph:
    """CSR view of an indexed transition list.

    ``src``/``cmd``/``dst`` are parallel columns over transition ids;
    ``out_start``/``out_eid`` give, per source state, the ids of its
    outgoing transitions in original order.  The structure is plain data
    (arrays of ints) and pickles cheaply, so parallel workers can receive
    sub-problems without dragging unpicklable systems or closures along.
    """

    __slots__ = ("n", "src", "cmd", "dst", "out_start", "out_eid")

    def __init__(
        self,
        n: int,
        src: array,
        cmd: array,
        dst: array,
        out_start: array,
        out_eid: array,
    ) -> None:
        self.n = n
        self.src = src
        self.cmd = cmd
        self.dst = dst
        self.out_start = out_start
        self.out_eid = out_eid

    @staticmethod
    def build(
        n: int,
        triples: Iterable[Tuple[int, int, int]],
    ) -> "PackedGraph":
        """Pack ``(source, command_id, target)`` triples for ``n`` states."""
        src = array("q")
        cmd = array("q")
        dst = array("q")
        for s, c, t in triples:
            src.append(s)
            cmd.append(c)
            dst.append(t)
        return PackedGraph.from_columns(n, src, cmd, dst)

    @staticmethod
    def from_columns(
        n: int,
        src: array,
        cmd: array,
        dst: array,
    ) -> "PackedGraph":
        """CSR-index already-materialized transition columns for ``n`` states.

        The columns are adopted, not copied — the explorer streams straight
        into them and hands them over, so a million-transition graph never
        exists as per-transition Python objects.
        """
        m = len(src)
        counts = [0] * (n + 1)
        for s in src:
            counts[s + 1] += 1
        for i in range(n):
            counts[i + 1] += counts[i]
        out_start = array("q", counts)
        out_eid = array("q", bytes(8 * m))
        cursor = list(out_start[:n])
        for eid in range(m):
            s = src[eid]
            out_eid[cursor[s]] = eid
            cursor[s] += 1
        return PackedGraph(n, src, cmd, dst, out_start, out_eid)

    def __len__(self) -> int:
        return len(self.src)

    def out_eids(self, state: int) -> Sequence[int]:
        """Transition ids leaving ``state``, in original transition order."""
        return self.out_eid[self.out_start[state] : self.out_start[state + 1]]

    def successors(self, state: int) -> List[int]:
        """Target indices of ``state``'s outgoing transitions, in order."""
        dst = self.dst
        return [dst[e] for e in self.out_eids(state)]
