"""Deterministic chunked process-pool map with adaptive serial dispatch.

The engine's parallel fan-out is deliberately boring: split the work items
into at most ``n_jobs`` contiguous chunks, farm the chunks out to a
process pool, and reassemble the results *in submission order*.  Chunks
are contiguous and ordered, so any reduction the caller performs over the
concatenated results is bit-identical to running the same function
serially — parallelism never changes a verdict, a witness, or even the
order of a violation list.

Two policies keep ``--jobs N`` from ever losing to the serial path:

* **Adaptive dispatch** (:func:`effective_jobs`): callers report an
  estimated work size (transitions to check, internal transitions to
  recurse over); below :data:`PARALLEL_WORK_CUTOFF` — or on a single-core
  machine, where a process pool can only add overhead — the request is
  demoted to serial.  ``REPRO_FORCE_PARALLEL=1`` disables the demotion so
  tests and smoke benches can exercise the pool at any scale.
* **A persistent worker pool** (:func:`get_pool`): the first parallel map
  creates the :class:`~concurrent.futures.ProcessPoolExecutor` lazily and
  every later map reuses it, so repeated ``check_measure`` /
  ``synthesize_measure`` calls pay worker start-up once per process, not
  once per call.  The pool is resized (recreated) only when a map asks for
  more workers than it has, and is shut down at interpreter exit.

The pool is an optimisation, not a dependency: ``n_jobs=None``/``0``/``1``
runs serially in-process, and any failure to *create* the pool (sandboxes
without fork, missing ``/dev/shm``, interpreter shutdown) silently falls
back to the serial path.  Worker functions must be module-level (picklable)
and must receive picklable payloads — closures over transition systems or
assignments stay in the parent; callers ship precomputed plain data.
"""

from __future__ import annotations

import atexit
import os
import time
from typing import Callable, List, Optional, Sequence, TypeVar

from repro.telemetry import core as telemetry
from repro.telemetry import events

T = TypeVar("T")
R = TypeVar("R")

#: Estimated work units (per-item checks, transitions, …) below which a
#: parallel request is demoted to serial.  Chunk pickling plus result
#: transfer costs on the order of milliseconds; under this cutoff the
#: serial path finishes before a pool would have received its first chunk.
PARALLEL_WORK_CUTOFF = 20_000

_FORCE_ENV = "REPRO_FORCE_PARALLEL"

_pool = None
_pool_workers = 0


def resolve_jobs(n_jobs: Optional[int]) -> int:
    """Normalise an ``n_jobs`` argument to a positive worker count.

    ``None`` and ``0`` mean serial; negative values mean "all cores"
    (joblib's ``-1`` convention).
    """
    if n_jobs is None or n_jobs == 0:
        return 1
    if n_jobs < 0:
        return max(1, os.cpu_count() or 1)
    return n_jobs


def effective_jobs(n_jobs: Optional[int], work_estimate: int) -> int:
    """The worker count actually worth using for ``work_estimate`` units.

    Returns 1 (serial) when the caller asked for serial, when the machine
    has a single core (a process pool cannot beat in-process execution
    there), or when the estimated work is below
    :data:`PARALLEL_WORK_CUTOFF` — this is the guarantee behind
    "``--jobs N`` is never slower than serial": small problems simply never
    reach the pool.  Setting ``REPRO_FORCE_PARALLEL=1`` skips the demotion
    (tests use it to exercise the pool on tiny inputs).
    """
    jobs = resolve_jobs(n_jobs)
    if jobs <= 1:
        return 1
    if os.environ.get(_FORCE_ENV) == "1":
        telemetry.count("parallel.dispatch.forced")
        return jobs
    if (os.cpu_count() or 1) <= 1:
        telemetry.count("parallel.dispatch.demoted_single_core")
        return 1
    if work_estimate < PARALLEL_WORK_CUTOFF:
        telemetry.count("parallel.dispatch.demoted_small_work")
        return 1
    telemetry.count("parallel.dispatch.parallel")
    return jobs


def get_pool(workers: int):
    """The shared process pool, created lazily and grown on demand.

    Returns ``None`` when a pool cannot be created (restricted sandboxes,
    interpreter shutdown) — callers fall back to serial.  The pool persists
    across calls; a request for more workers than the current pool has
    replaces it (the old pool finishes its work and is shut down).
    """
    global _pool, _pool_workers
    if _pool is not None and _pool_workers >= workers:
        return _pool
    start = time.perf_counter()
    try:
        from concurrent.futures import ProcessPoolExecutor

        new_pool = ProcessPoolExecutor(max_workers=workers)
    except (ImportError, OSError, RuntimeError, PermissionError):
        telemetry.count("parallel.pool.unavailable")
        return None
    if _pool is not None:
        _pool.shutdown(wait=False)
    _pool = new_pool
    _pool_workers = workers
    telemetry.count("parallel.pool.created")
    telemetry.gauge("parallel.pool.workers", workers)
    spinup = time.perf_counter() - start
    telemetry.observe("parallel.pool.spinup_s", spinup)
    events.emit(events.POOL_SPINUP, workers=workers, seconds=spinup)
    return _pool


def shutdown_pool() -> None:
    """Shut the persistent pool down (idempotent; re-created on next use)."""
    global _pool, _pool_workers
    if _pool is not None:
        _pool.shutdown(wait=True)
        _pool = None
        _pool_workers = 0


atexit.register(shutdown_pool)


def chunk_items(items: Sequence[T], chunks: int) -> List[Sequence[T]]:
    """Split ``items`` into at most ``chunks`` contiguous, ordered parts.

    Parts differ in size by at most one, every item appears exactly once,
    and concatenating the parts yields ``items`` — the invariant all
    determinism guarantees rest on.
    """
    total = len(items)
    chunks = max(1, min(chunks, total)) if total else 1
    base, extra = divmod(total, chunks)
    parts: List[Sequence[T]] = []
    start = 0
    for i in range(chunks):
        size = base + (1 if i < extra else 0)
        parts.append(items[start : start + size])
        start += size
    return parts


def _collected_call(payload):
    """Pool target when telemetry is on: run the task under worker-side
    metric collection (module-level so it pickles)."""
    fn, item = payload
    return telemetry.worker_collect(fn, item)


def parallel_map(
    fn: Callable[[T], R],
    items: Sequence[T],
    n_jobs: Optional[int] = None,
) -> List[R]:
    """``[fn(item) for item in items]``, possibly across processes.

    Results always come back in input order.  With ``n_jobs`` ≤ 1, with
    fewer than two items, or when the process pool cannot be created, the
    map runs serially in-process; the output is identical either way.
    ``fn`` must be picklable (module-level) for the parallel path.  The
    pool is the shared persistent executor (:func:`get_pool`); a pool that
    breaks mid-map is discarded and the whole map re-runs serially, which
    computes the same thing.

    With telemetry enabled, each task is wrapped in
    :func:`repro.telemetry.core.worker_collect`: counters incremented
    inside the worker come back as a delta and are merged into the parent
    registry here — the round boundary — together with a per-task wall
    time observation (``parallel.task_s``).  Disabled, the tasks ship
    exactly as before, unwrapped.
    """
    global _pool, _pool_workers
    jobs = resolve_jobs(n_jobs)
    if jobs <= 1 or len(items) < 2:
        return [fn(item) for item in items]
    pool = get_pool(min(jobs, len(items)))
    if pool is None:
        return [fn(item) for item in items]
    collect = telemetry.enabled()
    try:
        if not collect:
            return list(pool.map(fn, items))
        start = time.perf_counter()
        outs = list(pool.map(_collected_call, [(fn, item) for item in items]))
        results: List[R] = []
        for result, delta, elapsed in outs:
            telemetry.merge_worker_metrics(delta)
            telemetry.observe("parallel.task_s", elapsed)
            results.append(result)
        telemetry.count("parallel.maps")
        telemetry.count("parallel.tasks", len(items))
        telemetry.observe("parallel.map_s", time.perf_counter() - start)
        return results
    except (OSError, RuntimeError, PermissionError):
        # Broken pool (killed worker, sandbox restriction discovered late):
        # drop it so the next call starts fresh, and finish serially.
        # (Telemetry note: deltas merged before the break stay merged and
        # the serial re-run counts again — a broken pool may overcount
        # metrics, never results.)
        try:
            pool.shutdown(wait=False)
        except Exception:
            pass
        _pool = None
        _pool_workers = 0
        telemetry.count("parallel.fallback_serial")
        return [fn(item) for item in items]
