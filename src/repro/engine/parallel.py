"""Deterministic chunked process-pool map with a serial fallback.

The engine's parallel fan-out is deliberately boring: split the work items
into at most ``n_jobs`` contiguous chunks, farm the chunks out to a
process pool, and reassemble the results *in submission order*.  Chunks
are contiguous and ordered, so any reduction the caller performs over the
concatenated results is bit-identical to running the same function
serially — parallelism never changes a verdict, a witness, or even the
order of a violation list.

The pool is an optimisation, not a dependency: ``n_jobs=None``/``0``/``1``
runs serially in-process, and any failure to *create* the pool (sandboxes
without fork, missing ``/dev/shm``, interpreter shutdown) silently falls
back to the serial path.  Worker functions must be module-level (picklable)
and must receive picklable payloads — closures over transition systems or
assignments stay in the parent; callers ship precomputed plain data.
"""

from __future__ import annotations

import os
from typing import Callable, List, Optional, Sequence, TypeVar

T = TypeVar("T")
R = TypeVar("R")


def resolve_jobs(n_jobs: Optional[int]) -> int:
    """Normalise an ``n_jobs`` argument to a positive worker count.

    ``None`` and ``0`` mean serial; negative values mean "all cores"
    (joblib's ``-1`` convention).
    """
    if n_jobs is None or n_jobs == 0:
        return 1
    if n_jobs < 0:
        return max(1, os.cpu_count() or 1)
    return n_jobs


def chunk_items(items: Sequence[T], chunks: int) -> List[Sequence[T]]:
    """Split ``items`` into at most ``chunks`` contiguous, ordered parts.

    Parts differ in size by at most one, every item appears exactly once,
    and concatenating the parts yields ``items`` — the invariant all
    determinism guarantees rest on.
    """
    total = len(items)
    chunks = max(1, min(chunks, total)) if total else 1
    base, extra = divmod(total, chunks)
    parts: List[Sequence[T]] = []
    start = 0
    for i in range(chunks):
        size = base + (1 if i < extra else 0)
        parts.append(items[start : start + size])
        start += size
    return parts


def parallel_map(
    fn: Callable[[T], R],
    items: Sequence[T],
    n_jobs: Optional[int] = None,
) -> List[R]:
    """``[fn(item) for item in items]``, possibly across processes.

    Results always come back in input order.  With ``n_jobs`` ≤ 1, with
    fewer than two items, or when the process pool cannot be created, the
    map runs serially in-process; the output is identical either way.
    ``fn`` must be picklable (module-level) for the parallel path.
    """
    jobs = resolve_jobs(n_jobs)
    if jobs <= 1 or len(items) < 2:
        return [fn(item) for item in items]
    try:
        from concurrent.futures import ProcessPoolExecutor

        with ProcessPoolExecutor(max_workers=min(jobs, len(items))) as pool:
            return list(pool.map(fn, items))
    except (ImportError, OSError, RuntimeError, PermissionError):
        # Pool unavailable (restricted sandbox, no fork, shutdown): the
        # serial path computes the same thing, just on one core.
        return [fn(item) for item in items]
