"""Hash-sharded frontier-parallel exploration, bit-identical to serial BFS.

**Why this is possible at all.**  The serial explorer
(:func:`repro.ts.explore.explore`) pops its queue in first-discovery order,
so states are expanded in ascending intern-index order, level by level: the
states discovered in BFS round ``r`` occupy a contiguous index range and
are all expanded — with identical budget/depth bookkeeping — before any
state of round ``r + 1``.  Expansion itself (``system.expand``) is a *pure*
function of the state.  So exploration factors into

1. an embarrassingly parallel part — computing ``(enabled, posts)`` for
   every state of the current round — and
2. a cheap, inherently serial part — interning successors, assigning
   indices, recording transitions, and applying ``max_states`` /
   ``max_depth`` / ``strict`` accounting.

This module parallelises (1) and replays (2) verbatim: each round, the
pending states are partitioned by ``hash(state) % n_shards``, every worker
in the persistent pool (:mod:`repro.engine.parallel`) expands its shard and
sends back successor batches (states deduplicated per shard, command labels
encoded against the coordinator's label table), and the coordinator merges
the batches **in pending order, posts order** — exactly the order the
serial loop would have seen them.  State indices, transition order,
enabled masks, frontier sets and :class:`ExplorationLimitError` behaviour
are therefore bit-identical to the serial path; the differential tests in
``tests/engine/test_shard.py`` enforce this for 1/2/4 shards on complete
and bounded exploration of every workload family.

Workers receive the system once as a picklable *shard spec*
(:meth:`~repro.ts.system.TransitionSystem.shard_spec`) and cache the
rebuilt instance process-locally, so per-round traffic is states in,
``(mask, posts)`` batches out.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import time
from array import array
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.engine import shm
from repro.engine.interning import StateInterner
from repro.engine.parallel import _FORCE_ENV, parallel_map, resolve_jobs
from repro.telemetry import core as telemetry
from repro.telemetry import events

#: Set to ``0`` to disable the value-plane/shared-memory exploration path
#: and restore the object-pickling coordinator for every system (rollback
#: and the benchmark baseline column).
VALUE_PLANE_ENV = "REPRO_VALUE_PLANE"

#: Rounds with fewer pending states than this are expanded in-process: the
#: per-round pool round-trip (pickle states out, results back) costs more
#: than expanding a narrow BFS level locally.  ``REPRO_FORCE_PARALLEL=1``
#: overrides, so tests can push single-state rounds through the pool.
SHARD_ROUND_CUTOFF = 2048

#: Worker-process cache of rebuilt systems, keyed by spec digest.  Workers
#: are long-lived (the pool persists), so a multi-round exploration — or a
#: sequence of explorations of the same system — unpickles the spec once.
_WORKER_SYSTEMS: Dict[str, object] = {}


def _shard_system(digest: str, spec: bytes):
    system = _WORKER_SYSTEMS.get(digest)
    if system is None:
        system = pickle.loads(spec)
        _WORKER_SYSTEMS[digest] = system
    return system


def _expand_shard(task):
    """Expand one shard of a BFS round (runs in a worker process).

    ``task`` is ``(digest, spec, labels, states)``.  Returns
    ``(results, targets)`` where ``targets`` is the shard's deduplicated
    successor batch and ``results[k]`` is, for ``states[k]``::

        (enabled_mask, stray_enabled_labels, ((cmd_ref, target_ref), ...))

    ``enabled_mask`` is over ``labels`` (the coordinator's table snapshot);
    commands not yet in it travel as literal strings.  ``target_ref``
    indexes ``targets`` — interning back to global state indices happens in
    the coordinator, in serial order.
    """
    digest, spec, labels, shard_states = task
    system = _shard_system(digest, spec)
    # Worker-side counters; aggregated back to the coordinator's registry
    # by the pool's delta collection at the round boundary.
    telemetry.count("shard.states_expanded", len(shard_states))
    ids = {label: k for k, label in enumerate(labels)}
    targets: List[object] = []
    ref_of: Dict[object, int] = {}
    results = []
    for state in shard_states:
        enabled, posts = system.expand(state)
        mask = 0
        strays: Tuple[str, ...] = ()
        for label in enabled:
            k = ids.get(label)
            if k is None:
                strays += (label,)
            else:
                mask |= 1 << k
        encoded = []
        for command, target in posts:
            ref = ref_of.get(target)
            if ref is None:
                ref = len(targets)
                ref_of[target] = ref
                targets.append(target)
            encoded.append((ids.get(command, command), ref))
        results.append((mask, strays, tuple(encoded)))
    telemetry.count("shard.posts", sum(len(r[2]) for r in results))
    return results, targets


def _round_dispatch(jobs: int, pending_count: int) -> Tuple[int, str]:
    """Adaptive per-round dispatch (mirrors :func:`effective_jobs`).

    Narrow BFS levels, single-core machines and serial requests stay
    in-process — the "``--jobs N`` never loses" guarantee applies per
    round, since level widths vary wildly within one exploration.
    Returns ``(workers, reason)``; the reason labels the telemetry
    counter recording why a round fell back to serial.
    """
    if jobs <= 1 or pending_count == 0:
        return 1, "serial_request"
    if os.environ.get(_FORCE_ENV) == "1":
        return jobs, "forced"
    if (os.cpu_count() or 1) <= 1:
        return 1, "single_core"
    if pending_count < SHARD_ROUND_CUTOFF:
        return 1, "narrow_round"
    return jobs, "parallel"


def _round_workers(jobs: int, pending_count: int) -> int:
    """Back-compat wrapper: the worker count from :func:`_round_dispatch`."""
    return _round_dispatch(jobs, pending_count)[0]


def value_plane_of(system):
    """The system's value plane, unless disabled via the environment."""
    if os.environ.get(VALUE_PLANE_ENV) == "0":
        return None
    getter = getattr(system, "value_plane", None)
    if getter is None:
        return None
    return getter()


def explore_sharded(
    system,
    spec: bytes,
    max_states: Optional[int] = None,
    max_depth: Optional[int] = None,
    strict: bool = False,
    n_jobs: Optional[int] = None,
    observer=None,
):
    """Frontier-parallel BFS exploration; results bit-identical to serial.

    Called by :func:`repro.ts.explore.explore` when ``n_jobs > 1`` and the
    system provided a shard ``spec``; not normally invoked directly.
    ``observer`` callbacks fire during the serial merge — in exactly the
    serial explorer's event order — and a :class:`StopExploration` raised
    by one cancels the round loop, so no further round is dispatched to
    the worker pool.
    """
    from repro.ts.explore import StopExploration, _finish_graph, _stop_counters

    jobs = resolve_jobs(n_jobs)

    plane = value_plane_of(system)
    if plane is not None:
        prepared = _prepare_value_rounds(system, plane)
        if prepared is not None:
            return _explore_rounds_values(
                system,
                plane,
                prepared,
                max_states=max_states,
                max_depth=max_depth,
                strict=strict,
                jobs=jobs,
                observer=observer,
            )

    digest = hashlib.sha256(spec).hexdigest()

    interner = StateInterner()
    states = interner.states
    for s in system.initial_states():
        interner.intern(s)
    initial_count = len(states)
    if initial_count == 0:
        raise ValueError("system has no initial states")

    labels: List[str] = list(system.commands())
    label_ids: Dict[str, int] = {label: k for k, label in enumerate(labels)}
    src = array("q")
    cmd = array("q")
    dst = array("q")
    emask_of: List[int] = [-1] * initial_count
    expanded = bytearray(initial_count)
    frontier: Set[int] = set()
    truncated = False
    stopped = False

    pending: List[int] = list(range(initial_count))
    round_depth = 0
    traced = telemetry.enabled()
    progress = telemetry.progress_reporter()
    round_events = events.round_ticker()
    # Shared mask → frozenset memo for ``on_expanded`` notifications.
    mask_labels: Dict[int, frozenset] = {}

    if observer is not None:
        try:
            for idx in range(initial_count):
                observer.on_state(idx, states[idx], 0)
        except StopExploration:
            stopped = True
            pending = []

    while pending:
        if max_depth is not None and round_depth > max_depth:
            # Every pending state sits at the same BFS depth — the depth
            # bound cuts the whole round, exactly as the serial loop marks
            # each of these states frontier when it pops them.
            frontier.update(pending)
            truncated = True
            break

        workers, dispatch = _round_dispatch(jobs, len(pending))
        if traced:
            telemetry.count("shard.rounds")
            telemetry.count(
                "shard.parallel_rounds" if workers > 1 else "shard.serial_rounds"
            )
            if workers <= 1:
                telemetry.count(f"shard.serial_round.{dispatch}")
            telemetry.observe("shard.round_pending", len(pending))
        if progress is not None:
            progress.maybe(len(states), len(pending), round_depth)
        round_events.tick(
            round_depth, len(pending), len(states), workers, dispatch
        )
        round_span = telemetry.span(
            "shard_round",
            round=round_depth,
            pending=len(pending),
            workers=workers,
        )
        with round_span:
            if workers > 1:
                round_results = _expand_round_parallel(
                    digest, spec, labels, states, pending, workers
                )
            else:
                round_results = _expand_round_serial(
                    system, label_ids, states, pending
                )
            merge_started = time.perf_counter() if traced else 0.0

            next_pending, truncated, stopped = _merge_round(
                pending,
                round_results,
                interner,
                states,
                labels,
                label_ids,
                src,
                cmd,
                dst,
                emask_of,
                expanded,
                frontier,
                truncated,
                max_states,
                observer,
                round_depth + 1,
                mask_labels,
            )
            if traced:
                telemetry.observe(
                    "shard.merge_s", time.perf_counter() - merge_started
                )
        if stopped:
            # StopExploration during the merge: pending states of this
            # round that were not merged yet stay unexpanded (they become
            # frontier), and no further round reaches the pool.
            break
        pending = next_pending
        round_depth += 1

    if stopped:
        _stop_counters(len(states))
    if progress is not None:
        progress.close()
    return _finish_graph(
        system=system,
        interner=interner,
        labels=labels,
        label_ids=label_ids,
        src=src,
        cmd=cmd,
        dst=dst,
        emask_of=emask_of,
        expanded=expanded,
        frontier=frontier,
        initial_count=initial_count,
        truncated=truncated,
        strict=strict,
        max_states=max_states,
        max_depth=max_depth,
    )


def _merge_round(
    pending,
    round_results,
    interner,
    states,
    labels,
    label_ids,
    src,
    cmd,
    dst,
    emask_of,
    expanded,
    frontier,
    truncated,
    max_states,
    observer=None,
    successor_depth=0,
    mask_labels=None,
):
    """The serial merge of one round's expansion batches.

    Replays the serial explorer's interning/budget bookkeeping verbatim
    (the bit-identity argument lives here); factored out of the round
    loop so the coordinator can time it separately from expansion.
    Observer callbacks fire here, in the serial event order; a
    :class:`StopExploration` raised by one stops the merge mid-state
    (the in-flight state reverts to unexpanded unless the stop came from
    its own ``on_expanded``).  Returns ``(next_pending, truncated,
    stopped)``.
    """
    from repro.ts.explore import StopExploration

    next_pending: List[int] = []
    i = -1
    finalized = -1
    try:
        for i, (mask, strays, posts, targets) in zip(pending, round_results):
            expanded[i] = 1
            for label in strays:
                k = label_ids.get(label)
                if k is None:
                    k = len(labels)
                    label_ids[label] = k
                    labels.append(label)
                mask |= 1 << k
            emask_of[i] = mask
            at_budget = max_states is not None and len(states) >= max_states
            for cmd_ref, target_ref in posts:
                target = targets[target_ref]
                if at_budget:
                    j = interner.lookup(target)
                    if j is None:
                        frontier.add(i)
                        truncated = True
                        break
                else:
                    j, is_new = interner.intern(target)
                    if is_new:
                        emask_of.append(-1)
                        expanded.append(0)
                        next_pending.append(j)
                        at_budget = (
                            max_states is not None and len(states) >= max_states
                        )
                        if observer is not None:
                            observer.on_state(j, target, successor_depth)
                if isinstance(cmd_ref, int):
                    k = cmd_ref
                else:
                    k = label_ids.get(cmd_ref)
                    if k is None:
                        k = len(labels)
                        label_ids[cmd_ref] = k
                        labels.append(cmd_ref)
                src.append(i)
                cmd.append(k)
                dst.append(j)
                if observer is not None:
                    observer.on_transition(i, labels[k], j)
            else:
                if observer is not None:
                    enabled_set = mask_labels.get(mask)
                    if enabled_set is None:
                        mask_labels[mask] = enabled_set = frozenset(
                            labels[b]
                            for b in range(mask.bit_length())
                            if (mask >> b) & 1
                        )
                    finalized = i
                    observer.on_expanded(i, enabled_set)
    except StopExploration:
        if i >= 0 and i != finalized and expanded[i]:
            expanded[i] = 0
        return next_pending, truncated, True
    return next_pending, truncated, False


def _expand_round_serial(system, label_ids, states, pending):
    """In-process expansion of one round, in the parallel path's encoding."""
    # Same counters as ``_expand_shard``, so per-path totals agree no
    # matter how each round was dispatched.
    telemetry.count("shard.states_expanded", len(pending))
    results = []
    for i in pending:
        enabled, posts = system.expand(states[i])
        mask = 0
        strays: Tuple[str, ...] = ()
        for label in enabled:
            k = label_ids.get(label)
            if k is None:
                strays += (label,)
            else:
                mask |= 1 << k
        targets: List[object] = []
        ref_of: Dict[object, int] = {}
        encoded = []
        for command, target in posts:
            ref = ref_of.get(target)
            if ref is None:
                ref = len(targets)
                ref_of[target] = ref
                targets.append(target)
            encoded.append((label_ids.get(command, command), ref))
        results.append((mask, strays, tuple(encoded), targets))
    telemetry.count("shard.posts", sum(len(r[2]) for r in results))
    return results


def _expand_round_parallel(digest, spec, labels, states, pending, workers):
    """Shard one round by state hash and fan it out over the pool.

    Returns per-pending-state ``(mask, strays, posts, targets)`` in pending
    order — shard assignment affects only *where* a state is expanded,
    never the merge order, so the result is independent of the hash
    function and of ``workers``.
    """
    shards: List[List[int]] = [[] for _ in range(workers)]
    for i in pending:
        shards[hash(states[i]) % workers].append(i)
    occupied = [shard for shard in shards if shard]
    if telemetry.enabled():
        for shard in occupied:
            telemetry.observe("shard.shard_size", len(shard))
    labels_snapshot = tuple(labels)
    tasks = [
        (digest, spec, labels_snapshot, [states[i] for i in shard])
        for shard in occupied
    ]
    outs = parallel_map(_expand_shard, tasks, n_jobs=workers)

    per_state: Dict[int, tuple] = {}
    for shard, (results, targets) in zip(occupied, outs):
        for i, (mask, strays, posts) in zip(shard, results):
            per_state[i] = (mask, strays, posts, targets)
    return [per_state[i] for i in pending]


# ---------------------------------------------------------------------------
# Value-plane rounds: the zero-copy data plane
# ---------------------------------------------------------------------------
#
# Systems exposing a value plane (:meth:`TransitionSystem.value_plane`)
# explore through flat int64 rows instead of state objects: the coordinator
# interns *value tuples*, keeps the packed columns live, and — when a round
# goes parallel — publishes them once through a shared-memory arena
# (:mod:`repro.engine.shm`) so each worker task is just an index array.
# Serial rounds call the batched kernels directly on the local rows, which
# is where the batching win lands even without a pool.  The merge replays
# the object path's bookkeeping statement for statement, so graphs are
# bit-identical across all three paths (serial, pickled-sharded, shm).


def _prepare_value_rounds(system, plane):
    """Validate that ``system`` can explore through ``plane``.

    Returns ``(plane_spec, initial_states, labels, label_ids, kmap)`` or
    ``None`` to fall back to the object path.  ``kmap`` translates plane
    command indices to coordinator label-table ids (the identity for
    programs, where both sides are declaration order — but checked, never
    assumed).
    """
    plane_spec = plane.spec()
    if plane_spec is None:
        return None
    initial = list(system.initial_states())
    names = plane.names
    for state in initial:
        if getattr(state, "names", None) != names:
            return None
    labels: List[str] = list(system.commands())
    label_ids: Dict[str, int] = {label: k for k, label in enumerate(labels)}
    try:
        kmap = [label_ids[label] for label in plane.labels]
    except KeyError:
        return None
    return plane_spec, initial, labels, label_ids, kmap


def _explore_rounds_values(
    system,
    plane,
    prepared,
    max_states,
    max_depth,
    strict,
    jobs,
    observer,
):
    """Round-based exploration over the value plane (shm when parallel)."""
    from repro.ts.explore import StopExploration, _finish_graph, _stop_counters

    plane_spec, initial, labels, label_ids, kmap = prepared
    digest = hashlib.sha256(plane_spec).hexdigest()
    width = plane.width

    interner = StateInterner()
    states = interner.states
    values_index: Dict[tuple, int] = {}
    value_rows: List[tuple] = []
    for state in initial:
        row = plane.encode(state)
        if row not in values_index:
            index, _ = interner.intern(state)
            values_index[row] = index
            value_rows.append(row)
    initial_count = len(states)
    if initial_count == 0:
        raise ValueError("system has no initial states")

    src = array("q")
    cmd = array("q")
    dst = array("q")
    emask_of: List[int] = [-1] * initial_count
    expanded = bytearray(initial_count)
    frontier: Set[int] = set()
    truncated = False
    stopped = False

    pending: List[int] = list(range(initial_count))
    round_depth = 0
    traced = telemetry.enabled()
    progress = telemetry.progress_reporter()
    round_events = events.round_ticker()
    mask_labels: Dict[int, frozenset] = {}
    mask_memo: Dict[int, int] = {}
    # Streaming verifiers under command fairness ask for per-round
    # enabled-mask deltas (see ``_StreamingVerifier.wants_enabled_masks``):
    # workers batch guards-only masks for their successor rows and the
    # merge primes the observer, replacing its serial re-derivation.
    want_masks = (
        observer is not None
        and getattr(observer, "wants_enabled_masks", False)
        and getattr(plane, "enabled_batch", None) is not None
    )

    arena = None
    shm_ok = True
    values_col: Optional[array] = None  # flat mirror, built at first sync

    if observer is not None:
        try:
            for idx in range(initial_count):
                observer.on_state(idx, states[idx], 0)
        except StopExploration:
            stopped = True
            pending = []

    try:
        while pending:
            if max_depth is not None and round_depth > max_depth:
                frontier.update(pending)
                truncated = True
                break

            workers, dispatch = _round_dispatch(jobs, len(pending))
            if workers > 1 and shm_ok and arena is None:
                try:
                    arena = shm.ShmArena(digest.encode("utf-8"))
                except shm.ShmUnavailable:
                    # No shared memory here (platform/sandbox): every
                    # round runs the batched kernels in-process instead.
                    shm_ok = False
                    if traced:
                        telemetry.count("shm.unavailable")
            if workers > 1 and arena is None:
                workers, dispatch = 1, "shm_unavailable"
            if traced:
                telemetry.count("shard.rounds")
                telemetry.count("shard.values_rounds")
                telemetry.count(
                    "shard.parallel_rounds" if workers > 1 else "shard.serial_rounds"
                )
                if workers <= 1:
                    telemetry.count(f"shard.serial_round.{dispatch}")
                telemetry.observe("shard.round_pending", len(pending))
            if progress is not None:
                progress.maybe(len(states), len(pending), round_depth)
            round_events.tick(
                round_depth, len(pending), len(states), workers, dispatch
            )
            round_span = telemetry.span(
                "shard_round",
                round=round_depth,
                pending=len(pending),
                workers=workers,
            )
            with round_span:
                if workers > 1:
                    if values_col is None:
                        values_col = array(
                            "q", [v for row in value_rows for v in row]
                        )
                    round_results, row_masks = _expand_round_values_parallel(
                        digest,
                        plane_spec,
                        arena,
                        width,
                        values_col,
                        value_rows,
                        (src, cmd, dst, emask_of, pending[0]),
                        pending,
                        workers,
                        want_masks,
                    )
                else:
                    round_results = _expand_round_values_serial(
                        plane, value_rows, pending
                    )
                    row_masks = (
                        _round_row_masks(plane, round_results, values_index)
                        if want_masks
                        else None
                    )
                merge_started = time.perf_counter() if traced else 0.0

                next_pending, truncated, stopped = _merge_round_values(
                    pending,
                    round_results,
                    interner,
                    values_index,
                    value_rows,
                    values_col,
                    plane,
                    labels,
                    kmap,
                    mask_memo,
                    src,
                    cmd,
                    dst,
                    emask_of,
                    expanded,
                    frontier,
                    truncated,
                    max_states,
                    observer,
                    round_depth + 1,
                    mask_labels,
                    row_masks,
                )
                if traced:
                    telemetry.observe(
                        "shard.merge_s", time.perf_counter() - merge_started
                    )
            if stopped:
                break
            pending = next_pending
            round_depth += 1
    finally:
        # The leak contract: the arena dies with the exploration — normal
        # return, StopExploration, limit errors and observer exceptions
        # all pass through here (worker death never owns a segment).
        if arena is not None:
            arena.close()

    if stopped:
        _stop_counters(len(states))
    if progress is not None:
        progress.close()
    return _finish_graph(
        system=system,
        interner=interner,
        labels=labels,
        label_ids=label_ids,
        src=src,
        cmd=cmd,
        dst=dst,
        emask_of=emask_of,
        expanded=expanded,
        frontier=frontier,
        initial_count=initial_count,
        truncated=truncated,
        strict=strict,
        max_states=max_states,
        max_depth=max_depth,
    )


def _merge_round_values(
    pending,
    round_results,
    interner,
    values_index,
    value_rows,
    values_col,
    plane,
    labels,
    kmap,
    mask_memo,
    src,
    cmd,
    dst,
    emask_of,
    expanded,
    frontier,
    truncated,
    max_states,
    observer=None,
    successor_depth=0,
    mask_labels=None,
    row_masks=None,
):
    """:func:`_merge_round` for value-plane rounds.

    Same statement order, same budget bookkeeping, same observer events,
    same :class:`StopExploration` revert rule — only the successor lookup
    changes (value tuple instead of state object; a state object is built
    exactly once, when a row is genuinely new).

    ``row_masks`` (optional) maps successor value rows to guards-only
    plane masks from this round's batch; when present and the observer
    accepts primes, every state touched this round gets its enabled set
    handed over before any flush could demand it serially.  Guards are
    pure, so priming never changes a verdict — only which code derives
    the mask.
    """
    from repro.ts.explore import StopExploration

    states = interner.states
    next_pending: List[int] = []
    # The loop below runs once per transition of the whole graph; bind
    # every repeated attribute lookup to a local first (the difference is
    # measurable at 10⁶ states).
    lookup = values_index.get
    src_append = src.append
    cmd_append = cmd.append
    dst_append = dst.append
    emask_append = emask_of.append
    expanded_append = expanded.append
    pending_append = next_pending.append
    rows_append = value_rows.append
    make_state = plane.make_state
    intern = interner.intern
    mask_of = mask_memo.get
    tracked = observer is not None
    unbudgeted = max_states is None

    prime = (
        getattr(observer, "prime_enabled", None)
        if tracked and row_masks is not None
        else None
    )
    if prime is not None:

        def enabled_set_of(plane_mask):
            mask = mask_of(plane_mask)
            if mask is None:
                mask = 0
                for b in range(plane_mask.bit_length()):
                    if (plane_mask >> b) & 1:
                        mask |= 1 << kmap[b]
                mask_memo[plane_mask] = mask
            enabled_set = mask_labels.get(mask)
            if enabled_set is None:
                mask_labels[mask] = enabled_set = frozenset(
                    labels[b]
                    for b in range(mask.bit_length())
                    if (mask >> b) & 1
                )
            return enabled_set

        # This round's sources: their masks arrived with the expansion
        # results, so transitions between same-round states never fall
        # back to serial derivation whichever source flushes first.
        for p, (p_mask, _) in zip(pending, round_results):
            prime(p, enabled_set_of(p_mask))

    i = -1
    finalized = -1
    try:
        for i, (plane_mask, posts) in zip(pending, round_results):
            expanded[i] = 1
            mask = mask_of(plane_mask)
            if mask is None:
                mask = 0
                for b in range(plane_mask.bit_length()):
                    if (plane_mask >> b) & 1:
                        mask |= 1 << kmap[b]
                mask_memo[plane_mask] = mask
            emask_of[i] = mask
            at_budget = not unbudgeted and len(states) >= max_states
            for plane_cmd, row in posts:
                j = lookup(row)
                if at_budget:
                    if j is None:
                        frontier.add(i)
                        truncated = True
                        break
                else:
                    if j is None:
                        target = make_state(row)
                        j, _ = intern(target)
                        values_index[row] = j
                        rows_append(row)
                        if values_col is not None:
                            values_col.extend(row)
                        emask_append(-1)
                        expanded_append(0)
                        pending_append(j)
                        if not unbudgeted:
                            at_budget = len(states) >= max_states
                        if tracked:
                            observer.on_state(j, target, successor_depth)
                            if prime is not None:
                                p_mask = row_masks.get(row)
                                if p_mask is not None:
                                    prime(j, enabled_set_of(p_mask))
                k = kmap[plane_cmd]
                src_append(i)
                cmd_append(k)
                dst_append(j)
                if tracked:
                    observer.on_transition(i, labels[k], j)
            else:
                if tracked:
                    enabled_set = mask_labels.get(mask)
                    if enabled_set is None:
                        mask_labels[mask] = enabled_set = frozenset(
                            labels[b]
                            for b in range(mask.bit_length())
                            if (mask >> b) & 1
                        )
                    finalized = i
                    observer.on_expanded(i, enabled_set)
    except StopExploration:
        if i >= 0 and i != finalized and expanded[i]:
            expanded[i] = 0
        return next_pending, truncated, True
    return next_pending, truncated, False


def _round_row_masks(plane, round_results, values_index):
    """Guards-only masks for this round's genuinely-new successor rows.

    Deduplicates the round's post rows, drops already-interned ones (their
    enabled sets are recorded or primed by earlier rounds), and runs one
    :meth:`enabled_batch` over the rest.  Returns a row → plane-mask dict;
    empty when the plane declines (``enabled_batch`` returned ``None``, a
    guard raised somewhere) — the streaming verifier then derives those
    few masks serially, exactly as before priming existed.
    """
    fresh: List[tuple] = []
    seen: Set[tuple] = set()
    for _, posts in round_results:
        for _, row in posts:
            if row not in seen and row not in values_index:
                seen.add(row)
                fresh.append(row)
    if not fresh:
        return {}
    masks = plane.enabled_batch(fresh)
    if masks is None:
        return {}
    if telemetry.enabled():
        telemetry.count("stream.mask_batch_rows", len(fresh))
    return dict(zip(fresh, masks))


def _expand_round_values_serial(plane, value_rows, pending):
    """One round through the batched kernels, in-process, no copies."""
    rows = [value_rows[i] for i in pending]
    if telemetry.enabled():
        telemetry.count("shard.states_expanded", len(rows))
        telemetry.count("batch.calls")
        telemetry.count("batch.rows", len(rows))
        results = plane.expand_batch(rows)
        telemetry.count("shard.posts", sum(len(posts) for _, posts in results))
        return results
    return plane.expand_batch(rows)


def _expand_round_values_parallel(
    digest,
    plane_spec,
    arena,
    width,
    values_col,
    value_rows,
    graph_columns,
    pending,
    workers,
    want_masks=False,
):
    """Fan one round out over the pool through the shared-memory arena.

    Publishes the value table (workers read their rows by index) and
    streams the graph columns built so far — ``src``/``cmd``/``dst`` plus
    the enabled masks of the expanded prefix — into the same arena, so
    the entire hot data plane is attachable.  Each task carries only the
    shard's index array; results come back as flat int arrays.

    With ``want_masks`` each worker also batches guards-only enabled
    masks for its deduplicated successor rows (the round's mask *delta*),
    and the second return value maps row → plane mask for the merge to
    prime a streaming verifier with.  Returns ``(results, row_masks)``
    where ``row_masks`` is ``None`` when masks were not requested.
    """
    shards: List[List[int]] = [[] for _ in range(workers)]
    for i in pending:
        # Same assignment as the object path: ProgramState hashes on its
        # value tuple, so ``hash(row)`` equals ``hash(states[i])``.
        shards[hash(value_rows[i]) % workers].append(i)
    occupied = [shard for shard in shards if shard]
    if telemetry.enabled():
        for shard in occupied:
            telemetry.observe("shard.shard_size", len(shard))

    arena.sync("values", values_col)
    src, cmd, dst, emask_of, expanded_prefix = graph_columns
    arena.sync("src", src)
    arena.sync("cmd", cmd)
    arena.sync("dst", dst)
    # Masks are final exactly for the expanded prefix (states below this
    # round's first pending index); later entries are still -1 sentinels.
    arena.column("emask").sync(emask_of, length=expanded_prefix)

    name, _ = arena.column("values").manifest()
    tasks = [
        (
            digest,
            plane_spec,
            name,
            arena.tag,
            width,
            array("q", shard).tobytes(),
            want_masks,
        )
        for shard in occupied
    ]
    outs = parallel_map(_expand_shard_values, tasks, n_jobs=workers)

    per_state: Dict[int, tuple] = {}
    row_masks: Optional[Dict[tuple, int]] = {} if want_masks else None
    for shard, (masks, counts, cmds, refs, flat, tmasks) in zip(
        occupied, outs
    ):
        targets = [
            tuple(flat[r * width:(r + 1) * width])
            for r in range(len(flat) // width)
        ]
        if row_masks is not None and len(tmasks) == len(targets):
            # Empty ``tmasks`` (worker's plane declined the batch) simply
            # leaves that shard's rows unprimed — serial fallback covers.
            for r, target in enumerate(targets):
                row_masks[target] = tmasks[r]
        base = 0
        for offset, i in enumerate(shard):
            count = counts[offset]
            per_state[i] = (
                masks[offset],
                [
                    (cmds[base + p], targets[refs[base + p]])
                    for p in range(count)
                ],
            )
            base += count
    return [per_state[i] for i in pending], row_masks


def _expand_shard_values(task):
    """Expand one shard of a value-plane round (runs in a worker process).

    ``task`` is ``(digest, plane_spec, segment, tag, width, index_bytes,
    want_masks)``.  The worker attaches the published value column, reads
    its rows in place, runs the batched kernels, and returns flat arrays:
    ``(masks, post_counts, cmd_ids, target_refs, target_values,
    target_masks)`` with targets deduplicated per shard — cheap to
    pickle, decoded by the coordinator in serial merge order.
    ``target_masks`` carries one guards-only enabled mask per
    deduplicated target when the round wants mask deltas (and the plane
    can batch them); otherwise it is empty.
    """
    digest, plane_spec, segment, tag, width, index_bytes, want_masks = task
    plane = _shard_system(digest, plane_spec)
    indices = array("q")
    indices.frombytes(index_bytes)
    needed = (max(indices) + 1) * width if len(indices) else 0
    view = shm.attach_column(segment, tag, needed)
    base = shm.HEADER_WORDS
    rows = [
        tuple(view[base + i * width: base + (i + 1) * width])
        for i in indices
    ]
    telemetry.count("shard.states_expanded", len(rows))
    telemetry.count("batch.calls")
    telemetry.count("batch.rows", len(rows))
    expansions = plane.expand_batch(rows)

    masks = array("Q", bytes(8 * len(rows)))
    counts = array("q", bytes(8 * len(rows)))
    cmds = array("q")
    refs = array("q")
    flat = array("q")
    ref_of: Dict[tuple, int] = {}
    posts_total = 0
    for offset, (mask, posts) in enumerate(expansions):
        masks[offset] = mask
        counts[offset] = len(posts)
        posts_total += len(posts)
        for k, row in posts:
            ref = ref_of.get(row)
            if ref is None:
                ref = len(ref_of)
                ref_of[row] = ref
                flat.extend(row)
            cmds.append(k)
            refs.append(ref)
    telemetry.count("shard.posts", posts_total)

    tmasks = array("Q")
    if want_masks and ref_of:
        batch = getattr(plane, "enabled_batch", None)
        target_rows = list(ref_of)  # insertion order == ref order
        batched = batch(target_rows) if batch is not None else None
        if batched is not None:
            tmasks.extend(batched)
            telemetry.count("stream.mask_batch_rows", len(target_rows))
    return masks, counts, cmds, refs, flat, tmasks


def graph_digest(graph) -> str:
    """A canonical SHA-256 over everything observable about ``graph``.

    Covers states (in index order), transitions (in transition order, with
    command *labels*, not table ids), per-state enabled sets (sorted), the
    initial count and the frontier — i.e. exactly the bit-identity contract
    of the sharded explorer.  Two graphs digest equal iff the object-level
    fingerprints used by the differential tests are equal.
    """
    h = hashlib.sha256()

    def text(s: str) -> None:
        h.update(s.encode("utf-8"))
        h.update(b"\x00")

    text(f"n={len(graph)};init={len(graph.initial_indices)}")
    for state in graph.states:
        text(repr(state))
    labels = graph.command_table.labels
    src, cmds, dsts = graph.transition_columns
    h.update(src.tobytes())
    h.update(dsts.tobytes())
    for c in cmds:
        text(labels[c])
    table = graph.command_table
    for mask in graph.enabled_masks:
        text(",".join(sorted(table.labels_of_mask(mask))))
    text("frontier=" + ",".join(map(str, sorted(graph.frontier))))
    return h.hexdigest()
