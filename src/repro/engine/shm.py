"""Shared-memory arena: the explorer's zero-copy data plane.

The sharded explorer's original wire format shipped every frontier shard as
pickled state objects and got pickled successor batches back — per round,
per worker.  For value-plane systems (:meth:`TransitionSystem.value_plane`)
the whole hot table is a flat ``array('q')``: the interned state-value
rows, plus the streamed ``src``/``cmd``/``dst`` transition columns and the
enabled bitmasks.  This module publishes those columns as **named
shared-memory segments** so pool workers attach once and read rows by
index; a round's task then carries only the pending index array.

Layout of one segment (all little-endian int64 words)::

    word 0   length    -- published element count (monotone, grows in place)
    word 1   capacity  -- allocated element count (fixed per segment)
    word 2   tag       -- arena tag (derived from the system digest); a
                          worker rejects a segment whose tag mismatches,
                          so stale or colliding names fail loudly
    word 3.. payload   -- ``capacity`` int64 elements

Columns are **append-only**: a sync publishes the suffix written since the
last sync and then bumps ``length`` — readers never observe a torn row.
Growth allocates a *new* segment (next generation, doubled capacity),
copies the payload, and unlinks the old one; workers notice the new name
in the round manifest and remap.

Lifecycle guarantees (the leak contract, enforced by tests and CI):

* the owning coordinator unlinks every segment in a ``finally`` around the
  round loop — normal exit and exceptions both reclaim;
* a module ``atexit`` hook unlinks any arena still alive at interpreter
  shutdown (belt and braces for callers that leak the object);
* if the coordinator dies hard (SIGKILL), the stdlib resource tracker it
  registered with at creation time reclaims the segments;
* workers only ever *attach*.  Python < 3.13 wrongly re-registers attached
  segments with the worker's resource tracker (bpo-39959), which would
  unlink them behind the owner's back when the worker exits — attachment
  here immediately unregisters, so worker death leaks nothing and kills
  nothing.
"""

from __future__ import annotations

import atexit
import hashlib
import mmap
import os
from array import array
from typing import Dict, List, Optional, Tuple

from repro.telemetry import core as telemetry

try:  # pragma: no cover - import guard for minimal builds
    from multiprocessing import resource_tracker, shared_memory
except ImportError:  # pragma: no cover
    shared_memory = None
    resource_tracker = None

#: Prefix of every segment name this module creates; the CI leak check
#: scans ``/dev/shm`` for it after the test run.
SEGMENT_PREFIX = "repro-shm"

#: Header size, in int64 words, preceding the payload of every segment.
HEADER_WORDS = 3

_WORD = 8

#: Smallest payload capacity (elements) ever allocated; tiny columns grow
#: through the same doubling path as big ones.
MIN_CAPACITY = 1024


class ShmUnavailable(RuntimeError):
    """Shared memory cannot be used here (platform or sandbox limits)."""


def _arena_tag(seed: bytes) -> int:
    """A 63-bit tag derived from the arena's identity seed."""
    return int.from_bytes(hashlib.sha256(seed).digest()[:8], "little") >> 1


class ShmColumn:
    """One append-only int64 column, owner side."""

    __slots__ = ("key", "tag", "_prefix", "_generation", "segment", "_mv",
                 "capacity", "length")

    def __init__(self, prefix: str, key: str, tag: int,
                 capacity: int = MIN_CAPACITY) -> None:
        self.key = key
        self.tag = tag
        self._prefix = prefix
        self._generation = 0
        self.segment = None
        self._mv: Optional[memoryview] = None
        self.capacity = 0
        self.length = 0
        self._allocate(max(capacity, MIN_CAPACITY))

    @property
    def name(self) -> str:
        return self.segment.name

    def _allocate(self, capacity: int) -> None:
        if shared_memory is None:
            raise ShmUnavailable("multiprocessing.shared_memory unavailable")
        name = f"{self._prefix}.{self.key}.g{self._generation}"
        size = (HEADER_WORDS + capacity) * _WORD
        try:
            segment = shared_memory.SharedMemory(
                name=name, create=True, size=size
            )
        except (OSError, ValueError) as exc:
            raise ShmUnavailable(
                f"cannot create shared-memory segment {name!r}: {exc}"
            ) from exc
        mv = memoryview(segment.buf).cast("q")
        mv[0] = self.length
        mv[1] = capacity
        mv[2] = self.tag
        if self._mv is not None:
            # Growth: copy the already-published payload into the new
            # segment, then retire the old one.  Nothing reads the old
            # segment concurrently — syncs happen between rounds — and
            # even a worker still mapping it keeps a valid (stale) view
            # until it remaps; unlink only drops the name.
            old_mv, old_segment = self._mv, self.segment
            mv[HEADER_WORDS:HEADER_WORDS + self.length] = (
                old_mv[HEADER_WORDS:HEADER_WORDS + self.length]
            )
            old_mv.release()
            old_segment.close()
            old_segment.unlink()
        self.segment = segment
        self._mv = mv
        self.capacity = capacity
        self._generation += 1
        telemetry.count("shm.segments_created")

    def sync(self, source, length: Optional[int] = None) -> int:
        """Publish ``source[published:length]``; returns the bytes written.

        ``source`` is any int sequence sliceable to an ``array('q')`` —
        the coordinator's live column.  Only the unpublished suffix moves.
        ``length`` caps how far publication reaches (default: all of
        ``source``); columns whose tail is still provisional publish a
        final prefix.
        """
        total = len(source) if length is None else length
        new = total - self.length
        if new <= 0:
            return 0
        if total > self.capacity:
            capacity = self.capacity
            while capacity < total:
                capacity *= 2
            self._allocate(capacity)
        chunk = source[self.length:total]
        if not isinstance(chunk, array):
            chunk = array("q", chunk)
        payload = chunk.tobytes()
        raw = memoryview(self.segment.buf)
        start = (HEADER_WORDS + self.length) * _WORD
        raw[start:start + len(payload)] = payload
        self.length = total
        self._mv[0] = total  # publish after the payload is in place
        telemetry.count("shm.bytes_published", len(payload))
        return len(payload)

    def manifest(self) -> Tuple[str, int]:
        """``(segment_name, published_length)`` for round tasks."""
        return self.segment.name, self.length

    def close(self, unlink: bool = True) -> None:
        if self.segment is None:
            return
        segment, self.segment = self.segment, None
        if self._mv is not None:
            self._mv.release()
            self._mv = None
        segment.close()
        if unlink:
            try:
                segment.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass


_LIVE_ARENAS: List["ShmArena"] = []
_ARENA_SEQ = 0


class ShmArena:
    """A named family of :class:`ShmColumn` segments with one shared tag.

    Owner-side only.  ``close()`` is idempotent and unlinks everything;
    arenas still open at interpreter exit are reclaimed by the module
    ``atexit`` hook.
    """

    __slots__ = ("prefix", "tag", "_columns", "_closed")

    def __init__(self, seed: bytes) -> None:
        global _ARENA_SEQ
        if shared_memory is None:
            raise ShmUnavailable("multiprocessing.shared_memory unavailable")
        _ARENA_SEQ += 1
        self.prefix = f"{SEGMENT_PREFIX}-{os.getpid()}-{_ARENA_SEQ}"
        self.tag = _arena_tag(seed + self.prefix.encode("utf-8"))
        self._columns: Dict[str, ShmColumn] = {}
        self._closed = False
        _LIVE_ARENAS.append(self)

    def column(self, key: str, capacity: int = MIN_CAPACITY) -> ShmColumn:
        column = self._columns.get(key)
        if column is None:
            if self._closed:
                raise ShmUnavailable(f"arena {self.prefix} is closed")
            column = ShmColumn(self.prefix, key, self.tag, capacity)
            self._columns[key] = column
        return column

    def sync(self, key: str, source) -> int:
        """Publish the unpublished suffix of ``source`` under ``key``."""
        return self.column(key, capacity=len(source)).sync(source)

    def manifest(self) -> Dict[str, Tuple[str, int]]:
        """``key → (segment_name, length)`` of every published column."""
        return {key: col.manifest() for key, col in self._columns.items()}

    @property
    def closed(self) -> bool:
        return self._closed

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        for column in self._columns.values():
            column.close(unlink=True)
        self._columns.clear()
        try:
            _LIVE_ARENAS.remove(self)
        except ValueError:  # pragma: no cover - already removed
            pass

    def __enter__(self) -> "ShmArena":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


@atexit.register
def _close_live_arenas() -> None:  # pragma: no cover - interpreter teardown
    for arena in list(_LIVE_ARENAS):
        try:
            arena.close()
        except Exception:
            pass


# ---------------------------------------------------------------------------
# Worker side: attach-only views
# ---------------------------------------------------------------------------

#: Per-process attachment cache: ``column id → (name, segment, int64 view)``.
#: The column id is the segment name minus its generation suffix, so a
#: grown column (new name, same id) evicts its predecessor's mapping.
_ATTACHED: Dict[str, Tuple[str, object, memoryview]] = {}


def _column_id(name: str) -> str:
    return name.rsplit(".g", 1)[0]


def _attach_untracked(name: str):
    """Attach to an existing segment without resource-tracker registration.

    Python < 3.13 registers *attached* segments with the attaching
    process's resource tracker (bpo-39959).  Under ``spawn`` that tracker
    would unlink the coordinator's segment when the worker exits; under
    ``fork`` the tracker is shared, so the registration collapses with the
    owner's and a later owner unlink double-unregisters.  Either way the
    registration is wrong — only the creator owns cleanup — so it is
    suppressed for the duration of the attach.  (3.13+ has ``track=False``
    for exactly this; the monkeypatch is the documented pre-3.13 idiom.)
    """
    original = resource_tracker.register
    resource_tracker.register = lambda *args, **kwargs: None
    try:
        return shared_memory.SharedMemory(name=name)
    finally:
        resource_tracker.register = original


def attach_column(name: str, tag: int, min_length: int) -> memoryview:
    """Attach (or reuse) a published column; returns its full int64 view.

    The payload of element ``i`` lives at ``view[HEADER_WORDS + i]``.
    Raises :class:`ShmUnavailable` on any mismatch — wrong tag, or fewer
    published elements than the caller was promised — so a worker racing a
    stale manifest fails loudly instead of reading garbage.
    """
    if shared_memory is None:
        raise ShmUnavailable("multiprocessing.shared_memory unavailable")
    column_id = _column_id(name)
    cached = _ATTACHED.get(column_id)
    if cached is not None and cached[0] == name:
        view = cached[2]
    else:
        if cached is not None:
            cached[2].release()
            cached[1].close()
            del _ATTACHED[column_id]
            telemetry.count("shm.remaps")
        try:
            segment = _attach_untracked(name)
        except (OSError, ValueError) as exc:
            raise ShmUnavailable(
                f"cannot attach shared-memory segment {name!r}: {exc}"
            ) from exc
        view = memoryview(segment.buf).cast("q")
        _ATTACHED[column_id] = (name, segment, view)
        telemetry.count("shm.attaches")
    if view[2] != tag:
        raise ShmUnavailable(
            f"segment {name!r} has tag {view[2]}, expected {tag}"
        )
    if view[0] < min_length:
        raise ShmUnavailable(
            f"segment {name!r} publishes {view[0]} elements, "
            f"need {min_length}"
        )
    return view


#: Per-process cache of memory-mapped *file* columns (graph-store chunks
#: adopted by the verification plane): ``(path, typecode) → (mmap, view)``.
#: Chunk files are content-addressed and immutable, so a mapping never
#: goes stale; an evicted chunk stays readable through the live mapping.
_FILE_ATTACHED: Dict[Tuple[str, str], Tuple[mmap.mmap, memoryview]] = {}


def attach_file_column(path: str, words: int, typecode: str = "q") -> memoryview:
    """Memory-map a column file read-only; returns its typed payload view.

    The file-backed twin of :func:`attach_column` for columns that
    already live on disk (graph-store chunks): element ``i`` is
    ``view[i]`` — no header.  Raises :class:`ShmUnavailable` when the
    file is missing or shorter than the ``words`` the manifest promised,
    so a stale manifest fails loudly instead of reading garbage.
    """
    key = (path, typecode)
    cached = _FILE_ATTACHED.get(key)
    if cached is not None:
        view = cached[1]
    else:
        try:
            with open(path, "rb") as handle:
                mapped = mmap.mmap(handle.fileno(), 0, access=mmap.ACCESS_READ)
        except (OSError, ValueError) as exc:
            raise ShmUnavailable(
                f"cannot map column file {path!r}: {exc}"
            ) from exc
        view = memoryview(mapped).cast(typecode)
        _FILE_ATTACHED[key] = (mapped, view)
        telemetry.count("shm.file_attaches")
    if len(view) < words:
        raise ShmUnavailable(
            f"column file {path!r} holds {len(view)} words, need {words}"
        )
    return view


@atexit.register
def detach_all() -> None:
    """Drop every cached attachment (shared-memory and file-backed).

    Runs at interpreter exit (releasing the exported memoryviews before
    ``SharedMemory.__del__`` would trip over them) and is callable from
    tests; harmless between explorations — the next attach re-maps.
    """
    for _, segment, view in _ATTACHED.values():
        view.release()
        segment.close()
    _ATTACHED.clear()
    for mapped, view in _FILE_ATTACHED.values():
        view.release()
        try:
            mapped.close()
        except (BufferError, ValueError):  # pragma: no cover - exported view
            pass
    _FILE_ATTACHED.clear()


def live_segment_names() -> List[str]:
    """Names of segments currently owned by live arenas (tests/CI)."""
    names: List[str] = []
    for arena in _LIVE_ARENAS:
        for column in arena._columns.values():
            if column.segment is not None:
                names.append(column.segment.name)
    return names
