"""High-performance engine layer: interning, packed graphs, parallel maps.

Every pipeline in the reproduction — Theorem 1 measure checking, the §6
fairness baseline, and Theorem 3 synthesis — funnels through explicit-state
exploration and per-transition checks.  This package keeps those hot paths
index-native:

* :mod:`repro.engine.interning` — states hashed once at discovery;
* :mod:`repro.engine.packed` — transitions as flat int arrays (CSR
  adjacency), command labels interned to bit positions;
* :mod:`repro.engine.analysis` — SCC decomposition and per-region
  enabled/executed command sets, computed once and cached on the graph;
* :mod:`repro.engine.parallel` — a chunked, deterministic process-pool map
  with a serial fallback, a **persistent worker pool** reused across calls,
  and **adaptive dispatch** (small work demotes to serial, so ``--jobs N``
  never loses to the serial path), used by ``check_measure``,
  ``synthesize_measure`` and the benchmark sweeps;
* :mod:`repro.engine.shard` — hash-sharded frontier-parallel exploration
  over the persistent pool, bit-identical to the serial BFS by
  construction (CLI ``--jobs`` on ``explore``/``decide``/``synthesize``);
* :mod:`repro.engine.graphstore` — an optional cross-run content-addressed
  on-disk store of explored graphs: columns as SHA-256-addressed binary
  chunks under small per-``(program, bounds, jobs)`` manifests, mmap-backed
  zero-copy warm loads, incremental re-exploration that replays unchanged
  commands of an edited program from the stored columns (bit-identical to
  a cold run), legacy v1 JSON migration, and LRU eviction with
  chunk reference counting (CLI ``--cache-dir`` / ``--cache-max-mb``);
* :mod:`repro.engine.reference` — the pre-engine algorithms, preserved
  verbatim as the "before" baseline for benchmarks and as an independent
  oracle for equivalence tests.

The engine never changes verdicts: every fast path is required (and tested)
to produce results bit-identical to the straightforward implementation.
"""

from repro.engine.interning import StateInterner
from repro.engine.packed import CommandTable, PackedGraph
from repro.engine.parallel import (
    PARALLEL_WORK_CUTOFF,
    chunk_items,
    effective_jobs,
    get_pool,
    parallel_map,
    resolve_jobs,
    shutdown_pool,
)
from repro.engine.analysis import GraphAnalyses, tarjan_scc_csr
from repro.engine.graphstore import (
    evict_cache,
    exploration_cache_key,
    explore_with_cache,
    load_cached_graph,
    store_graph,
)
from repro.engine.shard import (
    SHARD_ROUND_CUTOFF,
    explore_sharded,
    graph_digest,
)

__all__ = [
    "CommandTable",
    "GraphAnalyses",
    "PackedGraph",
    "PARALLEL_WORK_CUTOFF",
    "SHARD_ROUND_CUTOFF",
    "StateInterner",
    "chunk_items",
    "effective_jobs",
    "evict_cache",
    "exploration_cache_key",
    "explore_sharded",
    "explore_with_cache",
    "get_pool",
    "graph_digest",
    "load_cached_graph",
    "parallel_map",
    "resolve_jobs",
    "shutdown_pool",
    "store_graph",
    "tarjan_scc_csr",
]
