"""High-performance engine layer: interning, packed graphs, parallel maps.

Every pipeline in the reproduction — Theorem 1 measure checking, the §6
fairness baseline, and Theorem 3 synthesis — funnels through explicit-state
exploration and per-transition checks.  This package keeps those hot paths
index-native:

* :mod:`repro.engine.interning` — states hashed once at discovery;
* :mod:`repro.engine.packed` — transitions as flat int arrays (CSR
  adjacency), command labels interned to bit positions;
* :mod:`repro.engine.analysis` — SCC decomposition and per-region
  enabled/executed command sets, computed once and cached on the graph;
* :mod:`repro.engine.parallel` — a chunked, deterministic process-pool map
  with a serial fallback, used by ``check_measure``, ``synthesize_measure``
  and the benchmark sweeps;
* :mod:`repro.engine.reference` — the pre-engine algorithms, preserved
  verbatim as the "before" baseline for benchmarks and as an independent
  oracle for equivalence tests.

The engine never changes verdicts: every fast path is required (and tested)
to produce results bit-identical to the straightforward implementation.
"""

from repro.engine.interning import StateInterner
from repro.engine.packed import CommandTable, PackedGraph
from repro.engine.parallel import chunk_items, parallel_map, resolve_jobs
from repro.engine.analysis import GraphAnalyses, tarjan_scc_csr

__all__ = [
    "CommandTable",
    "GraphAnalyses",
    "PackedGraph",
    "StateInterner",
    "chunk_items",
    "parallel_map",
    "resolve_jobs",
    "tarjan_scc_csr",
]
