"""Cross-run on-disk cache of explored graphs.

Repeated CLI and benchmark invocations re-explore the same program with the
same bounds from scratch — for finite-state workloads that is the dominant
cost of the whole pipeline.  This module persists a
:class:`~repro.ts.explore.ReachableGraph` to disk and reloads it
bit-identically (same state order, same transitions, same enabled sets,
same frontier), so a second run skips exploration entirely.

The cache key is content-addressed: the SHA-256 of the *canonical* program
text (the pretty-printer's rendering, so formatting differences do not
fragment the cache) together with the exploration bounds and the on-disk
format version.  Only :class:`~repro.gcl.program.Program` systems are
cacheable — their states are plain integer valuations; other transition
systems silently bypass the cache.

Entries are JSON (no pickle: a shared cache directory must not be a code
execution vector) and are written atomically (temp file + ``os.replace``),
so concurrent runs at worst redo work.  Unreadable, corrupt or
version-mismatched entries are treated as misses and overwritten.

The cache is unbounded by default; :func:`evict_cache` (CLI
``--cache-max-mb``) trims it to a size budget in least-recently-used
order — loads touch an entry's mtime, deletions tolerate concurrent
removal, and corrupt entries are ordinary eviction candidates.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from pathlib import Path
from typing import Optional, Tuple

from repro.gcl.pretty import render_program
from repro.gcl.program import Program
from repro.gcl.state import ProgramState
from repro.telemetry import core as telemetry

if False:  # typing only — ts.explore imports this package, keep it lazy
    from repro.ts.explore import ReachableGraph

#: Bump when the serialized layout changes; old entries become misses.
FORMAT_VERSION = 1


def exploration_cache_key(
    program: Program,
    max_states: Optional[int] = None,
    max_depth: Optional[int] = None,
    n_jobs: Optional[int] = None,
) -> str:
    """The content hash naming this ``(program, bounds, jobs)`` exploration.

    Canonicalising through the pretty printer makes the key insensitive to
    whitespace/comment differences in the source text while remaining
    sensitive to any semantic change (different guard, bound, initial
    range, command order — all alter the rendering).  ``n_jobs`` enters the
    key normalised through :func:`~repro.engine.parallel.resolve_jobs`
    (``None``/``0``/``1`` share one key): the sharded explorer is
    bit-identical to serial, but keying on the job count keeps every entry
    attributable to the exact invocation that produced it.
    """
    from repro.engine.parallel import resolve_jobs

    canonical = render_program(program.ast)
    payload = json.dumps(
        {
            "format": FORMAT_VERSION,
            "program": canonical,
            "max_states": max_states,
            "max_depth": max_depth,
            "jobs": resolve_jobs(n_jobs),
        },
        sort_keys=True,
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def _entry_path(cache_dir: os.PathLike, key: str) -> Path:
    return Path(cache_dir) / f"graph-{key}.json"


def store_graph(
    graph: ReachableGraph,
    cache_dir: os.PathLike,
    key: str,
) -> Path:
    """Serialize ``graph`` under ``cache_dir`` (atomically); returns the path.

    The graph's system must be a :class:`Program` (states are
    :class:`ProgramState` valuations over the program's variables).
    """
    program = graph.system
    if not isinstance(program, Program):
        raise TypeError(
            f"only Program graphs are cacheable, got {type(program).__name__}"
        )
    names = program.variable_names
    labels = list(program.commands())
    label_slot = {label: i for i, label in enumerate(labels)}
    payload = {
        "format": FORMAT_VERSION,
        "key": key,
        "program": program.name,
        "names": list(names),
        "commands": labels,
        "states": [list(state.values) for state in graph.states],
        "transitions": [
            [t.source, label_slot[t.command], t.target]
            for t in graph.transitions
        ],
        "enabled": [
            sorted(label_slot[c] for c in graph.enabled_at(i))
            for i in range(len(graph))
        ],
        "initial_count": len(graph.initial_indices),
        "frontier": sorted(graph.frontier),
    }
    directory = Path(cache_dir)
    directory.mkdir(parents=True, exist_ok=True)
    target = _entry_path(directory, key)
    handle, temp_path = tempfile.mkstemp(
        dir=directory, prefix=".graph-", suffix=".tmp"
    )
    try:
        with os.fdopen(handle, "w", encoding="utf-8") as stream:
            json.dump(payload, stream, separators=(",", ":"))
        os.replace(temp_path, target)
    except BaseException:
        try:
            os.unlink(temp_path)
        except OSError:
            pass
        raise
    telemetry.count("diskcache.store")
    if telemetry.enabled():
        try:
            telemetry.count("diskcache.bytes_written", target.stat().st_size)
        except OSError:
            pass
    return target


def load_cached_graph(
    program: Program,
    cache_dir: os.PathLike,
    key: str,
) -> Optional[ReachableGraph]:
    """Reload a cached exploration of ``program``; ``None`` on any miss.

    The reconstructed graph is attached to the *given* program instance, so
    downstream code (synthesis, simulation, products) behaves exactly as if
    the graph had just been explored.
    """
    from repro.ts.explore import IndexedTransition, ReachableGraph

    path = _entry_path(cache_dir, key)
    try:
        with open(path, "r", encoding="utf-8") as stream:
            raw = stream.read()
        payload = json.loads(raw)
    except OSError:
        telemetry.count("diskcache.miss")
        return None
    except ValueError:
        # The entry exists but does not parse — it is corrupt, not absent.
        telemetry.count("diskcache.miss")
        telemetry.count("diskcache.corrupt")
        return None
    telemetry.count("diskcache.bytes_read", len(raw))
    try:
        # Touch the entry so LRU eviction sees it as recently used; a
        # concurrent eviction racing this load just means a refetch later.
        os.utime(path)
    except OSError:
        pass
    try:
        if payload["format"] != FORMAT_VERSION or payload["key"] != key:
            telemetry.count("diskcache.miss")
            return None
        names = tuple(payload["names"])
        labels = payload["commands"]
        if names != program.variable_names or tuple(labels) != program.commands():
            telemetry.count("diskcache.miss")
            return None
        states = [
            ProgramState(names, tuple(values)) for values in payload["states"]
        ]
        transitions = [
            IndexedTransition(source, labels[slot], target)
            for source, slot, target in payload["transitions"]
        ]
        enabled = [
            frozenset(labels[slot] for slot in slots)
            for slots in payload["enabled"]
        ]
        graph = ReachableGraph(
            system=program,
            states=states,
            transitions=transitions,
            enabled=enabled,
            initial_count=payload["initial_count"],
            frontier=payload["frontier"],
        )
    except (KeyError, IndexError, TypeError, ValueError):
        # Parsed as JSON but not as a graph entry: structurally corrupt.
        telemetry.count("diskcache.miss")
        telemetry.count("diskcache.corrupt")
        return None
    telemetry.count("diskcache.hit")
    return graph


def evict_cache(
    cache_dir: os.PathLike,
    max_mb: Optional[float],
) -> list:
    """Trim the cache directory to ``max_mb`` megabytes, LRU first.

    Entries are removed oldest-mtime-first until the remaining entries fit
    the budget (loads touch mtime, so mtime order *is* recency order).  The
    budget is a hard cap: a single entry larger than it is itself evicted.
    Corrupt entries are ordinary candidates — eviction never reads entry
    contents — and files that vanish mid-scan (concurrent eviction or
    store) are skipped, so deletion is effectively atomic from the caller's
    view.  Returns the paths removed.  ``max_mb=None`` is a no-op
    (unbounded cache, the default).
    """
    if max_mb is None:
        return []
    budget = int(max_mb * 1024 * 1024)
    entries = []
    total = 0
    try:
        candidates = list(Path(cache_dir).glob("graph-*.json"))
    except OSError:
        return []
    for path in candidates:
        try:
            stat = path.stat()
        except OSError:
            continue  # vanished under us — somebody else's eviction
        entries.append((stat.st_mtime, path.name, path, stat.st_size))
        total += stat.st_size
    entries.sort()  # oldest first; name breaks mtime ties deterministically
    removed = []
    for _, _, path, size in entries:
        if total <= budget:
            break
        try:
            path.unlink()
        except FileNotFoundError:
            pass  # already gone — still no longer occupies the budget
        except OSError:
            continue  # undeletable entry: leave it, keep trimming others
        total -= size
        removed.append(path)
        telemetry.count("diskcache.evict")
        telemetry.count("diskcache.bytes_evicted", size)
    return removed


def explore_with_cache(
    program: Program,
    max_states: Optional[int] = None,
    max_depth: Optional[int] = None,
    cache_dir: Optional[os.PathLike] = None,
    strict: bool = False,
    n_jobs: Optional[int] = None,
    cache_max_mb: Optional[float] = None,
) -> Tuple[ReachableGraph, bool]:
    """``(graph, was_cache_hit)`` — explore, or reload a previous run.

    With ``cache_dir=None`` this is plain
    :func:`~repro.ts.explore.explore`.  Otherwise a hit skips exploration
    entirely; a miss explores (sharded across ``n_jobs`` workers when
    requested), stores the result for the next run, and — when
    ``cache_max_mb`` is set — trims the cache to the size budget, least
    recently used entries first.  Non-``Program`` systems cannot be cached
    — call ``explore`` directly for those.
    """
    from repro.ts.explore import explore

    if cache_dir is None:
        return (
            explore(
                program,
                max_states=max_states,
                max_depth=max_depth,
                strict=strict,
                n_jobs=n_jobs,
            ),
            False,
        )
    key = exploration_cache_key(program, max_states, max_depth, n_jobs)
    cached = load_cached_graph(program, cache_dir, key)
    if cached is not None:
        return cached, True
    graph = explore(
        program,
        max_states=max_states,
        max_depth=max_depth,
        strict=strict,
        n_jobs=n_jobs,
    )
    store_graph(graph, cache_dir, key)
    evict_cache(cache_dir, cache_max_mb)
    return graph, False
