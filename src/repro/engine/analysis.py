"""Memoized graph analyses over the packed representation.

The seed implementation recomputed SCC decompositions by scanning *every*
graph transition per call and rebuilt ``frozenset`` command sets per query;
synthesis on a 2 500-state grid spent ~60 % of its time in exactly that
churn.  :class:`GraphAnalyses` computes the packed arrays, per-state
enabled bitmasks, and the full-graph SCC decomposition once, caches them on
the graph, and answers restricted queries by walking only the region's CSR
slices.

Determinism contract: :func:`tarjan_scc_csr` visits roots in ascending
index order and successors in original transition order — exactly what the
seed's dict-based Tarjan did — so component order (reverse topological,
sinks first) and every downstream witness are bit-identical to the old
path.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, List, Optional, Sequence

from repro.engine.packed import CommandTable, PackedGraph

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (explore → here)
    from repro.ts.explore import ReachableGraph


class TarjanScratch:
    """Recycled work arrays for :func:`tarjan_scc_csr`.

    One SCC pass needs a visitation index, a lowlink, an on-stack flag and
    a DFS work stack per state.  The refinement loop of the fair-cycle
    search runs *many* passes over shrinking regions of the same graph;
    allocating those arrays per call made every level O(n) even when its
    region held three states.  A scratch is allocated once, grows
    monotonically to the largest graph it has served, and is reset between
    passes in O(1): visitation indices are epoch-encoded (``order[i] <
    base`` means unseen this pass), so nothing is ever cleared.

    Not thread-safe; callers that share one (e.g.
    :class:`GraphAnalyses`, the streaming checker's
    :class:`~repro.fairness.checker.RefinementScratch`) are single-threaded.
    """

    __slots__ = ("n", "base", "order", "lowlink", "on_stack", "flags",
                 "stack", "work_node", "work_pos")

    def __init__(self) -> None:
        self.n = 0
        # Epoch 0 would collide with freshly zeroed ``order`` entries.
        self.base = 1
        self.order: List[int] = []
        self.lowlink: List[int] = []
        self.on_stack = bytearray()
        self.flags = bytearray()
        self.stack: List[int] = []
        self.work_node: List[int] = []
        self.work_pos: List[int] = []

    def ensure(self, n: int) -> None:
        """Grow capacity to ``n`` states (never shrinks)."""
        grow = n - self.n
        if grow <= 0:
            return
        self.order.extend([0] * grow)
        self.lowlink.extend([0] * grow)
        self.on_stack.extend(bytes(grow))
        self.flags.extend(bytes(grow))
        self.work_node.extend([0] * grow)
        self.work_pos.extend([0] * grow)
        self.n = n


def tarjan_scc_csr(
    packed: PackedGraph,
    members: Optional[Sequence[int]] = None,
    stamp: Optional[Sequence[int]] = None,
    stamp_value: int = 0,
    scratch: Optional[TarjanScratch] = None,
) -> List[List[int]]:
    """Tarjan's SCC algorithm over CSR arrays, iterative form.

    ``members`` restricts to an induced subgraph (edges leaving it are
    ignored); ``None`` means all states.  Components come out in reverse
    topological order (sinks first), nodes visited in ascending order —
    matching :func:`repro.ts.graph.tarjan_scc` on the equivalent dict input
    exactly.

    When ``stamp`` is given (a generation array with ``stamp[i] ==
    stamp_value`` marking membership), it replaces the per-call
    ``bytearray`` rebuild: ``members`` must then be pre-stamped and in
    ascending order.  The SCC-refinement loop of the fair-cycle search
    reuses one stamp array across all its recursion levels this way.

    ``scratch`` recycles the per-state work arrays across calls
    (:class:`TarjanScratch`); omitted, a private one is used.  The DFS
    work stack is two flat int arrays with an explicit depth pointer —
    no per-visit list objects — so the inner loop allocates only the
    output components and the boxed counters Python cannot avoid.
    """
    n = packed.n
    out_start = packed.out_start
    out_eid = packed.out_eid
    dst = packed.dst

    if scratch is None:
        scratch = TarjanScratch()
    scratch.ensure(n)

    flags = None
    if stamp is not None:
        if members is None:
            raise ValueError("stamped mode needs the stamped members")
        nodes = members
    elif members is None:
        nodes = range(n)
    else:
        nodes = sorted(members)
        flags = scratch.flags
        for i in nodes:
            flags[i] = 1

    base = scratch.base
    order = scratch.order
    lowlink = scratch.lowlink
    on_stack = scratch.on_stack
    stack = scratch.stack
    work_node = scratch.work_node
    work_pos = scratch.work_pos
    result: List[List[int]] = []
    counter = base

    try:
        for root in nodes:
            if order[root] >= base:
                continue
            depth = 0
            work_node[0] = root
            work_pos[0] = out_start[root]
            while depth >= 0:
                node = work_node[depth]
                pos = work_pos[depth]
                if pos == out_start[node]:
                    order[node] = counter
                    lowlink[node] = counter
                    counter += 1
                    stack.append(node)
                    on_stack[node] = 1
                end = out_start[node + 1]
                advanced = False
                while pos < end:
                    child = dst[out_eid[pos]]
                    pos += 1
                    if flags is not None:
                        if not flags[child]:
                            continue
                    elif stamp is not None and stamp[child] != stamp_value:
                        continue
                    if order[child] < base:
                        work_pos[depth] = pos
                        depth += 1
                        work_node[depth] = child
                        work_pos[depth] = out_start[child]
                        advanced = True
                        break
                    if on_stack[child] and order[child] < lowlink[node]:
                        lowlink[node] = order[child]
                if advanced:
                    continue
                work_pos[depth] = pos
                if lowlink[node] == order[node]:
                    component: List[int] = []
                    while True:
                        w = stack.pop()
                        on_stack[w] = 0
                        component.append(w)
                        if w == node:
                            break
                    result.append(component)
                depth -= 1
                if depth >= 0:
                    parent = work_node[depth]
                    if lowlink[node] < lowlink[parent]:
                        lowlink[parent] = lowlink[node]
    finally:
        # Retire this pass's epoch window and restore the member flags, so
        # the scratch is clean for its next caller in O(|members|), not
        # O(n) — even when a pathological CSR raised mid-walk.
        scratch.base = counter + 1
        if flags is not None:
            for i in nodes:
                flags[i] = 0
        while stack:  # non-empty only if the walk raised
            on_stack[stack.pop()] = 0
    return result


class GraphAnalyses:
    """Packed arrays + cached analyses for one :class:`ReachableGraph`.

    Built lazily by :attr:`ReachableGraph.analyses` and shared by every
    downstream query; nothing here mutates after construction except the
    memo fields.
    """

    __slots__ = (
        "commands",
        "packed",
        "enabled_masks",
        "_full_components",
        "_scratch",
    )

    def __init__(self, graph: "ReachableGraph") -> None:
        # The graph already owns the interned command table, the packed
        # transition columns (CSR-indexed lazily) and the per-state enabled
        # bitmasks — exploration streamed straight into them.  Reuse them:
        # construction does no per-transition work, so sub-cutoff graphs
        # never pay engine setup they don't use.
        self.commands: CommandTable = graph.command_table
        self.packed: PackedGraph = graph.packed
        self.enabled_masks: Sequence[int] = graph.enabled_masks
        self._full_components: Optional[List[List[int]]] = None
        self._scratch: Optional[TarjanScratch] = None

    # -- SCC ------------------------------------------------------------

    def scratch(self) -> TarjanScratch:
        """This graph's recycled Tarjan scratch (lazy; shared by every
        region query, so repeated restricted decompositions — synthesis
        probes hundreds per graph — allocate their work arrays once)."""
        if self._scratch is None:
            self._scratch = TarjanScratch()
        return self._scratch

    def full_components(self) -> List[List[int]]:
        """SCCs of the whole graph (computed once, then cached)."""
        if self._full_components is None:
            self._full_components = tarjan_scc_csr(
                self.packed, scratch=self.scratch()
            )
        return self._full_components

    def components(
        self, members: Optional[Sequence[int]] = None
    ) -> List[List[int]]:
        """SCCs of the graph or of the subgraph induced by ``members``."""
        if members is None:
            return self.full_components()
        return tarjan_scc_csr(self.packed, members, scratch=self.scratch())

    # -- region command sets --------------------------------------------

    def internal_eids(self, members: Iterable[int]) -> List[int]:
        """Transition ids with both endpoints in ``members``, by source
        in ascending order (within a source: original transition order)."""
        inside = members if isinstance(members, (set, frozenset)) else set(members)
        packed = self.packed
        out_start = packed.out_start
        out_eid = packed.out_eid
        dst = packed.dst
        result: List[int] = []
        for i in sorted(inside):
            for pos in range(out_start[i], out_start[i + 1]):
                eid = out_eid[pos]
                if dst[eid] in inside:
                    result.append(eid)
        return result

    def executed_mask(self, eids: Iterable[int]) -> int:
        """Bitmask of commands executed by the given transition ids."""
        cmd = self.packed.cmd
        mask = 0
        for eid in eids:
            mask |= 1 << cmd[eid]
        return mask

    def enabled_mask_within(self, members: Iterable[int]) -> int:
        """Bitmask of commands enabled at some state of ``members``."""
        masks = self.enabled_masks
        mask = 0
        for i in members:
            mask |= masks[i]
        return mask

    def executed_mask_within(self, members: Iterable[int]) -> int:
        """Bitmask of commands executed on transitions inside ``members``."""
        inside = members if isinstance(members, (set, frozenset)) else set(members)
        packed = self.packed
        out_start = packed.out_start
        out_eid = packed.out_eid
        dst = packed.dst
        cmd = packed.cmd
        mask = 0
        for i in inside:
            for pos in range(out_start[i], out_start[i + 1]):
                eid = out_eid[pos]
                if dst[eid] in inside:
                    mask |= 1 << cmd[eid]
        return mask

    def executed_mask_stamped(
        self, members: Sequence[int], stamp: Sequence[int], stamp_value: int
    ) -> int:
        """Executed-command bitmask of a *stamped* region.

        ``stamp[i] == stamp_value`` marks membership; ``members`` lists
        the stamped states.  Same answer as :meth:`executed_mask_within`
        on the equivalent set, without building one — the fair-cycle
        refinement calls this once per candidate region per level.
        """
        packed = self.packed
        out_start = packed.out_start
        out_eid = packed.out_eid
        dst = packed.dst
        cmd = packed.cmd
        mask = 0
        for i in members:
            for pos in range(out_start[i], out_start[i + 1]):
                eid = out_eid[pos]
                if stamp[dst[eid]] == stamp_value:
                    mask |= 1 << cmd[eid]
        return mask

    def labels_of_mask(self, mask: int) -> frozenset:
        """Frozenset of command labels for a bitmask (cached)."""
        return self.commands.labels_of_mask(mask)
