"""Memoized graph analyses over the packed representation.

The seed implementation recomputed SCC decompositions by scanning *every*
graph transition per call and rebuilt ``frozenset`` command sets per query;
synthesis on a 2 500-state grid spent ~60 % of its time in exactly that
churn.  :class:`GraphAnalyses` computes the packed arrays, per-state
enabled bitmasks, and the full-graph SCC decomposition once, caches them on
the graph, and answers restricted queries by walking only the region's CSR
slices.

Determinism contract: :func:`tarjan_scc_csr` visits roots in ascending
index order and successors in original transition order — exactly what the
seed's dict-based Tarjan did — so component order (reverse topological,
sinks first) and every downstream witness are bit-identical to the old
path.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, List, Optional, Sequence

from repro.engine.packed import CommandTable, PackedGraph

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (explore → here)
    from repro.ts.explore import ReachableGraph


def tarjan_scc_csr(
    packed: PackedGraph,
    members: Optional[Sequence[int]] = None,
    stamp: Optional[Sequence[int]] = None,
    stamp_value: int = 0,
) -> List[List[int]]:
    """Tarjan's SCC algorithm over CSR arrays, iterative form.

    ``members`` restricts to an induced subgraph (edges leaving it are
    ignored); ``None`` means all states.  Components come out in reverse
    topological order (sinks first), nodes visited in ascending order —
    matching :func:`repro.ts.graph.tarjan_scc` on the equivalent dict input
    exactly.

    When ``stamp`` is given (a generation array with ``stamp[i] ==
    stamp_value`` marking membership), it replaces the per-call
    ``bytearray`` rebuild: ``members`` must then be pre-stamped and in
    ascending order.  The SCC-refinement loop of the fair-cycle search
    reuses one stamp array across all its recursion levels this way.
    """
    n = packed.n
    out_start = packed.out_start
    out_eid = packed.out_eid
    dst = packed.dst

    if stamp is not None:
        if members is None:
            raise ValueError("stamped mode needs the stamped members")
        nodes = members
        flags = None
    elif members is None:
        nodes = range(n)
        flags = None
    else:
        nodes = sorted(members)
        flags = bytearray(n)
        for i in nodes:
            flags[i] = 1

    UNSEEN = -1
    indices = [UNSEEN] * n
    lowlink = [0] * n
    on_stack = bytearray(n)
    stack: List[int] = []
    result: List[List[int]] = []
    counter = 0

    for root in nodes:
        if indices[root] != UNSEEN:
            continue
        # Work entries: (node, position into its out-slice).
        work: List[List[int]] = [[root, out_start[root]]]
        while work:
            top = work[-1]
            node, pos = top
            if pos == out_start[node]:
                indices[node] = counter
                lowlink[node] = counter
                counter += 1
                stack.append(node)
                on_stack[node] = 1
            end = out_start[node + 1]
            advanced = False
            while pos < end:
                child = dst[out_eid[pos]]
                pos += 1
                if flags is not None:
                    if not flags[child]:
                        continue
                elif stamp is not None and stamp[child] != stamp_value:
                    continue
                if indices[child] == UNSEEN:
                    top[1] = pos
                    work.append([child, out_start[child]])
                    advanced = True
                    break
                if on_stack[child] and indices[child] < lowlink[node]:
                    lowlink[node] = indices[child]
            if advanced:
                continue
            top[1] = pos
            if lowlink[node] == indices[node]:
                component: List[int] = []
                while True:
                    w = stack.pop()
                    on_stack[w] = 0
                    component.append(w)
                    if w == node:
                        break
                result.append(component)
            work.pop()
            if work:
                parent = work[-1][0]
                if lowlink[node] < lowlink[parent]:
                    lowlink[parent] = lowlink[node]
    return result


class GraphAnalyses:
    """Packed arrays + cached analyses for one :class:`ReachableGraph`.

    Built lazily by :attr:`ReachableGraph.analyses` and shared by every
    downstream query; nothing here mutates after construction except the
    memo fields.
    """

    __slots__ = (
        "commands",
        "packed",
        "enabled_masks",
        "_full_components",
    )

    def __init__(self, graph: "ReachableGraph") -> None:
        # The graph already owns the interned command table, the packed
        # transition columns (CSR-indexed lazily) and the per-state enabled
        # bitmasks — exploration streamed straight into them.  Reuse them:
        # construction does no per-transition work, so sub-cutoff graphs
        # never pay engine setup they don't use.
        self.commands: CommandTable = graph.command_table
        self.packed: PackedGraph = graph.packed
        self.enabled_masks: Sequence[int] = graph.enabled_masks
        self._full_components: Optional[List[List[int]]] = None

    # -- SCC ------------------------------------------------------------

    def full_components(self) -> List[List[int]]:
        """SCCs of the whole graph (computed once, then cached)."""
        if self._full_components is None:
            self._full_components = tarjan_scc_csr(self.packed)
        return self._full_components

    def components(
        self, members: Optional[Sequence[int]] = None
    ) -> List[List[int]]:
        """SCCs of the graph or of the subgraph induced by ``members``."""
        if members is None:
            return self.full_components()
        return tarjan_scc_csr(self.packed, members)

    # -- region command sets --------------------------------------------

    def internal_eids(self, members: Iterable[int]) -> List[int]:
        """Transition ids with both endpoints in ``members``, by source
        in ascending order (within a source: original transition order)."""
        inside = members if isinstance(members, (set, frozenset)) else set(members)
        packed = self.packed
        out_start = packed.out_start
        out_eid = packed.out_eid
        dst = packed.dst
        result: List[int] = []
        for i in sorted(inside):
            for pos in range(out_start[i], out_start[i + 1]):
                eid = out_eid[pos]
                if dst[eid] in inside:
                    result.append(eid)
        return result

    def executed_mask(self, eids: Iterable[int]) -> int:
        """Bitmask of commands executed by the given transition ids."""
        cmd = self.packed.cmd
        mask = 0
        for eid in eids:
            mask |= 1 << cmd[eid]
        return mask

    def enabled_mask_within(self, members: Iterable[int]) -> int:
        """Bitmask of commands enabled at some state of ``members``."""
        masks = self.enabled_masks
        mask = 0
        for i in members:
            mask |= masks[i]
        return mask

    def executed_mask_within(self, members: Iterable[int]) -> int:
        """Bitmask of commands executed on transitions inside ``members``."""
        inside = members if isinstance(members, (set, frozenset)) else set(members)
        packed = self.packed
        out_start = packed.out_start
        out_eid = packed.out_eid
        dst = packed.dst
        cmd = packed.cmd
        mask = 0
        for i in inside:
            for pos in range(out_start[i], out_start[i + 1]):
                eid = out_eid[pos]
                if dst[eid] in inside:
                    mask |= 1 << cmd[eid]
        return mask

    def executed_mask_stamped(
        self, members: Sequence[int], stamp: Sequence[int], stamp_value: int
    ) -> int:
        """Executed-command bitmask of a *stamped* region.

        ``stamp[i] == stamp_value`` marks membership; ``members`` lists
        the stamped states.  Same answer as :meth:`executed_mask_within`
        on the equivalent set, without building one — the fair-cycle
        refinement calls this once per candidate region per level.
        """
        packed = self.packed
        out_start = packed.out_start
        out_eid = packed.out_eid
        dst = packed.dst
        cmd = packed.cmd
        mask = 0
        for i in members:
            for pos in range(out_start[i], out_start[i + 1]):
                eid = out_eid[pos]
                if stamp[dst[eid]] == stamp_value:
                    mask |= 1 << cmd[eid]
        return mask

    def labels_of_mask(self, mask: int) -> frozenset:
        """Frozenset of command labels for a bitmask (cached)."""
        return self.commands.labels_of_mask(mask)
