"""The pre-engine algorithms, preserved as baseline and oracle.

These are the seed implementations of SCC decomposition, measure checking
and measure synthesis, kept byte-for-byte in behaviour (and deliberately
in *cost*: the reference ``decompose`` scans every graph transition per
call, and the reference synthesis re-evaluates requirement predicates per
region — the exact quadratic churn the engine removes).

Two consumers:

* ``benchmarks/bench_e13_engine_scaling.py`` uses them as the "before"
  column of the speedup table;
* ``tests/engine`` uses them as an independently-written oracle that the
  engine fast paths must match bit-for-bit.

Do not optimise this module.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.fairness.generalized import FairnessRequirement, command_requirements
from repro.measures.assignment import StackAssignment
from repro.measures.hypotheses import TERMINATION, Hypothesis
from repro.measures.stack import Stack
from repro.measures.verification import (
    ActiveWitness,
    MeasureCheckResult,
    TransitionViolation,
    find_active_level_general,
)
from repro.ts.explore import IndexedTransition, ReachableGraph
from repro.ts.graph import SccDecomposition, tarjan_scc


def decompose_reference(
    graph: ReachableGraph,
    restrict_to=None,
) -> SccDecomposition:
    """Seed ``decompose``: rebuilds the successor dict from *all* graph
    transitions on every call."""
    if restrict_to is None:
        members: Set[int] = set(range(len(graph)))
    else:
        members = set(restrict_to)
    successors: Dict[int, List[int]] = {i: [] for i in members}
    for t in graph.transitions:
        if t.source in members and t.target in members:
            successors[t.source].append(t.target)
    components = tarjan_scc(sorted(members), successors)
    component_of: Dict[int, int] = {}
    for position, component in enumerate(components):
        for node in component:
            component_of[node] = position
    return SccDecomposition(
        components=tuple(tuple(sorted(c)) for c in components),
        component_of=component_of,
    )


def internal_transitions_reference(
    graph: ReachableGraph,
    members,
) -> List[IndexedTransition]:
    """Seed ``internal_transitions`` (set-materialising, object-returning)."""
    inside = set(members)
    return [
        t
        for i in inside
        for t in graph.outgoing(i)
        if t.target in inside
    ]


def check_measure_reference(
    graph: ReachableGraph,
    assignment: StackAssignment,
    keep_witnesses: bool = True,
    requirements=None,
) -> MeasureCheckResult:
    """Seed ``check_measure``: per-transition frozenset churn, no pooling."""
    order = assignment.order
    stacks: List[Stack] = []
    for index in range(len(graph)):
        state = graph.state_of(index)
        stack = assignment(state)
        for hypothesis in stack:
            if hypothesis.value is not None:
                order.check_member(hypothesis.value)
        stacks.append(stack)

    witnesses: List[ActiveWitness] = []
    violations: List[TransitionViolation] = []
    for transition in graph.transitions:
        source_stack = stacks[transition.source]
        target_stack = stacks[transition.target]
        if requirements is None:
            invalidated = frozenset({transition.command})
            active_subjects = graph.enabled_at(transition.source) | graph.enabled_at(
                transition.target
            )
        else:
            source_state = graph.state_of(transition.source)
            target_state = graph.state_of(transition.target)
            invalidated = frozenset(
                r.name
                for r in requirements
                if r.fulfilled_by(source_state, transition.command, target_state)
            )
            active_subjects = frozenset(
                r.name
                for r in requirements
                if r.enabled_at(source_state) or r.enabled_at(target_state)
            )
        data, failures = find_active_level_general(
            source_stack,
            target_stack,
            invalidated,
            active_subjects,
            order,
        )
        plain = graph.to_transition(transition)
        if data is None:
            violations.append(
                TransitionViolation(
                    transition=plain,
                    source_stack=source_stack,
                    target_stack=target_stack,
                    failures=tuple(failures),
                )
            )
        elif keep_witnesses:
            witnesses.append(
                ActiveWitness(
                    transition=plain,
                    level=data.level,
                    subject=data.subject,
                    reason=data.reason,
                )
            )

    return MeasureCheckResult(
        witnesses=witnesses,
        violations=violations,
        transitions_checked=len(graph.transitions),
        complete=graph.complete,
        order_well_founded=order.is_well_founded(),
    )


def synthesize_measure_reference(
    graph: ReachableGraph,
    requirements: Optional[Sequence[FairnessRequirement]] = None,
):
    """Seed ``synthesize_measure``: requirement predicates re-evaluated per
    region, full-transition-scan decompositions per recursion level."""
    from repro.completeness.synthesis import (
        NotFairlyTerminatingError,
        RegionInfo,
        SynthesisResult,
    )
    from repro.fairness.generalized import find_generally_fair_cycle

    if not graph.complete:
        raise ValueError(
            "synthesis needs the complete reachable graph; "
            f"exploration left {len(graph.frontier)} frontier states"
        )
    if requirements is None:
        requirements = command_requirements(graph.system)

    def demanded_within(region, requirement):
        return [
            index
            for index in region
            if requirement.enabled_at(graph.state_of(index))
        ]

    def fulfilled_within(internal, requirement):
        return any(
            requirement.fulfilled_by(
                graph.state_of(t.source), t.command, graph.state_of(t.target)
            )
            for t in internal
        )

    def process_region(region: List[int], level: int, entries) -> RegionInfo:
        members = set(region)
        internal = internal_transitions_reference(graph, region)
        helpful = None
        enabled_here: List[int] = []
        for requirement in requirements:
            demanded = demanded_within(region, requirement)
            if demanded and not fulfilled_within(internal, requirement):
                helpful = requirement
                enabled_here = demanded
                break
        if helpful is None:
            witness = find_generally_fair_cycle(graph, requirements)
            raise NotFairlyTerminatingError(
                f"region of {len(region)} states fulfils every demanded "
                "requirement internally — it hosts a fair cycle, so the "
                "program does not fairly terminate",
                witness,
            )
        rest = sorted(members - set(enabled_here))
        sub = decompose_reference(graph, restrict_to=rest)
        for index in enabled_here:
            entries[index].append(Hypothesis(helpful.name, 0))
        for index in rest:
            entries[index].append(
                Hypothesis(helpful.name, 1 + sub.component_of[index])
            )
        info = RegionInfo(
            level=level,
            helpful=helpful.name,
            states=tuple(region),
            enabled_here=tuple(sorted(enabled_here)),
        )
        for component in sub.components:
            if not internal_transitions_reference(graph, component):
                continue
            info.children.append(
                process_region(list(component), level + 1, entries)
            )
        return info

    top = decompose_reference(graph)
    base_entries: Dict[int, List[Hypothesis]] = {
        index: [Hypothesis(TERMINATION, top.component_of[index])]
        for index in range(len(graph))
    }
    regions: List[RegionInfo] = []
    for component in top.components:
        if not internal_transitions_reference(graph, component):
            continue
        regions.append(
            process_region(list(component), 1, base_entries)
        )
    stacks = {index: Stack(entries) for index, entries in base_entries.items()}
    return SynthesisResult(graph=graph, stacks=stacks, regions=regions)


def find_fair_cycle_reference(graph: ReachableGraph, restrict_to=None):
    """Seed ``find_fair_cycle``: per-iteration full-scan decompositions."""
    from repro.fairness.checker import FairCycle
    from repro.ts.lasso import (
        cycle_through_all,
        find_path_indices,
        lasso_from_indices,
    )

    region: Set[int] = (
        set(range(len(graph))) if restrict_to is None else set(restrict_to)
    )
    pending: List[Set[int]] = [region]
    while pending:
        current = pending.pop()
        decomposition = decompose_reference(graph, restrict_to=current)
        for component in decomposition.components:
            internal = internal_transitions_reference(graph, component)
            if not internal:
                continue
            enabled = frozenset(
                cmd for i in component for cmd in graph.enabled_at(i)
            )
            executed = frozenset(t.command for t in internal)
            violating = enabled - executed
            if not violating:
                cycle = cycle_through_all(graph, component)
                stem = find_path_indices(
                    graph, graph.initial_indices, cycle[0].source
                )
                lasso = lasso_from_indices(graph, stem, cycle)
                return FairCycle(
                    lasso=lasso,
                    region=tuple(component),
                    enabled_on_cycle=enabled,
                    executed_on_cycle=executed,
                )
            survivors = {
                i for i in component if not (graph.enabled_at(i) & violating)
            }
            if survivors:
                pending.append(survivors)
    return None
