"""Content-addressed incremental graph store (the disk cache, format v2).

The v1 disk cache (PR 2's ``engine/diskcache.py``) serialized each explored
:class:`~repro.ts.explore.ReachableGraph` as one whole-graph JSON document
keyed on the full canonical program text.  That shape has two costs that
dominate real re-verification traffic:

* a warm hit on a million-state family re-parses hundreds of megabytes of
  JSON and rebuilds every per-state/per-transition Python object;
* **any** one-line edit to the program changes the key and invalidates the
  entire entry — nothing is reused across near-identical programs.

This module replaces it with a content-addressed binary store:

**Chunks** — the graph's columns (interned state values, ``src``/``cmd``/
``dst`` transition columns, enabled bitmasks) are written as raw little
slabs of ``array('q')``/``array('Q')`` bytes, split every
:data:`chunk_words` 8-byte words, each chunk in a file named by the
SHA-256 of its contents (``chunk-<digest>.bin``).  Identical content is
stored once: two explorations that share column regions share chunk files,
so publishing a near-identical graph writes only the chunks that differ.

**Manifests** — a small JSON document per ``(program, bounds, jobs)`` key
(``manifest-<key>.json``) naming the chunk digests of every column plus the
program shape (variable names, command labels, per-command canonical
digests) and the frontier.  Manifests are written *after* every chunk they
reference (payload-before-manifest, the same publish discipline as the
shm columns' payload-then-length), and atomically (temp file +
``os.replace``), so a torn publish leaves at worst orphaned chunks — never
a manifest naming missing payload.

**Warm loads** are ``mmap``-backed: chunk files are memory-mapped and the
columns adopted directly into the compact column representation of
:class:`~repro.ts.explore.ReachableGraph` — no JSON parse, no
per-element copies (single-chunk columns are zero-copy ``memoryview``
casts over the mapping; multi-chunk columns are assembled with bulk
``frombytes`` concatenation).  State objects and the ``State → index``
map are materialized lazily, so a warm load of a million-state graph does
not construct a million :class:`ProgramState` objects up front.  Chunk
digests are re-verified against their filenames on load (disable with
``REPRO_GRAPHSTORE_VERIFY=0``); a truncated chunk, a digest mismatch, a
vanished chunk file or a torn manifest each degrade to a clean cache miss
— the store never yields a wrong graph.

**Incremental re-exploration** — when the exact key misses but a manifest
for the same *family* (program name, variable layout, bounds, jobs)
exists, the stored graph seeds re-exploration of the edited program.
Commands whose canonical per-command digest
(:func:`repro.gcl.compile.command_digest`) is unchanged have identical
guard/body semantics at every state, so for every state the base graph
fully expanded, their enabled bits and successor rows are replayed from
the mapped columns instead of re-evaluated; only edited/added commands run
their compiled guards and bodies.  The replay feeds the ordinary serial
BFS (same interning, same budgets, same observer stream), so the result
is **bit-identical to a from-scratch exploration of the edited program**
— enforced by digest comparison in the differential tests and the E19
bench — while the follow-up publish reuses every chunk whose content
survived the edit.

Eviction (:func:`evict_cache`, CLI ``--cache-max-mb``) trims the
directory to a size budget in least-recently-used order over *entries*
(manifests and legacy v1 ``graph-*.json`` files both count toward the
budget); chunks are reference-counted and deleted when their last
manifest goes, and loading a manifest mtime-touches its chunks so shared
chunks of hot graphs survive.  Unknown files in the cache directory are
ignored, never fatal.  Legacy v1 entries are migrated on first use:
a v1 hit is re-published in v2 format and the JSON entry deleted.
"""

from __future__ import annotations

import hashlib
import json
import mmap
import os
import tempfile
import time
from array import array
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from repro.gcl.pretty import render_program
from repro.gcl.program import Program
from repro.gcl.state import ProgramState
from repro.telemetry import core as telemetry
from repro.telemetry import events

if False:  # typing only — ts.explore imports this package, keep it lazy
    from repro.ts.explore import ReachableGraph

#: On-disk format version.  v1 was the whole-graph JSON cache; entries in
#: that layout are migrated (or evicted), never silently misread.
FORMAT_VERSION = 2

#: Default chunk size, in 8-byte words (8 MiB chunks).  Small enough that
#: a single-command edit leaves most chunks byte-identical, large enough
#: that a million-state column is a handful of mappings.
DEFAULT_CHUNK_WORDS = 1 << 20

#: Chunks not referenced by any manifest are garbage-collected during
#: eviction, but only once they are at least this old — a concurrent
#: store publishes payload before manifest, so very fresh orphans may be
#: a publish in flight.
ORPHAN_GRACE_SECONDS = 60.0


def chunk_words() -> int:
    """The configured chunk size in 8-byte words.

    ``REPRO_GRAPHSTORE_CHUNK_WORDS`` overrides the default — the
    differential tests shrink it so tiny graphs exercise multi-chunk
    columns and chunk-level reuse.
    """
    raw = os.environ.get("REPRO_GRAPHSTORE_CHUNK_WORDS")
    if raw:
        try:
            value = int(raw)
            if value > 0:
                return value
        except ValueError:
            pass
    return DEFAULT_CHUNK_WORDS


def _verify_on_load() -> bool:
    return os.environ.get("REPRO_GRAPHSTORE_VERIFY") != "0"


# ---------------------------------------------------------------------------
# Keys
# ---------------------------------------------------------------------------


def exploration_cache_key(
    program: Program,
    max_states: Optional[int] = None,
    max_depth: Optional[int] = None,
    n_jobs: Optional[int] = None,
) -> str:
    """The content hash naming this ``(program, bounds, jobs)`` exploration.

    Canonicalising through the pretty printer makes the key insensitive to
    whitespace/comment differences in the source text while remaining
    sensitive to any semantic change (different guard, bound, initial
    range, command order — all alter the rendering).  ``n_jobs`` enters the
    key normalised through :func:`~repro.engine.parallel.resolve_jobs`
    (``None``/``0``/``1`` share one key): the sharded explorer is
    bit-identical to serial, but keying on the job count keeps every entry
    attributable to the exact invocation that produced it.
    """
    from repro.engine.parallel import resolve_jobs

    canonical = render_program(program.ast)
    payload = json.dumps(
        {
            "format": FORMAT_VERSION,
            "program": canonical,
            "max_states": max_states,
            "max_depth": max_depth,
            "jobs": resolve_jobs(n_jobs),
        },
        sort_keys=True,
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def family_key(
    program: Program,
    max_states: Optional[int] = None,
    max_depth: Optional[int] = None,
    n_jobs: Optional[int] = None,
) -> str:
    """The hash naming the *family* an entry belongs to.

    Two program versions share a family when they agree on everything the
    incremental replay needs structurally — program name, variable layout
    (names in declaration order fix the value-tuple encoding), bounds and
    job count — while their command texts may differ.  An exact-key miss
    searches its family for a base graph to re-explore incrementally.
    """
    from repro.engine.parallel import resolve_jobs

    payload = json.dumps(
        {
            "format": FORMAT_VERSION,
            "program": program.name,
            "names": list(program.variable_names),
            "max_states": max_states,
            "max_depth": max_depth,
            "jobs": resolve_jobs(n_jobs),
        },
        sort_keys=True,
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def _manifest_path(cache_dir: os.PathLike, key: str) -> Path:
    return Path(cache_dir) / f"manifest-{key}.json"


def _chunk_path(cache_dir: os.PathLike, digest: str) -> Path:
    return Path(cache_dir) / f"chunk-{digest}.bin"


# ---------------------------------------------------------------------------
# Outcome reporting (bench/test introspection without telemetry)
# ---------------------------------------------------------------------------


@dataclass
class CacheOutcome:
    """What the last :func:`explore_with_cache` call in this process did.

    ``kind`` is one of ``"bypass"`` (no cache directory / uncacheable
    system), ``"hit"`` (warm mmap load), ``"migrated"`` (legacy v1 entry
    re-published as v2), ``"incremental"`` (chunk-reusing re-exploration
    from a family base) or ``"cold"`` (full exploration).  The chunk
    counters describe the *publish* that followed a miss; ``reused_states``
    counts states whose expansion was replayed from the base graph.
    """

    kind: str = "bypass"
    chunks_total: int = 0
    chunks_reused: int = 0
    bytes_written: int = 0
    bytes_mapped: int = 0
    reused_states: int = 0
    fresh_states: int = 0


_LAST_OUTCOME = CacheOutcome()


def last_outcome() -> CacheOutcome:
    """The :class:`CacheOutcome` of the most recent cached exploration."""
    return _LAST_OUTCOME


@dataclass
class StoreReport:
    """Result of one :func:`store_graph` publish."""

    manifest: Path
    chunks_total: int = 0
    chunks_reused: int = 0
    bytes_written: int = 0
    column_digests: Dict[str, List[str]] = field(default_factory=dict)


# ---------------------------------------------------------------------------
# Store
# ---------------------------------------------------------------------------


def _atomic_write_bytes(directory: Path, target: Path, payload) -> None:
    handle, temp_path = tempfile.mkstemp(
        dir=directory, prefix=".chunk-", suffix=".tmp"
    )
    try:
        with os.fdopen(handle, "wb") as stream:
            stream.write(payload)
        os.replace(temp_path, target)
    except BaseException:
        try:
            os.unlink(temp_path)
        except OSError:
            pass
        raise


def _publish_column(
    directory: Path, raw: bytes, words: int, report: StoreReport
) -> List[str]:
    """Write ``raw`` as content-addressed chunks; returns the digest list.

    Chunks already present on disk are reused (and mtime-touched so they
    read as recently used); only missing content is written.
    """
    digests: List[str] = []
    view = memoryview(raw)
    step = words * 8
    for offset in range(0, len(view), step):
        chunk = view[offset : offset + step]
        digest = hashlib.sha256(chunk).hexdigest()
        digests.append(digest)
        report.chunks_total += 1
        target = _chunk_path(directory, digest)
        if target.exists():
            report.chunks_reused += 1
            telemetry.count("graphstore.chunk.hit")
            try:
                os.utime(target)
            except OSError:
                pass
            continue
        telemetry.count("graphstore.chunk.miss")
        _atomic_write_bytes(directory, target, chunk)
        report.bytes_written += len(chunk)
        telemetry.count("graphstore.bytes.written", len(chunk))
    return digests


def _graph_columns(graph: "ReachableGraph") -> Dict[str, bytes]:
    """The graph's storable columns as raw native-endian int64 bytes."""
    program = graph.system
    values = array("q")
    for state in graph.states:
        values.extend(state.values)
    src, cmd, dst = graph.transition_columns
    masks = graph.enabled_masks
    if not isinstance(masks, array):
        masks = array("Q", masks)  # raises OverflowError for >64-bit masks
    return {
        "states": values.tobytes(),
        "src": bytes(src.tobytes() if hasattr(src, "tobytes") else src),
        "cmd": bytes(cmd.tobytes() if hasattr(cmd, "tobytes") else cmd),
        "dst": bytes(dst.tobytes() if hasattr(dst, "tobytes") else dst),
        "masks": masks.tobytes(),
    }


def store_graph(
    graph: "ReachableGraph",
    cache_dir: os.PathLike,
    key: str,
    family: Optional[str] = None,
) -> StoreReport:
    """Publish ``graph`` under ``cache_dir`` as chunks + manifest.

    The graph's system must be a :class:`Program` with at most 64 commands
    (enabled masks are stored as one machine word per state).  Chunks are
    deduplicated against the existing store; the manifest is written last
    and atomically, so a reader never sees a manifest whose payload has
    not landed.  ``family`` (the :func:`family_key` of the exploration's
    bounds/jobs) marks the manifest as an incremental-base candidate for
    edited versions of the same program; entries stored without one are
    still perfectly good exact-key hits.
    """
    program = graph.system
    if not isinstance(program, Program):
        raise TypeError(
            f"only Program graphs are cacheable, got {type(program).__name__}"
        )
    if len(program.commands()) > 64:
        raise ValueError(
            "graphs over programs with more than 64 commands are not "
            "storable (enabled masks exceed one machine word)"
        )
    directory = Path(cache_dir)
    directory.mkdir(parents=True, exist_ok=True)
    target = _manifest_path(directory, key)
    report = StoreReport(manifest=target)
    words = chunk_words()
    columns = _graph_columns(graph)
    column_digests = {
        name: _publish_column(directory, raw, words, report)
        for name, raw in columns.items()
    }
    report.column_digests = column_digests
    manifest = {
        "format": FORMAT_VERSION,
        "key": key,
        "family": family,
        "program": program.name,
        "names": list(program.variable_names),
        "commands": list(graph.command_table.labels),
        "command_digests": program.command_digests(),
        "byteorder": _BYTEORDER,
        "chunk_words": words,
        "n_states": len(graph),
        "width": len(program.variable_names),
        "n_transitions": len(graph.transition_columns[0]),
        "initial_count": len(graph.initial_indices),
        "frontier": sorted(graph.frontier),
        "columns": column_digests,
    }
    handle, temp_path = tempfile.mkstemp(
        dir=directory, prefix=".manifest-", suffix=".tmp"
    )
    try:
        with os.fdopen(handle, "w", encoding="utf-8") as stream:
            json.dump(manifest, stream, separators=(",", ":"))
        os.replace(temp_path, target)
    except BaseException:
        try:
            os.unlink(temp_path)
        except OSError:
            pass
        raise
    telemetry.count("graphstore.store")
    return report


import sys as _sys

_BYTEORDER = _sys.byteorder


# ---------------------------------------------------------------------------
# Load
# ---------------------------------------------------------------------------


class ValueColumnStates(Sequence):
    """Lazy :class:`ProgramState` sequence over a flat int64 value column.

    The column is the mmap-backed (or bulk-assembled) state-values buffer
    of a stored graph: ``width`` words per state, states in discovery
    order.  Indexing materializes a fresh state on demand, so a warm load
    never constructs a million state objects up front; consumers that do
    touch every state (digesting, reports) pay construction exactly where
    the eager representation did.
    """

    __slots__ = ("_names", "_width", "_column", "_n")

    def __init__(self, names: Tuple[str, ...], column, n: int) -> None:
        self._names = names
        self._width = len(names)
        self._column = column
        self._n = n

    def __len__(self) -> int:
        return self._n

    def __getitem__(self, item):
        if isinstance(item, slice):
            return tuple(self._make(i) for i in range(self._n)[item])
        return self._make(range(self._n)[item])

    def _make(self, i: int) -> ProgramState:
        w = self._width
        return ProgramState(
            self._names, tuple(self._column[i * w : (i + 1) * w])
        )

    def __iter__(self):
        names = self._names
        w = self._width
        column = self._column
        for i in range(self._n):
            yield ProgramState(names, tuple(column[i * w : (i + 1) * w]))

    def __repr__(self) -> str:
        return f"<ValueColumnStates of {self._n} states>"


def _miss(corrupt: bool = False) -> None:
    telemetry.count("graphstore.miss")
    if corrupt:
        telemetry.count("graphstore.corrupt")


def _read_manifest(path: Path) -> Optional[dict]:
    """Parse a manifest file; ``None`` (plus counters) on any problem."""
    try:
        raw = path.read_text(encoding="utf-8")
    except OSError:
        _miss()
        return None
    try:
        payload = json.loads(raw)
    except ValueError:
        # Present but unparseable: torn or corrupt manifest.
        _miss(corrupt=True)
        return None
    if not isinstance(payload, dict):
        _miss(corrupt=True)
        return None
    return payload


class _MappedColumns:
    """All of one manifest's columns, memory-mapped and size/digest-checked.

    ``None``-returning constructor wrapper :meth:`open` is the public
    face: any missing, truncated or corrupted chunk — including one that
    vanished between the manifest read and the mmap (an eviction race) —
    makes the whole load a clean miss.
    """

    __slots__ = ("columns", "mapped_bytes", "sources", "_mmaps")

    def __init__(self) -> None:
        self.columns: Dict[str, object] = {}
        self.mapped_bytes = 0
        #: ``column name → (path, words, typecode)`` for columns mapped
        #: zero-copy from a single chunk file — the verification plane
        #: adopts these by path so pool workers mmap the chunk themselves
        #: instead of receiving a shared-memory copy.
        self.sources: Dict[str, Tuple[str, int, str]] = {}
        self._mmaps: List[mmap.mmap] = []

    @classmethod
    def open(
        cls, directory: Path, manifest: dict
    ) -> Optional["_MappedColumns"]:
        verify = _verify_on_load()
        loaded = cls()
        try:
            words = int(manifest["chunk_words"])
            n = int(manifest["n_states"])
            width = int(manifest["width"])
            m = int(manifest["n_transitions"])
            if words <= 0 or n < 0 or width < 0 or m < 0:
                raise ValueError("negative geometry")
            if manifest.get("byteorder") != _BYTEORDER:
                raise ValueError("byte order mismatch")
            expected = {
                "states": n * width,
                "src": m,
                "cmd": m,
                "dst": m,
                "masks": n,
            }
            for name, total_words in expected.items():
                digests = manifest["columns"][name]
                if not isinstance(digests, list):
                    raise ValueError("chunk list is not a list")
                typecode = "Q" if name == "masks" else "q"
                loaded.columns[name] = loaded._map_column(
                    directory, digests, total_words, words, typecode, verify,
                )
                if len(digests) == 1 and isinstance(
                    loaded.columns[name], memoryview
                ):
                    # Single-chunk zero-copy column: its bytes are exactly
                    # one immutable content-addressed file, adoptable by
                    # path (verification-plane workers mmap it directly).
                    loaded.sources[name] = (
                        str(_chunk_path(directory, digests[0])),
                        total_words,
                        typecode,
                    )
        except (KeyError, TypeError, ValueError, IndexError):
            loaded.close()
            return None
        except OSError:
            # A chunk vanished (eviction race) or could not be mapped.
            loaded.close()
            return None
        return loaded

    @staticmethod
    def _discard_corrupt(path: Path, digest: str) -> None:
        """Unlink a chunk whose content provably does not hash to its
        name, so the next store republishes correct bytes instead of
        dedup-trusting the corrupt file.  A chunk that *does* hash to
        its name is kept: the manifest, not the chunk, is the liar, and
        the chunk may be shared with healthy manifests."""
        try:
            if hashlib.sha256(path.read_bytes()).hexdigest() != digest:
                path.unlink()
        except OSError:
            pass

    def _map_column(
        self,
        directory: Path,
        digests: List[str],
        total_words: int,
        words_per_chunk: int,
        typecode: str,
        verify: bool,
    ):
        """One column from its chunk files; raises on any inconsistency."""
        expected_chunks = (
            (total_words + words_per_chunk - 1) // words_per_chunk
            if total_words
            else 0
        )
        if len(digests) != expected_chunks:
            raise ValueError("chunk count disagrees with geometry")
        if not digests:
            return array(typecode)
        buffers: List[mmap.mmap] = []
        remaining = total_words
        for digest in digests:
            if not isinstance(digest, str):
                raise ValueError("chunk digest is not a string")
            chunk_bytes = min(words_per_chunk, remaining) * 8
            remaining -= chunk_bytes // 8
            path = _chunk_path(directory, digest)
            with open(path, "rb") as handle:
                size = os.fstat(handle.fileno()).st_size
                if size != chunk_bytes:
                    self._discard_corrupt(path, digest)
                    raise ValueError(
                        f"chunk {digest[:12]} truncated "
                        f"({size} bytes, expected {chunk_bytes})"
                    )
                mapped = mmap.mmap(
                    handle.fileno(), 0, access=mmap.ACCESS_READ
                )
            buffers.append(mapped)
            self._mmaps.append(mapped)
            self.mapped_bytes += size
            if verify and hashlib.sha256(mapped).hexdigest() != digest:
                self._discard_corrupt(path, digest)
                raise ValueError(f"chunk {digest[:12]} digest mismatch")
        if len(buffers) == 1:
            # Zero-copy: the column *is* the mapping.
            return memoryview(buffers[0]).cast(typecode)
        column = array(typecode)
        for mapped in buffers:
            column.frombytes(mapped)
        return column

    def close(self) -> None:
        # Mappings still referenced by zero-copy memoryviews stay alive
        # (and mapped) until the views are garbage collected; close the
        # rest eagerly.
        for mapped in self._mmaps:
            try:
                mapped.close()
            except (BufferError, ValueError):
                pass
        self._mmaps = []


def _touch_entry(directory: Path, path: Path, manifest: dict) -> None:
    """LRU-touch a manifest *and its chunks* so shared chunks of hot
    graphs survive eviction; races with eviction are harmless (the next
    load is a miss and re-explores)."""
    for target in [path] + [
        _chunk_path(directory, digest)
        for digests in manifest.get("columns", {}).values()
        if isinstance(digests, list)
        for digest in digests
        if isinstance(digest, str)
    ]:
        try:
            os.utime(target)
        except OSError:
            pass


def load_cached_graph(
    program: Program,
    cache_dir: os.PathLike,
    key: str,
) -> Optional["ReachableGraph"]:
    """Reload a stored exploration of ``program``; ``None`` on any miss.

    The warm path memory-maps the chunk files and adopts the columns
    directly into the compact graph representation — states and the
    ``State → index`` map materialize lazily on first object-level access.
    """
    from repro.ts.explore import ReachableGraph

    directory = Path(cache_dir)
    path = _manifest_path(directory, key)
    manifest = _read_manifest(path)
    if manifest is None:
        return None
    try:
        if manifest["format"] != FORMAT_VERSION or manifest["key"] != key:
            _miss()
            return None
        names = tuple(manifest["names"])
        labels = tuple(manifest["commands"])
        if names != program.variable_names or labels != program.commands():
            _miss()
            return None
        n = int(manifest["n_states"])
        initial_count = int(manifest["initial_count"])
        frontier = [int(i) for i in manifest["frontier"]]
        if not 0 <= initial_count <= n:
            raise ValueError("initial count out of range")
        if any(not 0 <= i < n for i in frontier):
            raise ValueError("frontier index out of range")
    except (KeyError, TypeError, ValueError):
        _miss(corrupt=True)
        return None
    mapped = _MappedColumns.open(directory, manifest)
    if mapped is None:
        _miss(corrupt=True)
        return None
    telemetry.count("graphstore.bytes.mapped", mapped.mapped_bytes)
    _touch_entry(directory, path, manifest)
    states = ValueColumnStates(names, mapped.columns["states"], n)
    graph = ReachableGraph.from_arrays(
        system=program,
        states=states,
        labels=list(labels),
        src=mapped.columns["src"],
        cmd=mapped.columns["cmd"],
        dst=mapped.columns["dst"],
        enabled_masks=mapped.columns["masks"],
        initial_count=initial_count,
        frontier=frontier,
        index=None,
    )
    graph.column_files = dict(mapped.sources)
    telemetry.count("graphstore.hit")
    global _LAST_OUTCOME
    _LAST_OUTCOME = CacheOutcome(
        kind="hit", bytes_mapped=mapped.mapped_bytes
    )
    return graph


# ---------------------------------------------------------------------------
# Incremental re-exploration
# ---------------------------------------------------------------------------


class _IncrementalBase:
    """A family base graph's columns, indexed for expansion replay."""

    __slots__ = (
        "names",
        "labels",
        "label_ids",
        "command_digests",
        "masks",
        "frontier",
        "n",
        "width",
        "_states_col",
        "_cmd",
        "_dst",
        "_out_start",
        "_out_eid",
        "_value_index",
        "_state_memo",
        "mapped_bytes",
    )

    def __init__(self, manifest: dict, mapped: _MappedColumns) -> None:
        self.names = tuple(manifest["names"])
        self.labels = tuple(manifest["commands"])
        self.label_ids = {label: k for k, label in enumerate(self.labels)}
        self.command_digests = dict(manifest["command_digests"])
        self.masks = mapped.columns["masks"]
        self.frontier = frozenset(int(i) for i in manifest["frontier"])
        self.n = int(manifest["n_states"])
        self.width = int(manifest["width"])
        self._states_col = mapped.columns["states"]
        self._cmd = mapped.columns["cmd"]
        self._dst = mapped.columns["dst"]
        self.mapped_bytes = mapped.mapped_bytes
        src = mapped.columns["src"]
        # CSR over the base transitions: a source's recorded successors,
        # in their original (declaration-order-interleaved) order.
        counts = [0] * (self.n + 1)
        for s in src:
            counts[s + 1] += 1
        for i in range(self.n):
            counts[i + 1] += counts[i]
        out_start = array("q", counts)
        out_eid = array("q", bytes(8 * len(src)))
        cursor = list(out_start[: self.n])
        for eid in range(len(src)):
            s = src[eid]
            out_eid[cursor[s]] = eid
            cursor[s] += 1
        self._out_start = out_start
        self._out_eid = out_eid
        # Value-tuple → base index: the one eager pass over the state
        # column (interning-scale work; what it buys is skipping every
        # unchanged command's guard and body at every replayed state).
        width = self.width
        column = self._states_col
        self._value_index = {
            tuple(column[i * width : (i + 1) * width]): i
            for i in range(self.n)
        }
        self._state_memo: Dict[int, ProgramState] = {}

    def lookup(self, values: tuple) -> Optional[int]:
        return self._value_index.get(values)

    def state_of(self, index: int) -> ProgramState:
        state = self._state_memo.get(index)
        if state is None:
            w = self.width
            state = ProgramState(
                self.names,
                tuple(self._states_col[index * w : (index + 1) * w]),
            )
            self._state_memo[index] = state
        return state

    def posts_by_command(self, index: int) -> Dict[int, List[int]]:
        """Base successors of ``index`` grouped by command id, in order."""
        groups: Dict[int, List[int]] = {}
        cmd = self._cmd
        dst = self._dst
        for eid in self._out_eid[
            self._out_start[index] : self._out_start[index + 1]
        ]:
            groups.setdefault(cmd[eid], []).append(dst[eid])
        return groups


class _IncrementalReuse:
    """Expansion of an edited program, replaying a base graph's columns.

    For every state the base fully expanded, unchanged commands (equal
    canonical digest) contribute their enabled bit and successor rows
    straight from the stored columns; edited or added commands evaluate
    their compiled guard/body.  The assembled ``(enabled, posts)`` is —
    command by command, post by post — exactly what
    :meth:`Program._compute_expansion` would produce, which is the whole
    bit-identity argument: the surrounding BFS is the stock serial
    explorer.
    """

    __slots__ = ("_program", "_base", "_plan", "_names", "reused", "fresh")

    def __init__(self, program: Program, base: _IncrementalBase) -> None:
        compiled = program._compiled
        if compiled is None:
            raise ValueError("incremental replay needs a compiled program")
        digests = program.command_digests()
        self._program = program
        self._base = base
        self._names = program.variable_names
        # Per new command, in declaration order: (label, base command id
        # when the command is unchanged and replayable, compiled command).
        plan = []
        for command in compiled.commands:
            label = command.label
            base_id = base.label_ids.get(label)
            unchanged = (
                base_id is not None
                and base.command_digests.get(label) == digests[label]
            )
            plan.append((label, base_id if unchanged else None, command))
        self._plan = tuple(plan)
        self.reused = 0
        self.fresh = 0

    def replayable(self) -> int:
        """How many commands replay from the base (0 = nothing shared)."""
        return sum(1 for _, base_id, _ in self._plan if base_id is not None)

    def expand(self, state: ProgramState):
        base = self._base
        values = state.values
        index = base.lookup(values)
        if index is None or index in base.frontier:
            # Unknown to the base, or known but never fully expanded
            # there: evaluate everything (through the program's ordinary
            # successor cache).
            self.fresh += 1
            return self._program.expand(state)
        self.reused += 1
        mask = base.masks[index]
        groups = base.posts_by_command(index)
        names = self._names
        enabled: List[str] = []
        posts: List[Tuple[str, ProgramState]] = []
        for label, base_id, command in self._plan:
            if base_id is not None:
                if (mask >> base_id) & 1:
                    enabled.append(label)
                    for target in groups.get(base_id, ()):
                        posts.append((label, base.state_of(target)))
            elif command.guard(values):
                enabled.append(label)
                for post in command.execute(values):
                    posts.append((label, ProgramState(names, post)))
        return frozenset(enabled), tuple(posts)

    def enabled(self, state: ProgramState) -> frozenset:
        """Guards-only query (frontier states): base bits for unchanged
        commands — valid even for base-frontier states, whose stored
        masks are guards-only — fresh guards for the rest."""
        base = self._base
        values = state.values
        index = base.lookup(values)
        if index is None:
            return self._program.enabled(state)
        mask = base.masks[index]
        enabled = []
        for label, base_id, command in self._plan:
            if base_id is not None:
                if (mask >> base_id) & 1:
                    enabled.append(label)
            elif command.guard(values):
                enabled.append(label)
        return frozenset(enabled)


def find_incremental_base(
    program: Program,
    cache_dir: os.PathLike,
    max_states: Optional[int] = None,
    max_depth: Optional[int] = None,
    n_jobs: Optional[int] = None,
) -> Optional[_IncrementalBase]:
    """The freshest same-family manifest sharing ≥1 command digest, mapped.

    ``None`` when no family sibling exists, none shares a command with the
    edited program, or the best candidate fails to map cleanly (its miss
    is as quiet as any other — the caller just explores from scratch).
    """
    directory = Path(cache_dir)
    family = family_key(program, max_states, max_depth, n_jobs)
    digests = program.command_digests()
    best: Optional[Tuple[float, str, Path, dict]] = None
    try:
        candidates = sorted(directory.glob("manifest-*.json"))
    except OSError:
        return None
    for path in candidates:
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            continue
        if not isinstance(payload, dict):
            continue
        if payload.get("format") != FORMAT_VERSION:
            continue
        if payload.get("family") != family:
            continue
        try:
            if tuple(payload["names"]) != program.variable_names:
                continue
            shared = sum(
                1
                for label, digest in payload["command_digests"].items()
                if digests.get(label) == digest
            )
        except (KeyError, TypeError, AttributeError):
            continue
        if shared == 0:
            continue
        try:
            mtime = path.stat().st_mtime
        except OSError:
            continue
        rank = (mtime, path.name)
        if best is None or rank > (best[0], best[1]):
            best = (mtime, path.name, path, payload)
    if best is None:
        return None
    _, _, path, payload = best
    mapped = _MappedColumns.open(directory, payload)
    if mapped is None:
        return None
    try:
        base = _IncrementalBase(payload, mapped)
    except (KeyError, TypeError, ValueError, IndexError):
        mapped.close()
        return None
    telemetry.count("graphstore.bytes.mapped", mapped.mapped_bytes)
    return base


def explore_incremental(
    program: Program,
    base: _IncrementalBase,
    max_states: Optional[int] = None,
    max_depth: Optional[int] = None,
    strict: bool = False,
) -> Optional["ReachableGraph"]:
    """Re-explore ``program`` replaying unchanged commands from ``base``.

    Runs the stock serial BFS with the replaying expander, so budgets,
    strictness, frontier semantics and the event stream are exactly those
    of :func:`repro.ts.explore.explore`; the result is bit-identical to a
    from-scratch exploration of ``program``.  ``None`` when the program
    cannot replay (interpreted evaluation — no compiled commands).
    """
    from repro.ts.explore import _explore_serial

    program.validate_commands()
    try:
        reuse = _IncrementalReuse(program, base)
    except ValueError:
        return None
    if not reuse.replayable():
        return None
    with telemetry.span(
        "explore", system=program.name, incremental=True
    ) as span:
        graph = _explore_serial(
            program,
            max_states,
            max_depth,
            strict,
            None,
            expand=reuse.expand,
            enabled_fn=reuse.enabled,
        )
        telemetry.count("graphstore.incremental.runs")
        telemetry.count("graphstore.incremental.reused_states", reuse.reused)
        telemetry.count("graphstore.incremental.fresh_states", reuse.fresh)
        span.set("states", len(graph))
        span.set("reused_states", reuse.reused)
    global _LAST_OUTCOME
    _LAST_OUTCOME = CacheOutcome(
        kind="incremental",
        bytes_mapped=base.mapped_bytes,
        reused_states=reuse.reused,
        fresh_states=reuse.fresh,
    )
    return graph


# ---------------------------------------------------------------------------
# Legacy v1 entries (whole-graph JSON): migration + baseline
# ---------------------------------------------------------------------------

#: The v1 format version (whole-graph JSON, ``graph-<key>.json``).
V1_FORMAT_VERSION = 1


def v1_cache_key(
    program: Program,
    max_states: Optional[int] = None,
    max_depth: Optional[int] = None,
    n_jobs: Optional[int] = None,
) -> str:
    """The exact key the v1 cache would have used (for migration/tests)."""
    from repro.engine.parallel import resolve_jobs

    payload = json.dumps(
        {
            "format": V1_FORMAT_VERSION,
            "program": render_program(program.ast),
            "max_states": max_states,
            "max_depth": max_depth,
            "jobs": resolve_jobs(n_jobs),
        },
        sort_keys=True,
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def _v1_entry_path(cache_dir: os.PathLike, key: str) -> Path:
    return Path(cache_dir) / f"graph-{key}.json"


def store_graph_v1(
    graph: "ReachableGraph", cache_dir: os.PathLike, key: str
) -> Path:
    """Write a legacy v1 whole-graph JSON entry (migration tests, E19)."""
    program = graph.system
    if not isinstance(program, Program):
        raise TypeError(
            f"only Program graphs are cacheable, got {type(program).__name__}"
        )
    names = program.variable_names
    labels = list(program.commands())
    label_slot = {label: i for i, label in enumerate(labels)}
    payload = {
        "format": V1_FORMAT_VERSION,
        "key": key,
        "program": program.name,
        "names": list(names),
        "commands": labels,
        "states": [list(state.values) for state in graph.states],
        "transitions": [
            [t.source, label_slot[t.command], t.target]
            for t in graph.transitions
        ],
        "enabled": [
            sorted(label_slot[c] for c in graph.enabled_at(i))
            for i in range(len(graph))
        ],
        "initial_count": len(graph.initial_indices),
        "frontier": sorted(graph.frontier),
    }
    directory = Path(cache_dir)
    directory.mkdir(parents=True, exist_ok=True)
    target = _v1_entry_path(directory, key)
    handle, temp_path = tempfile.mkstemp(
        dir=directory, prefix=".graph-", suffix=".tmp"
    )
    try:
        with os.fdopen(handle, "w", encoding="utf-8") as stream:
            json.dump(payload, stream, separators=(",", ":"))
        os.replace(temp_path, target)
    except BaseException:
        try:
            os.unlink(temp_path)
        except OSError:
            pass
        raise
    return target


def load_graph_v1(
    program: Program, cache_dir: os.PathLike, key: str
) -> Optional["ReachableGraph"]:
    """Reload a legacy v1 entry (full JSON parse and object rebuild)."""
    from repro.ts.explore import IndexedTransition, ReachableGraph

    path = _v1_entry_path(cache_dir, key)
    try:
        with open(path, "r", encoding="utf-8") as stream:
            payload = json.load(stream)
    except (OSError, ValueError):
        return None
    try:
        if payload["format"] != V1_FORMAT_VERSION or payload["key"] != key:
            return None
        names = tuple(payload["names"])
        labels = payload["commands"]
        if names != program.variable_names or tuple(labels) != program.commands():
            return None
        states = [
            ProgramState(names, tuple(values)) for values in payload["states"]
        ]
        transitions = [
            IndexedTransition(source, labels[slot], target)
            for source, slot, target in payload["transitions"]
        ]
        enabled = [
            frozenset(labels[slot] for slot in slots)
            for slots in payload["enabled"]
        ]
        return ReachableGraph(
            system=program,
            states=states,
            transitions=transitions,
            enabled=enabled,
            initial_count=payload["initial_count"],
            frontier=payload["frontier"],
        )
    except (KeyError, IndexError, TypeError, ValueError):
        return None


def migrate_v1_entry(
    program: Program,
    cache_dir: os.PathLike,
    v1_key: str,
    v2_key: str,
    family: Optional[str] = None,
) -> Optional["ReachableGraph"]:
    """Re-publish a legacy v1 entry in v2 format and delete the original.

    Returns the migrated graph (a hit), or ``None`` when no readable v1
    entry exists.  An unreadable/corrupt v1 entry is deleted rather than
    re-parsed forever.
    """
    path = _v1_entry_path(cache_dir, v1_key)
    if not path.exists():
        return None
    graph = load_graph_v1(program, cache_dir, v1_key)
    if graph is None:
        # Present but unusable: delete so the slot stops costing budget.
        try:
            path.unlink()
        except OSError:
            pass
        telemetry.count("graphstore.corrupt")
        return None
    store_graph(graph, cache_dir, v2_key, family=family)
    try:
        path.unlink()
    except OSError:
        pass
    telemetry.count("graphstore.migrated")
    return graph


# ---------------------------------------------------------------------------
# Eviction
# ---------------------------------------------------------------------------


def evict_cache(
    cache_dir: os.PathLike,
    max_mb: Optional[float],
) -> List[Path]:
    """Trim the cache directory to ``max_mb`` megabytes, LRU first.

    Everything the store may contain counts toward the budget: manifests,
    the chunks they reference, *legacy v1* ``graph-*.json`` entries and
    orphaned chunks.  Eviction removes whole entries oldest-mtime-first
    (loads touch the mtimes of a manifest and its chunks, so mtime order
    is recency order); a manifest's chunks are deleted when their last
    referencing manifest goes.  Orphaned chunks older than
    :data:`ORPHAN_GRACE_SECONDS` are garbage-collected first — younger
    ones may be a payload-before-manifest publish still in flight.
    Unknown files are ignored; files that vanish mid-scan are skipped, so
    concurrent evictions never crash.  Returns the paths removed.
    ``max_mb=None`` is a no-op (unbounded cache, the default).
    """
    if max_mb is None:
        return []
    budget = int(max_mb * 1024 * 1024)
    directory = Path(cache_dir)
    manifests: List[Tuple[float, str, Path, int, List[str]]] = []
    legacy: List[Tuple[float, str, Path, int]] = []
    chunk_sizes: Dict[str, int] = {}
    chunk_mtimes: Dict[str, float] = {}
    refs: Dict[str, set] = {}
    total = 0
    try:
        listing = list(directory.iterdir())
    except OSError:
        return []
    for path in listing:
        name = path.name
        try:
            stat = path.stat()
        except OSError:
            continue  # vanished under us — somebody else's eviction
        if name.startswith("manifest-") and name.endswith(".json"):
            digests: List[str] = []
            try:
                payload = json.loads(path.read_text(encoding="utf-8"))
                for column in payload.get("columns", {}).values():
                    if isinstance(column, list):
                        digests.extend(
                            d for d in column if isinstance(d, str)
                        )
            except (OSError, ValueError, AttributeError):
                digests = []  # corrupt manifest: ordinary victim, no refs
            manifests.append(
                (stat.st_mtime, name, path, stat.st_size, digests)
            )
            for digest in digests:
                refs.setdefault(digest, set()).add(name)
            total += stat.st_size
        elif name.startswith("chunk-") and name.endswith(".bin"):
            digest = name[len("chunk-") : -len(".bin")]
            chunk_sizes[digest] = stat.st_size
            chunk_mtimes[digest] = stat.st_mtime
            total += stat.st_size
        elif name.startswith("graph-") and name.endswith(".json"):
            legacy.append((stat.st_mtime, name, path, stat.st_size))
            total += stat.st_size
        # Anything else (temp files, user debris) is not ours to delete.

    removed: List[Path] = []

    def _remove(path: Path, size: int) -> None:
        nonlocal total
        try:
            path.unlink()
        except FileNotFoundError:
            pass  # already gone — still no longer occupies the budget
        except OSError:
            return  # undeletable: leave it, keep trimming others
        total -= size
        removed.append(path)
        telemetry.count("graphstore.evict")
        telemetry.count("graphstore.bytes.evicted", size)

    if total <= budget:
        return removed

    # Orphaned chunks first: referenced by no manifest, old enough that
    # they cannot be a publish in flight.
    now = time.time()
    for digest, size in sorted(chunk_sizes.items()):
        if total <= budget:
            break
        if refs.get(digest):
            continue
        if now - chunk_mtimes[digest] < ORPHAN_GRACE_SECONDS:
            continue
        _remove(_chunk_path(directory, digest), size)

    entries: List[Tuple[float, str, Path, int, Optional[List[str]]]] = [
        (mtime, name, path, size, digests)
        for mtime, name, path, size, digests in manifests
    ] + [
        (mtime, name, path, size, None)
        for mtime, name, path, size in legacy
    ]
    entries.sort()  # oldest first; name breaks mtime ties deterministically
    for _, name, path, size, digests in entries:
        if total <= budget:
            break
        _remove(path, size)
        if digests is None:
            continue
        for digest in digests:
            holders = refs.get(digest)
            if holders is not None:
                holders.discard(name)
                if holders:
                    continue
            chunk_size = chunk_sizes.get(digest)
            if chunk_size is None:
                continue  # referenced but never existed (torn publish)
            _remove(_chunk_path(directory, digest), chunk_size)
            del chunk_sizes[digest]
    return removed


# ---------------------------------------------------------------------------
# The cached exploration entry point
# ---------------------------------------------------------------------------


def explore_with_cache(
    program: Program,
    max_states: Optional[int] = None,
    max_depth: Optional[int] = None,
    cache_dir: Optional[os.PathLike] = None,
    strict: bool = False,
    n_jobs: Optional[int] = None,
    cache_max_mb: Optional[float] = None,
) -> Tuple["ReachableGraph", bool]:
    """``(graph, was_cache_hit)`` — explore, or reuse previous runs.

    With ``cache_dir=None`` this is plain
    :func:`~repro.ts.explore.explore`.  Otherwise, in order:

    1. an exact-key **manifest hit** memory-maps the stored columns and
       skips exploration entirely;
    2. a legacy **v1 entry** under the v1 key is migrated to v2 (one last
       JSON parse) and counts as a hit;
    3. a same-family manifest with shared command digests seeds
       **incremental re-exploration** — unchanged commands replay from
       the mapped base columns, edited ones re-evaluate — bit-identical
       to a cold run;
    4. otherwise a **cold** exploration runs (sharded across ``n_jobs``
       workers when requested).

    Misses publish their result (chunks deduplicated against the store)
    and — when ``cache_max_mb`` is set — trim the cache LRU-first.
    Non-``Program`` systems and programs with more than 64 commands
    bypass the cache.

    Every resolution emits one ``graphstore.outcome`` event mirroring
    :func:`last_outcome` (kind + chunk accounting) on the structured bus.
    """
    result = _explore_with_cache(
        program,
        max_states=max_states,
        max_depth=max_depth,
        cache_dir=cache_dir,
        strict=strict,
        n_jobs=n_jobs,
        cache_max_mb=cache_max_mb,
    )
    events.emit(
        events.GRAPHSTORE_OUTCOME, hit=result[1], **asdict(_LAST_OUTCOME)
    )
    return result


def _explore_with_cache(
    program: Program,
    max_states: Optional[int] = None,
    max_depth: Optional[int] = None,
    cache_dir: Optional[os.PathLike] = None,
    strict: bool = False,
    n_jobs: Optional[int] = None,
    cache_max_mb: Optional[float] = None,
) -> Tuple["ReachableGraph", bool]:
    from repro.ts.explore import explore

    global _LAST_OUTCOME
    cacheable = (
        cache_dir is not None
        and isinstance(program, Program)
        and len(program.commands()) <= 64
    )
    if not cacheable:
        _LAST_OUTCOME = CacheOutcome(kind="bypass")
        return (
            explore(
                program,
                max_states=max_states,
                max_depth=max_depth,
                strict=strict,
                n_jobs=n_jobs,
            ),
            False,
        )
    key = exploration_cache_key(program, max_states, max_depth, n_jobs)
    cached = load_cached_graph(program, cache_dir, key)
    if cached is not None:
        return cached, True
    migrated = migrate_v1_entry(
        program,
        cache_dir,
        v1_cache_key(program, max_states, max_depth, n_jobs),
        key,
        family=family_key(program, max_states, max_depth, n_jobs),
    )
    if migrated is not None:
        _LAST_OUTCOME = CacheOutcome(kind="migrated")
        evict_cache(cache_dir, cache_max_mb)
        return migrated, True
    graph = None
    base = find_incremental_base(
        program, cache_dir, max_states, max_depth, n_jobs
    )
    if base is not None:
        graph = explore_incremental(
            program, base, max_states=max_states, max_depth=max_depth,
            strict=strict,
        )
    incremental = graph is not None
    if graph is None:
        graph = explore(
            program,
            max_states=max_states,
            max_depth=max_depth,
            strict=strict,
            n_jobs=n_jobs,
        )
    outcome = _LAST_OUTCOME if incremental else CacheOutcome(kind="cold")
    report = store_graph(
        graph,
        cache_dir,
        key,
        family=family_key(program, max_states, max_depth, n_jobs),
    )
    outcome.chunks_total = report.chunks_total
    outcome.chunks_reused = report.chunks_reused
    outcome.bytes_written = report.bytes_written
    _LAST_OUTCOME = outcome
    evict_cache(cache_dir, cache_max_mb)
    return graph, False
