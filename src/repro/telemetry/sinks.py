"""Telemetry sinks: the ``--trace`` tree, ``--metrics-out`` JSON, and the
live progress line.

Sinks only *read* telemetry state (plus the progress line, which the
explorers feed through :func:`repro.telemetry.core.progress_reporter`);
collection lives in :mod:`repro.telemetry.core`.
"""

from __future__ import annotations

import json
import os
import sys
import time
from typing import Any, Dict, List, Optional

from repro.telemetry.core import snapshot

#: Sibling spans with the same name beyond this many are collapsed into a
#: single "... and N more" line — a million-state exploration has
#: thousands of ``shard_round`` spans and a trace must stay readable.
TRACE_SIBLING_LIMIT = 8


def _format_attrs(attrs: Dict[str, Any], counters: Dict[str, int]) -> str:
    parts = [f"{key}={value}" for key, value in attrs.items()]
    parts.extend(f"{name}={value}" for name, value in counters.items())
    return f" [{', '.join(parts)}]" if parts else ""


def render_trace(roots: Optional[List[Dict[str, Any]]] = None) -> str:
    """The span forest as an indented tree (the ``--trace`` output).

    Works on snapshot dicts so it can render both live state and a
    previously exported ``--metrics-out`` file.  Runs of more than
    :data:`TRACE_SIBLING_LIMIT` same-named siblings are summarised with
    their combined wall time.
    """
    if roots is None:
        roots = snapshot()["spans"]
    lines: List[str] = ["trace:"]

    def walk(span: Dict[str, Any], depth: int) -> None:
        indent = "  " * (depth + 1)
        lines.append(
            f"{indent}{span['name']} {span['seconds']:.3f}s"
            f"{_format_attrs(span['attrs'], span['counters'])}"
        )
        children = span["children"]
        position = 0
        while position < len(children):
            name = children[position]["name"]
            run = [children[position]]
            while (
                position + len(run) < len(children)
                and children[position + len(run)]["name"] == name
            ):
                run.append(children[position + len(run)])
            if len(run) > TRACE_SIBLING_LIMIT:
                for child in run[:TRACE_SIBLING_LIMIT]:
                    walk(child, depth + 1)
                remaining = run[TRACE_SIBLING_LIMIT:]
                total = sum(child["seconds"] for child in remaining)
                lines.append(
                    f"{'  ' * (depth + 2)}... and {len(remaining)} more "
                    f"{name!r} spans ({total:.3f}s)"
                )
            else:
                for child in run:
                    walk(child, depth + 1)
            position += len(run)

    for root in roots:
        walk(root, 0)
    if len(lines) == 1:
        lines.append("  (no spans recorded)")
    return "\n".join(lines)


def print_trace(stream=None) -> None:
    """Render the current trace tree to ``stream`` (default stderr)."""
    print(render_trace(), file=stream if stream is not None else sys.stderr)


def write_metrics(path: os.PathLike) -> None:
    """Export the telemetry snapshot as JSON to ``path``.

    The layout is the documented stable schema
    (:mod:`repro.telemetry.schema`); benchmarks and the CI validation
    step consume it.
    """
    with open(path, "w", encoding="utf-8") as stream:
        json.dump(snapshot(), stream, indent=2, sort_keys=True)
        stream.write("\n")


class ProgressLine:
    """An opt-in live one-line progress display for long explorations.

    The explorers call :meth:`maybe` once per expanded state (serial) or
    once per round (sharded); the line is rewritten in place (``\\r``) at
    most every :attr:`interval` seconds, showing states discovered, the
    pending/queue size, the BFS depth and the discovery rate.  Writing
    goes to stderr so piped stdout stays clean.
    """

    #: Seconds between repaints.
    interval = 0.1
    #: Only every this-many ``maybe`` calls consult the clock.
    stride = 256

    def __init__(self, stream=None) -> None:
        self._stream = stream if stream is not None else sys.stderr
        self._calls = 0
        self._last_time: Optional[float] = None
        self._last_states = 0
        self._dirty = False

    def maybe(self, states: int, queued: int, depth: int) -> None:
        """Repaint if enough calls and wall time have passed."""
        self._calls += 1
        if self._calls % self.stride:
            return
        now = time.monotonic()
        if self._last_time is None:
            self._last_time = now
            self._last_states = states
            return
        elapsed = now - self._last_time
        if elapsed < self.interval:
            return
        rate = (states - self._last_states) / elapsed if elapsed > 0 else 0.0
        self._stream.write(
            f"\rexplore: {states:,} states · {queued:,} queued · "
            f"depth {depth} · {rate:,.0f} states/s   "
        )
        self._stream.flush()
        self._last_time = now
        self._last_states = states
        self._dirty = True

    def close(self) -> None:
        """Clear the line (if one was drawn) so normal output follows."""
        if self._dirty:
            self._stream.write("\r" + " " * 72 + "\r")
            self._stream.flush()
            self._dirty = False
