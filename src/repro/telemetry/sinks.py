"""Telemetry sinks: the ``--trace`` tree, ``--metrics-out`` JSON, the
live progress line, the ``--events-out`` NDJSON stream and the crash
postmortem.

Sinks only *read* telemetry state (plus the progress line, which the
explorers feed through :func:`repro.telemetry.core.progress_reporter`);
collection lives in :mod:`repro.telemetry.core` and event production in
:mod:`repro.telemetry.events`.
"""

from __future__ import annotations

import json
import os
import sys
import time
import traceback as traceback_module
from typing import Any, Dict, List, Optional

from repro.telemetry import events
from repro.telemetry.core import phase_seconds, registry, snapshot

#: Sibling spans with the same name beyond this many are collapsed into a
#: single "... and N more" line — a million-state exploration has
#: thousands of ``shard_round`` spans and a trace must stay readable.
TRACE_SIBLING_LIMIT = 8


def _format_attrs(attrs: Dict[str, Any], counters: Dict[str, int]) -> str:
    parts = [f"{key}={value}" for key, value in attrs.items()]
    parts.extend(f"{name}={value}" for name, value in counters.items())
    return f" [{', '.join(parts)}]" if parts else ""


def render_trace(roots: Optional[List[Dict[str, Any]]] = None) -> str:
    """The span forest as an indented tree (the ``--trace`` output).

    Works on snapshot dicts so it can render both live state and a
    previously exported ``--metrics-out`` file.  Runs of more than
    :data:`TRACE_SIBLING_LIMIT` same-named siblings are summarised with
    their combined wall time.
    """
    if roots is None:
        roots = snapshot()["spans"]
    lines: List[str] = ["trace:"]

    def walk(span: Dict[str, Any], depth: int) -> None:
        indent = "  " * (depth + 1)
        lines.append(
            f"{indent}{span['name']} {span['seconds']:.3f}s"
            f"{_format_attrs(span['attrs'], span['counters'])}"
        )
        children = span["children"]
        position = 0
        while position < len(children):
            name = children[position]["name"]
            run = [children[position]]
            while (
                position + len(run) < len(children)
                and children[position + len(run)]["name"] == name
            ):
                run.append(children[position + len(run)])
            if len(run) > TRACE_SIBLING_LIMIT:
                for child in run[:TRACE_SIBLING_LIMIT]:
                    walk(child, depth + 1)
                remaining = run[TRACE_SIBLING_LIMIT:]
                total = sum(child["seconds"] for child in remaining)
                lines.append(
                    f"{'  ' * (depth + 2)}... and {len(remaining)} more "
                    f"{name!r} spans ({total:.3f}s)"
                )
            else:
                for child in run:
                    walk(child, depth + 1)
            position += len(run)

    for root in roots:
        walk(root, 0)
    if len(lines) == 1:
        lines.append("  (no spans recorded)")
    return "\n".join(lines)


def print_trace(stream=None) -> None:
    """Render the current trace tree to ``stream`` (default stderr)."""
    print(render_trace(), file=stream if stream is not None else sys.stderr)


def write_metrics(path: os.PathLike) -> None:
    """Export the telemetry snapshot as JSON to ``path``.

    The layout is the documented stable schema
    (:mod:`repro.telemetry.schema`); benchmarks and the CI validation
    step consume it.
    """
    with open(path, "w", encoding="utf-8") as stream:
        json.dump(snapshot(), stream, indent=2, sort_keys=True)
        stream.write("\n")


def engine_counters() -> Dict[str, Any]:
    """One snapshot of the engine's headline counters.

    The single source the CLI footer, the ``run.end`` event and the
    progress line's completion summary all read — nothing else may poke
    the registry ad hoc for these fields.  Keys: ``phases`` (root-span
    name → wall seconds), the successor-/graph-store hit/miss totals,
    incremental-reuse state count, the columnar verify-plane row total,
    the streaming mask-prime total, and the streaming
    states-until-verdict gauge (``None`` unless a streaming run set it).
    """
    metrics = registry().snapshot()
    counters = metrics["counters"]
    return {
        "phases": phase_seconds(),
        "succ_hits": counters.get("succache.hit", 0),
        "succ_misses": counters.get("succache.miss", 0),
        "store_hits": counters.get("graphstore.hit", 0),
        "store_misses": counters.get("graphstore.miss", 0),
        "incremental_reused": counters.get(
            "graphstore.incremental.reused_states", 0
        ),
        "plane_rows": counters.get("verify.plane.rows", 0),
        "mask_primes": counters.get("stream.mask_primes", 0),
        "states_at_verdict": metrics["gauges"].get("stream.states_at_verdict"),
    }


# -- the NDJSON event sink ------------------------------------------------


class NdjsonEventSink:
    """The ``--events-out FILE`` consumer: one event per line, as JSON.

    Crash-safe by construction: the file opens append-only and
    line-buffered, each event is serialised and written as one complete
    line in a single call, and the line buffer flushes at the newline —
    so after a crash at any instant every line already on disk parses on
    its own (:func:`repro.telemetry.schema.validate_event_stream`).  This
    byte stream is the contract the future service will reframe as SSE.

    Use as a subscriber: ``events.subscribe(sink)`` … ``sink.close()``.
    """

    def __init__(self, path: os.PathLike) -> None:
        self.path = path
        self._stream = open(path, "a", encoding="utf-8", buffering=1)
        self.written = 0

    def __call__(self, event: Dict[str, Any]) -> None:
        if self._stream.closed:
            return
        self._stream.write(json.dumps(event, sort_keys=True, default=str) + "\n")
        self.written += 1

    def close(self) -> None:
        """Detach from the bus and close the file (idempotent)."""
        events.unsubscribe(self)
        if not self._stream.closed:
            self._stream.close()


# -- the crash postmortem -------------------------------------------------

#: Bumped when the postmortem document layout changes.
POSTMORTEM_VERSION = 1


def write_postmortem(
    error: BaseException,
    command: Optional[str] = None,
    argv: Optional[List[str]] = None,
    directory: os.PathLike = ".",
) -> str:
    """Dump the flight-recorder tail, a metrics snapshot and the traceback
    of ``error`` to ``postmortem-<ts>.json``; returns the path.

    Called by the CLI on any unhandled exception.  The document validates
    against :func:`repro.telemetry.schema.validate_postmortem`: in
    particular the event tail is the ring's contiguous suffix of the run's
    event stream, so the last boundary the run crossed (phase, round,
    stage) is always reconstructible.
    """
    created = time.time()
    stamp = time.strftime("%Y%m%d-%H%M%S", time.localtime(created))
    path = os.path.join(
        os.fspath(directory), f"postmortem-{stamp}-{os.getpid()}.json"
    )
    document = {
        "version": POSTMORTEM_VERSION,
        "created_unix": created,
        "created_iso": time.strftime(
            "%Y-%m-%dT%H:%M:%S%z", time.localtime(created)
        ),
        "command": command,
        "argv": list(argv) if argv is not None else list(sys.argv[1:]),
        "error": {
            "type": type(error).__name__,
            "message": str(error),
            "traceback": traceback_module.format_exception(
                type(error), error, error.__traceback__
            ),
        },
        "events": events.flight_recorder().tail(),
        "metrics": snapshot(),
    }
    with open(path, "w", encoding="utf-8") as stream:
        json.dump(document, stream, indent=2, sort_keys=True, default=str)
        stream.write("\n")
    return path


class ProgressLine:
    """An opt-in live one-line progress display for long explorations.

    The explorers call :meth:`maybe` once per expanded state (serial) or
    once per round (sharded); the line is rewritten in place (``\\r``) at
    most every :attr:`interval` seconds, showing states discovered, the
    pending/queue size, the BFS depth and the discovery rate.  Writing
    goes to stderr so piped stdout stays clean.

    When the stream is **not a TTY** (``stream.isatty()`` false — a pipe,
    a log file, CI) the in-place redraw would litter the capture with
    ``\\r`` control characters, so the line degrades to plain
    newline-delimited updates at the same cadence and :meth:`close`
    writes nothing — every captured line is a complete record.
    """

    #: Seconds between repaints.
    interval = 0.1
    #: Only every this-many ``maybe`` calls consult the clock.
    stride = 256

    def __init__(self, stream=None) -> None:
        self._stream = stream if stream is not None else sys.stderr
        isatty = getattr(self._stream, "isatty", None)
        try:
            self._tty = bool(isatty()) if isatty is not None else False
        except (OSError, ValueError):
            self._tty = False
        self._calls = 0
        self._last_time: Optional[float] = None
        self._last_states = 0
        self._dirty = False

    def maybe(self, states: int, queued: int, depth: int) -> None:
        """Repaint if enough calls and wall time have passed."""
        self._calls += 1
        if self._calls % self.stride:
            return
        now = time.monotonic()
        if self._last_time is None:
            self._last_time = now
            self._last_states = states
            return
        elapsed = now - self._last_time
        if elapsed < self.interval:
            return
        rate = (states - self._last_states) / elapsed if elapsed > 0 else 0.0
        line = (
            f"explore: {states:,} states · {queued:,} queued · "
            f"depth {depth} · {rate:,.0f} states/s"
        )
        if self._tty:
            self._stream.write(f"\r{line}   ")
        else:
            self._stream.write(line + "\n")
        self._stream.flush()
        self._last_time = now
        self._last_states = states
        self._dirty = True

    def close(self) -> None:
        """Clear the line (if one was drawn) so normal output follows.

        Plain (non-TTY) mode never needs clearing — updates are already
        complete lines."""
        if self._dirty and self._tty:
            self._stream.write("\r" + " " * 72 + "\r")
            self._stream.flush()
        self._dirty = False
