"""The stable schema of telemetry snapshots (``--metrics-out`` JSON).

The snapshot layout is a public contract: benchmark rows embed it,
``BENCH_*.json`` consumers read it, and CI validates every exported file
against it.  The shape (version 1)::

    {
      "version": 1,
      "metrics": {
        "counters":   {"explore.states": 123, ...},
        "gauges":     {"synthesize.max_stack_height": 3, ...},
        "histograms": {"parallel.task_s":
                        {"count": 4, "total": 0.8, "min": 0.1, "max": 0.4},
                       ...}
      },
      "spans": [
        {"name": "explore", "seconds": 0.123,
         "attrs": {...}, "counters": {...}, "children": [...]},
        ...
      ]
    }

Metric names are dotted, lower-case, stable identifiers
(``subsystem.metric`` — e.g. ``explore.states``, ``graphstore.hit``); the
full catalogue lives in ``docs/METHOD.md`` §Observability.  The validator
here is hand-rolled (the repo takes no dependencies) and is deliberately
strict about shapes while open about *which* names appear — new metrics
may be added without a version bump, renames/removals require one.
"""

from __future__ import annotations

import re
from typing import Any, Dict

from repro.telemetry.core import SNAPSHOT_VERSION

#: ``subsystem.metric`` (at least one dot), lower-case, digits and
#: underscores allowed per segment.
METRIC_NAME = re.compile(r"^[a-z0-9_]+(\.[a-z0-9_]+)+$")

#: Span names are single flat identifiers.
SPAN_NAME = re.compile(r"^[a-z0-9_.]+$")

class SnapshotSchemaError(ValueError):
    """A telemetry snapshot does not conform to the documented schema."""


def _fail(path: str, message: str) -> None:
    raise SnapshotSchemaError(f"{path}: {message}")


def _check_name(path: str, name: Any) -> None:
    if not isinstance(name, str) or not METRIC_NAME.match(name):
        _fail(path, f"metric name {name!r} is not a dotted lower-case identifier")


def _check_number(path: str, value: Any, allow_none: bool = False) -> None:
    if allow_none and value is None:
        return
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        _fail(path, f"expected a number, got {value!r}")


def _check_span(path: str, payload: Any) -> None:
    if not isinstance(payload, dict):
        _fail(path, "span must be an object")
    missing = {"name", "seconds", "attrs", "counters", "children"} - set(payload)
    if missing:
        _fail(path, f"span is missing keys {sorted(missing)}")
    if not isinstance(payload["name"], str) or not SPAN_NAME.match(payload["name"]):
        _fail(path, f"span name {payload['name']!r} is not an identifier")
    _check_number(f"{path}.seconds", payload["seconds"])
    if not isinstance(payload["attrs"], dict):
        _fail(f"{path}.attrs", "must be an object")
    if not isinstance(payload["counters"], dict):
        _fail(f"{path}.counters", "must be an object")
    for name, value in payload["counters"].items():
        _check_number(f"{path}.counters[{name!r}]", value)
    if not isinstance(payload["children"], list):
        _fail(f"{path}.children", "must be a list")
    for position, child in enumerate(payload["children"]):
        _check_span(f"{path}.children[{position}]", child)


def validate_snapshot(payload: Any) -> Dict[str, Any]:
    """Validate ``payload`` against the snapshot schema; returns it.

    Raises :class:`SnapshotSchemaError` (a ``ValueError``) with the JSON
    path of the first offending element.  Used by the CI metrics step and
    the telemetry tests.
    """
    if not isinstance(payload, dict):
        _fail("$", "snapshot must be an object")
    if payload.get("version") != SNAPSHOT_VERSION:
        _fail("$.version", f"expected {SNAPSHOT_VERSION}, got {payload.get('version')!r}")
    metrics = payload.get("metrics")
    if not isinstance(metrics, dict):
        _fail("$.metrics", "must be an object")
    missing = {"counters", "gauges", "histograms"} - set(metrics)
    if missing:
        _fail("$.metrics", f"missing keys {sorted(missing)}")
    for name, value in metrics["counters"].items():
        _check_name(f"$.metrics.counters[{name!r}]", name)
        if isinstance(value, bool) or not isinstance(value, int):
            _fail(f"$.metrics.counters[{name!r}]", f"counter must be an int, got {value!r}")
    for name, value in metrics["gauges"].items():
        _check_name(f"$.metrics.gauges[{name!r}]", name)
        _check_number(f"$.metrics.gauges[{name!r}]", value)
    for name, summary in metrics["histograms"].items():
        _check_name(f"$.metrics.histograms[{name!r}]", name)
        path = f"$.metrics.histograms[{name!r}]"
        if not isinstance(summary, dict):
            _fail(path, "histogram must be an object")
        missing = {"count", "total", "min", "max"} - set(summary)
        if missing:
            _fail(path, f"missing keys {sorted(missing)}")
        if isinstance(summary["count"], bool) or not isinstance(summary["count"], int):
            _fail(f"{path}.count", f"must be an int, got {summary['count']!r}")
        _check_number(f"{path}.total", summary["total"])
        empty = summary["count"] == 0
        _check_number(f"{path}.min", summary["min"], allow_none=empty)
        _check_number(f"{path}.max", summary["max"], allow_none=empty)
    spans = payload.get("spans")
    if not isinstance(spans, list):
        _fail("$.spans", "must be a list")
    for position, root in enumerate(spans):
        _check_span(f"$.spans[{position}]", root)
    return payload
