"""The stable schema of telemetry snapshots (``--metrics-out`` JSON).

The snapshot layout is a public contract: benchmark rows embed it,
``BENCH_*.json`` consumers read it, and CI validates every exported file
against it.  The shape (version 1)::

    {
      "version": 1,
      "metrics": {
        "counters":   {"explore.states": 123, ...},
        "gauges":     {"synthesize.max_stack_height": 3, ...},
        "histograms": {"parallel.task_s":
                        {"count": 4, "total": 0.8, "min": 0.1, "max": 0.4},
                       ...}
      },
      "spans": [
        {"name": "explore", "seconds": 0.123,
         "attrs": {...}, "counters": {...}, "children": [...]},
        ...
      ]
    }

Metric names are dotted, lower-case, stable identifiers
(``subsystem.metric`` — e.g. ``explore.states``, ``graphstore.hit``); the
full catalogue lives in ``docs/METHOD.md`` §Observability.  The validator
here is hand-rolled (the repo takes no dependencies) and is deliberately
strict about shapes while open about *which* names appear — new metrics
may be added without a version bump, renames/removals require one.
"""

from __future__ import annotations

import json
import re
from typing import Any, Dict, List

from repro.telemetry.core import SNAPSHOT_VERSION
from repro.telemetry.events import CATALOGUE, EVENT_VERSION

#: ``subsystem.metric`` (at least one dot), lower-case, digits and
#: underscores allowed per segment.
METRIC_NAME = re.compile(r"^[a-z0-9_]+(\.[a-z0-9_]+)+$")

#: Span names are single flat identifiers.
SPAN_NAME = re.compile(r"^[a-z0-9_.]+$")

class SnapshotSchemaError(ValueError):
    """A telemetry snapshot does not conform to the documented schema."""


def _fail(path: str, message: str) -> None:
    raise SnapshotSchemaError(f"{path}: {message}")


def _check_name(path: str, name: Any) -> None:
    if not isinstance(name, str) or not METRIC_NAME.match(name):
        _fail(path, f"metric name {name!r} is not a dotted lower-case identifier")


def _check_number(path: str, value: Any, allow_none: bool = False) -> None:
    if allow_none and value is None:
        return
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        _fail(path, f"expected a number, got {value!r}")


def _check_span(path: str, payload: Any) -> None:
    if not isinstance(payload, dict):
        _fail(path, "span must be an object")
    missing = {"name", "seconds", "attrs", "counters", "children"} - set(payload)
    if missing:
        _fail(path, f"span is missing keys {sorted(missing)}")
    if not isinstance(payload["name"], str) or not SPAN_NAME.match(payload["name"]):
        _fail(path, f"span name {payload['name']!r} is not an identifier")
    _check_number(f"{path}.seconds", payload["seconds"])
    if not isinstance(payload["attrs"], dict):
        _fail(f"{path}.attrs", "must be an object")
    if not isinstance(payload["counters"], dict):
        _fail(f"{path}.counters", "must be an object")
    for name, value in payload["counters"].items():
        _check_number(f"{path}.counters[{name!r}]", value)
    if not isinstance(payload["children"], list):
        _fail(f"{path}.children", "must be a list")
    for position, child in enumerate(payload["children"]):
        _check_span(f"{path}.children[{position}]", child)


def validate_snapshot(payload: Any) -> Dict[str, Any]:
    """Validate ``payload`` against the snapshot schema; returns it.

    Raises :class:`SnapshotSchemaError` (a ``ValueError``) with the JSON
    path of the first offending element.  Used by the CI metrics step and
    the telemetry tests.
    """
    if not isinstance(payload, dict):
        _fail("$", "snapshot must be an object")
    if payload.get("version") != SNAPSHOT_VERSION:
        _fail("$.version", f"expected {SNAPSHOT_VERSION}, got {payload.get('version')!r}")
    metrics = payload.get("metrics")
    if not isinstance(metrics, dict):
        _fail("$.metrics", "must be an object")
    missing = {"counters", "gauges", "histograms"} - set(metrics)
    if missing:
        _fail("$.metrics", f"missing keys {sorted(missing)}")
    for name, value in metrics["counters"].items():
        _check_name(f"$.metrics.counters[{name!r}]", name)
        if isinstance(value, bool) or not isinstance(value, int):
            _fail(f"$.metrics.counters[{name!r}]", f"counter must be an int, got {value!r}")
    for name, value in metrics["gauges"].items():
        _check_name(f"$.metrics.gauges[{name!r}]", name)
        _check_number(f"$.metrics.gauges[{name!r}]", value)
    for name, summary in metrics["histograms"].items():
        _check_name(f"$.metrics.histograms[{name!r}]", name)
        path = f"$.metrics.histograms[{name!r}]"
        if not isinstance(summary, dict):
            _fail(path, "histogram must be an object")
        missing = {"count", "total", "min", "max"} - set(summary)
        if missing:
            _fail(path, f"missing keys {sorted(missing)}")
        if isinstance(summary["count"], bool) or not isinstance(summary["count"], int):
            _fail(f"{path}.count", f"must be an int, got {summary['count']!r}")
        _check_number(f"{path}.total", summary["total"])
        empty = summary["count"] == 0
        _check_number(f"{path}.min", summary["min"], allow_none=empty)
        _check_number(f"{path}.max", summary["max"], allow_none=empty)
    spans = payload.get("spans")
    if not isinstance(spans, list):
        _fail("$.spans", "must be a list")
    for position, root in enumerate(spans):
        _check_span(f"$.spans[{position}]", root)
    return payload


# -- events ---------------------------------------------------------------
#
# The event envelope (version 1) — one NDJSON line of ``--events-out``,
# one entry of the flight recorder, one line of ``GET /events``::
#
#     {"v": 1, "seq": 17, "ts": 1754650000.1, "mono": 81.44,
#      "event": "explore.round", "data": {...}}
#
# ``event`` must name a catalogue entry (``repro.telemetry.events``,
# documented in docs/METHOD.md §13); ``data`` is a flat object of JSON
# scalars (lists of scalars allowed).  Sequence numbers are process-wide,
# start at 1, and are strictly increasing within any one stream.

#: The exact key set of an event envelope.
EVENT_KEYS = frozenset({"v", "seq", "ts", "mono", "event", "data"})

#: The exact key set of a postmortem document.
POSTMORTEM_KEYS = frozenset(
    {"version", "created_unix", "created_iso", "command", "argv", "error",
     "events", "metrics"}
)


class EventSchemaError(ValueError):
    """An event (or postmortem) does not conform to the documented schema."""


def _fail_event(path: str, message: str) -> None:
    raise EventSchemaError(f"{path}: {message}")


def _check_scalar(path: str, value: Any) -> None:
    if value is None or isinstance(value, (str, int, float, bool)):
        return
    _fail_event(path, f"expected a JSON scalar, got {type(value).__name__}")


def validate_event(payload: Any, path: str = "$") -> Dict[str, Any]:
    """Validate one event envelope; returns it.

    Raises :class:`EventSchemaError` (a ``ValueError``) naming the JSON
    path of the first offending element.  Used by the ``--events-out`` CI
    step, the postmortem validator and the telemetry tests.
    """
    if not isinstance(payload, dict):
        _fail_event(path, "event must be an object")
    extra = set(payload) - EVENT_KEYS
    missing = EVENT_KEYS - set(payload)
    if missing:
        _fail_event(path, f"event is missing keys {sorted(missing)}")
    if extra:
        _fail_event(path, f"event has unknown keys {sorted(extra)}")
    if payload["v"] != EVENT_VERSION:
        _fail_event(f"{path}.v", f"expected {EVENT_VERSION}, got {payload['v']!r}")
    seq = payload["seq"]
    if isinstance(seq, bool) or not isinstance(seq, int) or seq < 1:
        _fail_event(f"{path}.seq", f"sequence number must be an int >= 1, got {seq!r}")
    for key in ("ts", "mono"):
        value = payload[key]
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            _fail_event(f"{path}.{key}", f"expected a number, got {value!r}")
    name = payload["event"]
    if not isinstance(name, str) or not METRIC_NAME.match(name):
        _fail_event(f"{path}.event", f"{name!r} is not a dotted lower-case name")
    if name not in CATALOGUE:
        _fail_event(f"{path}.event", f"{name!r} is not in the event catalogue")
    data = payload["data"]
    if not isinstance(data, dict):
        _fail_event(f"{path}.data", "must be an object")
    for key, value in data.items():
        if not isinstance(key, str):
            _fail_event(f"{path}.data", f"key {key!r} is not a string")
        if isinstance(value, list):
            for position, item in enumerate(value):
                _check_scalar(f"{path}.data[{key!r}][{position}]", item)
        else:
            _check_scalar(f"{path}.data[{key!r}]", value)
    return payload


def validate_event_stream(text: str) -> List[Dict[str, Any]]:
    """Validate an NDJSON event stream (the ``--events-out`` file format).

    Every non-empty line must parse as JSON on its own and validate as an
    event, and sequence numbers must be strictly increasing.  Returns the
    parsed events.
    """
    events: List[Dict[str, Any]] = []
    previous_seq = 0
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        try:
            payload = json.loads(line)
        except json.JSONDecodeError as error:
            _fail_event(f"line {lineno}", f"not parseable JSON: {error}")
        validate_event(payload, path=f"line {lineno}")
        if payload["seq"] <= previous_seq:
            _fail_event(
                f"line {lineno}.seq",
                f"sequence numbers must increase: {payload['seq']} after "
                f"{previous_seq}",
            )
        previous_seq = payload["seq"]
        events.append(payload)
    return events


def validate_postmortem(payload: Any) -> Dict[str, Any]:
    """Validate a crash postmortem document; returns it.

    The event tail must be *contiguous* (each sequence number exactly one
    more than its predecessor) — the flight recorder drops only from the
    front, so any gap means the document was tampered with or the ring
    implementation broke.  The embedded metrics snapshot is validated
    against :func:`validate_snapshot`.
    """
    if not isinstance(payload, dict):
        _fail_event("$", "postmortem must be an object")
    missing = POSTMORTEM_KEYS - set(payload)
    if missing:
        _fail_event("$", f"postmortem is missing keys {sorted(missing)}")
    from repro.telemetry.sinks import POSTMORTEM_VERSION

    if payload["version"] != POSTMORTEM_VERSION:
        _fail_event(
            "$.version",
            f"expected {POSTMORTEM_VERSION}, got {payload['version']!r}",
        )
    if isinstance(payload["created_unix"], bool) or not isinstance(
        payload["created_unix"], (int, float)
    ):
        _fail_event("$.created_unix", "must be a number")
    if not isinstance(payload["created_iso"], str):
        _fail_event("$.created_iso", "must be a string")
    if payload["command"] is not None and not isinstance(payload["command"], str):
        _fail_event("$.command", "must be a string or null")
    if not isinstance(payload["argv"], list) or not all(
        isinstance(item, str) for item in payload["argv"]
    ):
        _fail_event("$.argv", "must be a list of strings")
    error = payload["error"]
    if not isinstance(error, dict):
        _fail_event("$.error", "must be an object")
    for key in ("type", "message"):
        if not isinstance(error.get(key), str):
            _fail_event(f"$.error.{key}", "must be a string")
    if not isinstance(error.get("traceback"), list) or not all(
        isinstance(item, str) for item in error["traceback"]
    ):
        _fail_event("$.error.traceback", "must be a list of strings")
    events = payload["events"]
    if not isinstance(events, list):
        _fail_event("$.events", "must be a list")
    previous_seq = None
    for position, event in enumerate(events):
        validate_event(event, path=f"$.events[{position}]")
        if previous_seq is not None and event["seq"] != previous_seq + 1:
            _fail_event(
                f"$.events[{position}].seq",
                f"flight-recorder tail must be contiguous: {event['seq']} "
                f"after {previous_seq}",
            )
        previous_seq = event["seq"]
    try:
        validate_snapshot(payload["metrics"])
    except SnapshotSchemaError as exc:
        _fail_event("$.metrics", str(exc))
    return payload
