"""The structured event bus and the flight recorder.

Everything long-running in the engine reports *events* here — small,
schema-versioned dicts with a monotonic sequence number and both a wall
and a monotonic timestamp::

    {"v": 1, "seq": 17, "ts": 1754650000.123, "mono": 81.44,
     "event": "explore.round",
     "data": {"round": 12, "pending": 4096, "states": 131072,
              "workers": 4, "dispatch": "sharded"}}

The bus is *typed*: every event name must come from :data:`CATALOGUE`
(documented in ``docs/METHOD.md`` §13); :func:`emit` rejects unknown
names so producers cannot silently invent streams consumers do not know
about.  New names may be added without a version bump; renaming or
reshaping an existing event's data requires bumping
:data:`EVENT_VERSION`.

Two delivery paths, both fed by every :func:`emit`:

* **The flight recorder** — a bounded in-memory ring
  (:class:`FlightRecorder`, default :data:`DEFAULT_RING_CAPACITY` events,
  overridable via :data:`RING_ENV`) that is *always on*.  Its cost is one
  deque append per event, and events themselves fire only at phase/round
  boundaries, never per state — so a crashed run always has its last
  ``N`` boundary events available for the postmortem
  (:func:`repro.telemetry.sinks.write_postmortem`), at near-zero cost to
  a healthy run.
* **Subscribers** — callables registered with :func:`subscribe` receive
  every event dict as it is emitted (the ``--events-out`` NDJSON sink,
  tests, future SSE framers).  A subscriber that raises is dropped from
  that event's delivery but never breaks the emitting engine code.

Producers that would be too chatty for unconditional emission use the
throttled tickers: :func:`exploration_ticker` (per-expansion, active only
when someone is listening — :func:`live`) and :func:`round_ticker`
(per-BFS-round, always on, at most one event per
:data:`ROUND_INTERVAL_S`).  Sequence numbers are process-wide and
strictly increasing, so any contiguous slice of the ring is provably
gap-free — the property the postmortem validator checks.

This module is import-light and bottom-of-the-stack: it may not import
anything else from :mod:`repro` at module level (``telemetry.core``
imports *us* to emit phase events from root spans).
"""

from __future__ import annotations

import os
import threading
import time
from collections import deque
from typing import Any, Callable, Deque, Dict, List, Optional

#: Bumped when the event envelope (the ``v/seq/ts/mono/event/data`` frame)
#: or the meaning of an existing event changes; consumers key on it.
EVENT_VERSION = 1

#: Default flight-recorder capacity (events).
DEFAULT_RING_CAPACITY = 1024

#: Environment override for the flight-recorder capacity.
RING_ENV = "REPRO_FLIGHT_RECORDER_EVENTS"

#: Throttle for per-round/per-progress tickers: at most one event per
#: this many seconds per ticker.
ROUND_INTERVAL_S = 0.25

#: Per-expansion tickers consult the clock only every this many calls.
PROGRESS_STRIDE = 1024


# -- catalogue ------------------------------------------------------------


class EventKind:
    """One named entry of the event catalogue."""

    __slots__ = ("name", "doc")

    def __init__(self, name: str, doc: str) -> None:
        self.name = name
        self.doc = doc

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"EventKind({self.name!r})"


RUN_START = EventKind(
    "run.start",
    "A CLI run began: command, source file, pid, requested jobs.",
)
RUN_END = EventKind(
    "run.end",
    "A CLI run finished: exit code (None on crash), crashed flag, wall seconds.",
)
PHASE_BEGIN = EventKind(
    "phase.begin",
    "A root telemetry span opened (explore/verify/synthesize/decide): "
    "phase name plus the span's opening attributes.",
)
PHASE_END = EventKind(
    "phase.end",
    "A root telemetry span closed: phase name and wall seconds.",
)
EXPLORE_PROGRESS = EventKind(
    "explore.progress",
    "Throttled serial-exploration heartbeat: states discovered, queue "
    "size, BFS depth.  Emitted only while a consumer is attached.",
)
EXPLORE_ROUND = EventKind(
    "explore.round",
    "One sharded/shm BFS round dispatched: round depth, pending sources, "
    "states so far, worker count and the dispatch decision.",
)
EXPLORE_SUMMARY = EventKind(
    "explore.summary",
    "An exploration finished: system name, states, transitions, frontier "
    "size, completeness.",
)
GRAPHSTORE_OUTCOME = EventKind(
    "graphstore.outcome",
    "explore_with_cache resolved: outcome kind (bypass/hit/migrated/"
    "incremental/cold) and the chunk reuse/write accounting.",
)
POOL_SPINUP = EventKind(
    "parallel.pool_spinup",
    "The persistent worker pool was (re)created: worker count, spin-up "
    "seconds.",
)
STREAM_STAGE = EventKind(
    "stream.stage",
    "One stage of the streaming decide completed: stage number, state "
    "budget, states explored, fresh SCC candidates, witness found.",
)
DECIDE_VERDICT = EventKind(
    "decide.verdict",
    "A fair-termination decision returned: verdict, decisiveness, "
    "streaming flag, states/transitions explored, stages (streaming).",
)
VERIFY_VERDICT = EventKind(
    "verify.verdict",
    "A measure verification returned: ok, violation count, transitions "
    "checked, completeness, streaming/stopped-early flags.",
)

#: name → :class:`EventKind`; the full catalogue (docs/METHOD.md §13).
CATALOGUE: Dict[str, EventKind] = {
    kind.name: kind
    for kind in (
        RUN_START,
        RUN_END,
        PHASE_BEGIN,
        PHASE_END,
        EXPLORE_PROGRESS,
        EXPLORE_ROUND,
        EXPLORE_SUMMARY,
        GRAPHSTORE_OUTCOME,
        POOL_SPINUP,
        STREAM_STAGE,
        DECIDE_VERDICT,
        VERIFY_VERDICT,
    )
}


# -- the flight recorder --------------------------------------------------


def _default_capacity() -> int:
    raw = os.environ.get(RING_ENV)
    if raw is None:
        return DEFAULT_RING_CAPACITY
    try:
        capacity = int(raw)
    except ValueError:
        return DEFAULT_RING_CAPACITY
    return capacity if capacity > 0 else DEFAULT_RING_CAPACITY


class FlightRecorder:
    """A bounded ring of the most recent events.

    Appending is O(1) and drops the oldest event once ``capacity`` is
    reached; because sequence numbers are globally monotonic the retained
    slice is always contiguous — ``tail()`` never has gaps.
    """

    __slots__ = ("_ring",)

    def __init__(self, capacity: Optional[int] = None) -> None:
        self._ring: Deque[Dict[str, Any]] = deque(
            maxlen=capacity if capacity is not None else _default_capacity()
        )

    @property
    def capacity(self) -> int:
        return self._ring.maxlen or 0

    def __len__(self) -> int:
        return len(self._ring)

    def append(self, event: Dict[str, Any]) -> None:
        self._ring.append(event)

    def tail(self, n: Optional[int] = None) -> List[Dict[str, Any]]:
        """The most recent ``n`` events (all retained events when ``None``),
        oldest first."""
        events = list(self._ring)
        return events if n is None else events[len(events) - min(n, len(events)):]

    def clear(self) -> None:
        self._ring.clear()


_lock = threading.Lock()
_seq = 0
_recorder = FlightRecorder()
_subscribers: List[Callable[[Dict[str, Any]], None]] = []
_taps = 0  # live readers without a callback (the exposition server)


def flight_recorder() -> FlightRecorder:
    """The process-wide flight recorder (always recording)."""
    return _recorder


def last_seq() -> int:
    """The sequence number of the most recently emitted event (0 if none)."""
    return _seq


def reset_events(capacity: Optional[int] = None) -> None:
    """Clear the ring and restart sequence numbering (CLI entry / tests).

    ``capacity`` replaces the ring bound; omitted, the current environment
    default applies.  Subscribers are *kept* — the caller that attached a
    sink owns its lifecycle.
    """
    global _seq, _recorder
    with _lock:
        _seq = 0
        _recorder = FlightRecorder(capacity)


def subscribe(consumer: Callable[[Dict[str, Any]], None]) -> None:
    """Deliver every future event to ``consumer`` (idempotent)."""
    with _lock:
        if consumer not in _subscribers:
            _subscribers.append(consumer)


def unsubscribe(consumer: Callable[[Dict[str, Any]], None]) -> None:
    """Stop delivering events to ``consumer`` (a no-op if unknown)."""
    with _lock:
        try:
            _subscribers.remove(consumer)
        except ValueError:
            pass


def add_tap() -> None:
    """Mark a live ring reader (the exposition server) as attached —
    makes :func:`live` true so throttled producers start emitting."""
    global _taps
    with _lock:
        _taps += 1


def remove_tap() -> None:
    global _taps
    with _lock:
        _taps = max(0, _taps - 1)


def live() -> bool:
    """Whether anything is consuming events beyond the flight recorder.

    Chatty producers (the per-expansion exploration ticker) check this
    once per phase and stay silent when false, so a bare library call
    pays nothing for the event layer's existence.
    """
    return bool(_subscribers) or _taps > 0


def emit(kind, /, **data: Any) -> Dict[str, Any]:
    """Emit one event: stamp it, ring it, fan it out to subscribers.

    ``kind`` is an :class:`EventKind` (or its name); names outside
    :data:`CATALOGUE` raise ``ValueError`` — the bus is typed.  Returns
    the emitted event dict.  A subscriber that raises is skipped for this
    event; emission never propagates consumer failures into the engine.
    """
    global _seq
    name = kind.name if isinstance(kind, EventKind) else kind
    if name not in CATALOGUE:
        raise ValueError(f"unknown event kind {name!r} (not in the catalogue)")
    with _lock:
        _seq += 1
        event = {
            "v": EVENT_VERSION,
            "seq": _seq,
            "ts": time.time(),
            "mono": time.monotonic(),
            "event": name,
            "data": data,
        }
        _recorder.append(event)
        consumers = tuple(_subscribers)
    for consumer in consumers:
        try:
            consumer(event)
        except Exception:
            pass
    return event


# -- throttled producers --------------------------------------------------


class ExploreTicker:
    """Per-expansion ``explore.progress`` heartbeat, interval throttled.

    The *stride* lives at the call site (the explore loop only calls
    :meth:`tick` every :data:`PROGRESS_STRIDE` expansions): building the
    tick arguments costs three ``len`` calls, which is real money at a
    million expansions, so the hot loop must be able to skip the call
    entirely with one integer test.  ``tick`` then applies the wall-time
    throttle — at most one event per :data:`ROUND_INTERVAL_S`."""

    __slots__ = ("_last",)

    def __init__(self) -> None:
        self._last: Optional[float] = None

    def tick(self, states: int, queued: int, depth: int) -> None:
        now = time.monotonic()
        if self._last is not None and now - self._last < ROUND_INTERVAL_S:
            return
        self._last = now
        emit(EXPLORE_PROGRESS, states=states, queued=queued, depth=depth)


def exploration_ticker() -> Optional[ExploreTicker]:
    """A serial-exploration heartbeat, or ``None`` when nobody is
    listening (the common case — hot loops guard with ``is not None``)."""
    return ExploreTicker() if live() else None


class RoundTicker:
    """Per-BFS-round ``explore.round`` emitter, interval throttled.

    Always on: rounds are orders of magnitude rarer than expansions, so
    one clock read per round keeps the flight recorder current for
    postmortems without measurable cost.  The first round of a phase is
    always emitted.
    """

    __slots__ = ("_last",)

    def __init__(self) -> None:
        self._last: Optional[float] = None

    def tick(
        self,
        round_depth: int,
        pending: int,
        states: int,
        workers: int,
        dispatch: str,
    ) -> None:
        now = time.monotonic()
        if self._last is not None and now - self._last < ROUND_INTERVAL_S:
            return
        self._last = now
        emit(
            EXPLORE_ROUND,
            round=round_depth,
            pending=pending,
            states=states,
            workers=workers,
            dispatch=dispatch,
        )


def round_ticker() -> RoundTicker:
    """A fresh per-round emitter for one sharded/shm exploration."""
    return RoundTicker()


class ExplorationEventObserver:
    """An :class:`~repro.ts.explore.ExplorationObserver` that turns the
    streaming callbacks into per-round ``explore.progress`` events.

    The PR 5 observer protocol fires ``on_state`` in discovery order with
    the BFS depth, so a depth increase is exactly a round boundary; this
    adaptor emits one summary event per round (plus a final one from
    :meth:`finish`).  Useful for library callers who want event-stream
    progress from a plain :func:`~repro.ts.explore.explore` call without
    enabling the CLI machinery; the engine's own explorers use the
    cheaper tickers above.
    """

    __slots__ = ("states", "transitions", "expanded", "depth", "_queued")

    def on_state(self, index: int, state, depth: int) -> None:
        if depth > self.depth:
            emit(
                EXPLORE_PROGRESS,
                states=self.states,
                queued=self.states - self.expanded,
                depth=self.depth,
            )
            self.depth = depth
        self.states += 1

    def on_transition(self, source: int, command, target: int) -> None:
        self.transitions += 1

    def on_expanded(self, index: int, enabled: frozenset) -> None:
        self.expanded += 1

    def __init__(self) -> None:
        self.states = 0
        self.transitions = 0
        self.expanded = 0
        self.depth = 0

    def finish(self) -> Dict[str, Any]:
        """Emit (and return) the final round's summary event."""
        return emit(
            EXPLORE_PROGRESS,
            states=self.states,
            queued=self.states - self.expanded,
            depth=self.depth,
        )
