"""Engine telemetry: structured tracing, counters and live progress.

Zero-dependency observability for the whole pipeline — exploration
(serial and sharded), the persistent worker pool, the disk cache,
measure verification and synthesis all report into one process-wide
registry and one span forest.  Disabled (the default) every
instrumentation site is a single flag check and :func:`span` returns a
shared no-op object, so the hot paths cost nothing; enabled, results are
still bit-identical — telemetry observes, it never steers.

Typical use::

    from repro import telemetry

    telemetry.enable()
    graph = explore(program, n_jobs=4)
    check_measure(graph, assignment, n_jobs=4)
    print(telemetry.render_trace())          # the --trace tree
    telemetry.write_metrics("metrics.json")  # the --metrics-out export
    telemetry.reset(); telemetry.disable()

The CLI exposes the same through ``--trace``, ``--metrics-out FILE`` and
``--progress`` on every subcommand.  The metrics registry aggregates
counters incremented inside pool workers back into the parent at round
boundaries (:func:`worker_collect` / :func:`merge_worker_metrics`), so a
``--jobs 4`` run reports exactly what a serial run would.  Metric names
and the export schema are documented in ``docs/METHOD.md``
§Observability and validated by :func:`validate_snapshot`.
"""

from repro.telemetry.core import (
    NOOP_SPAN,
    SNAPSHOT_VERSION,
    HistogramSummary,
    MetricsRegistry,
    Span,
    count,
    current_span,
    disable,
    enable,
    enabled,
    gauge,
    merge_worker_metrics,
    observe,
    phase_seconds,
    progress_reporter,
    registry,
    reset,
    root_spans,
    snapshot,
    span,
    worker_collect,
)
from repro.telemetry.events import (
    CATALOGUE,
    EVENT_VERSION,
    EventKind,
    ExplorationEventObserver,
    FlightRecorder,
    emit,
    flight_recorder,
    last_seq,
    reset_events,
    subscribe,
    unsubscribe,
)
from repro.telemetry.expose import (
    ExpositionServer,
    render_prometheus,
)
from repro.telemetry.schema import (
    EventSchemaError,
    SnapshotSchemaError,
    validate_event,
    validate_event_stream,
    validate_postmortem,
    validate_snapshot,
)
from repro.telemetry.sinks import (
    NdjsonEventSink,
    ProgressLine,
    engine_counters,
    print_trace,
    render_trace,
    write_metrics,
    write_postmortem,
)

__all__ = [
    "CATALOGUE",
    "EVENT_VERSION",
    "NOOP_SPAN",
    "SNAPSHOT_VERSION",
    "EventKind",
    "EventSchemaError",
    "ExplorationEventObserver",
    "ExpositionServer",
    "FlightRecorder",
    "HistogramSummary",
    "MetricsRegistry",
    "NdjsonEventSink",
    "ProgressLine",
    "SnapshotSchemaError",
    "Span",
    "emit",
    "engine_counters",
    "flight_recorder",
    "last_seq",
    "render_prometheus",
    "reset_events",
    "subscribe",
    "unsubscribe",
    "validate_event",
    "validate_event_stream",
    "validate_postmortem",
    "count",
    "current_span",
    "disable",
    "enable",
    "enabled",
    "gauge",
    "merge_worker_metrics",
    "observe",
    "phase_seconds",
    "print_trace",
    "progress_reporter",
    "registry",
    "render_trace",
    "reset",
    "root_spans",
    "snapshot",
    "span",
    "validate_snapshot",
    "worker_collect",
    "write_metrics",
    "write_postmortem",
]
