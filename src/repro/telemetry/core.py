"""Spans, counters, gauges and histograms — the engine's nervous system.

The engine (exploration, sharding, the worker pool, the disk cache,
verification, synthesis) is instrumented at *phase boundaries*: every
instrumentation site is a module-level flag check followed, only when
telemetry is enabled, by a dict update or a span push.  Disabled — the
default — the whole subsystem costs one pointer comparison per site:
:func:`span` returns a shared no-op singleton (no allocation), and
:func:`count`/:func:`gauge`/:func:`observe` return before touching the
registry.  Inner per-state/per-transition loops are never instrumented
directly; callers record totals when a phase closes.

Three primitives:

* **Spans** — hierarchical timed regions (``span("explore")`` →
  ``span("shard_round", round=k)``).  A span carries wall time, arbitrary
  attributes, its own counters and its children; the forest of root spans
  is what ``--trace`` renders and what the snapshot exports.
* **The metrics registry** — process-wide dotted-name counters, gauges
  and histograms (mergeable ``count/total/min/max`` summaries, never raw
  observation lists).  Names are stable and documented in
  ``docs/METHOD.md`` §Observability.
* **Worker deltas** — :func:`worker_collect` wraps a function call in a
  child process: it enables collection locally, resets the child's
  registry, runs the function and ships the resulting snapshot back as
  plain data; the parent merges it with :func:`merge_worker_metrics` at
  the round boundary.  Pool workers are single-threaded and run one task
  at a time, so reset-then-snapshot is exact.

Everything here is import-light and dependency-free; nothing in this
module may import the rest of :mod:`repro` (every engine module imports
*us*) except :mod:`repro.telemetry.events`, which sits below us: root
spans double as the ``phase.begin``/``phase.end`` events of the
structured event bus.
"""

from __future__ import annotations

import time
from typing import Any, Dict, List, Optional, Tuple

from repro.telemetry import events as _events

#: Bumped when the snapshot layout changes; consumers (benchmarks, CI
#: schema validation) key on it.
SNAPSHOT_VERSION = 1

_enabled = False


def enabled() -> bool:
    """Whether telemetry collection is on (the module-level fast flag)."""
    return _enabled


def enable(progress: bool = False, progress_stream=None) -> None:
    """Turn collection on (spans + metrics; ``progress`` adds the live
    stderr progress line for long explorations)."""
    global _enabled, _progress
    _enabled = True
    if progress:
        from repro.telemetry.sinks import ProgressLine

        _progress = ProgressLine(stream=progress_stream)
    else:
        _progress = None


def disable() -> None:
    """Turn collection off.  Collected data survives until :func:`reset`."""
    global _enabled, _progress
    _enabled = False
    _progress = None


def reset() -> None:
    """Drop all collected metrics and spans (and any open span stack)."""
    _registry.reset()
    _span_stack.clear()
    _root_spans.clear()


# -- metrics registry -----------------------------------------------------


class HistogramSummary:
    """A mergeable summary of observations: count, total, min, max.

    Raw observations are never retained — a histogram's memory cost is
    four numbers no matter how many values it sees, and two summaries
    merge exactly (the property worker-delta aggregation relies on).
    """

    __slots__ = ("count", "total", "min", "max")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    def merge(self, other: Dict[str, Any]) -> None:
        """Fold a snapshotted summary (``{"count", "total", "min", "max"}``)
        into this one."""
        if not other.get("count"):
            return
        self.count += other["count"]
        self.total += other["total"]
        if self.min is None or other["min"] < self.min:
            self.min = other["min"]
        if self.max is None or other["max"] > self.max:
            self.max = other["max"]

    def snapshot(self) -> Dict[str, Any]:
        return {
            "count": self.count,
            "total": self.total,
            "min": self.min,
            "max": self.max,
        }


class MetricsRegistry:
    """Process-wide named counters, gauges and histograms."""

    __slots__ = ("counters", "gauges", "histograms")

    def __init__(self) -> None:
        self.counters: Dict[str, int] = {}
        self.gauges: Dict[str, float] = {}
        self.histograms: Dict[str, HistogramSummary] = {}

    def count(self, name: str, n: int = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + n

    def gauge(self, name: str, value: float) -> None:
        self.gauges[name] = value

    def observe(self, name: str, value: float) -> None:
        summary = self.histograms.get(name)
        if summary is None:
            summary = self.histograms[name] = HistogramSummary()
        summary.observe(value)

    def merge(self, delta: Dict[str, Any]) -> None:
        """Fold a snapshot produced by another process's registry into this
        one: counters add, gauges last-write-wins, histograms merge."""
        for name, value in delta.get("counters", {}).items():
            self.counters[name] = self.counters.get(name, 0) + value
        for name, value in delta.get("gauges", {}).items():
            self.gauges[name] = value
        for name, summary in delta.get("histograms", {}).items():
            mine = self.histograms.get(name)
            if mine is None:
                mine = self.histograms[name] = HistogramSummary()
            mine.merge(summary)

    def snapshot(self) -> Dict[str, Any]:
        return {
            "counters": dict(self.counters),
            "gauges": dict(self.gauges),
            "histograms": {
                name: summary.snapshot()
                for name, summary in self.histograms.items()
            },
        }

    def reset(self) -> None:
        self.counters.clear()
        self.gauges.clear()
        self.histograms.clear()


_registry = MetricsRegistry()
_progress = None  # ProgressLine when enable(progress=True), else None


def registry() -> MetricsRegistry:
    """The process-wide registry (exposed for sinks, footers and tests)."""
    return _registry


def count(name: str, n: int = 1) -> None:
    """Add ``n`` to counter ``name`` — no-op (and allocation-free) when
    telemetry is disabled."""
    if _enabled:
        _registry.count(name, n)


def gauge(name: str, value: float) -> None:
    """Set gauge ``name`` to ``value`` (no-op when disabled)."""
    if _enabled:
        _registry.gauges[name] = value


def observe(name: str, value: float) -> None:
    """Record ``value`` into histogram ``name`` (no-op when disabled)."""
    if _enabled:
        _registry.observe(name, value)


# -- spans ----------------------------------------------------------------


def _event_safe(attrs: Dict[str, Any]) -> Dict[str, Any]:
    """Span attributes coerced to the event-data contract: JSON scalars
    only, and no collision with the envelope's own ``phase`` key."""
    safe: Dict[str, Any] = {}
    for key, value in attrs.items():
        if key == "phase":
            continue
        if value is None or isinstance(value, (str, int, float, bool)):
            safe[key] = value
        else:
            safe[key] = str(value)
    return safe


class Span:
    """One timed region of the trace tree.

    Created by :func:`span` (only when telemetry is enabled), entered via
    ``with``.  ``set`` attaches attributes, ``inc`` bumps span-local
    counters; both also work after exit (callers often annotate a span
    with totals computed just before the ``with`` block closes).
    """

    __slots__ = ("name", "attrs", "counters", "children", "start", "end", "_root")

    def __init__(self, name: str, attrs: Dict[str, Any]) -> None:
        self.name = name
        self.attrs = attrs
        self.counters: Dict[str, int] = {}
        self.children: List["Span"] = []
        self.start = 0.0
        self.end: Optional[float] = None
        self._root = False

    @property
    def seconds(self) -> float:
        """Wall time; an open span reads as elapsed-so-far."""
        return (self.end if self.end is not None else time.perf_counter()) - self.start

    def set(self, key: str, value: Any) -> None:
        self.attrs[key] = value

    def inc(self, name: str, n: int = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + n

    def __enter__(self) -> "Span":
        parent = _span_stack[-1] if _span_stack else None
        (parent.children if parent is not None else _root_spans).append(self)
        _span_stack.append(self)
        # Root spans are the engine's phases — they double as the
        # phase.begin/phase.end events of the structured bus (child spans
        # would flood the ring: a sharded explore has thousands).
        self._root = parent is None
        if self._root:
            _events.emit(
                _events.PHASE_BEGIN, phase=self.name, **_event_safe(self.attrs)
            )
        self.start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.end = time.perf_counter()
        if _span_stack and _span_stack[-1] is self:
            _span_stack.pop()
        if self._root:
            _events.emit(
                _events.PHASE_END,
                phase=self.name,
                seconds=self.end - self.start,
                error=exc_type.__name__ if exc_type is not None else None,
            )

    def snapshot(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "seconds": self.seconds,
            "attrs": dict(self.attrs),
            "counters": dict(self.counters),
            "children": [child.snapshot() for child in self.children],
        }


class _NoopSpan:
    """The disabled-mode span: one shared instance, every method a no-op.

    ``span(...)`` returns *this very object* whenever telemetry is off —
    the hot path allocates nothing, and tests assert the identity.
    """

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        return None

    def set(self, key: str, value: Any) -> None:
        pass

    def inc(self, name: str, n: int = 1) -> None:
        pass

    @property
    def seconds(self) -> float:
        return 0.0


NOOP_SPAN = _NoopSpan()

_span_stack: List[Span] = []
_root_spans: List[Span] = []


def span(name: str, **attrs: Any):
    """Open a trace span (use as a context manager).

    Disabled: returns the shared :data:`NOOP_SPAN` — no allocation, no
    timing.  Enabled: returns a fresh :class:`Span` that attaches itself
    to the current span (or the root forest) on ``__enter__``.
    """
    if not _enabled:
        return NOOP_SPAN
    return Span(name, attrs)


def root_spans() -> List[Span]:
    """The forest of completed/open top-level spans, in start order."""
    return _root_spans


def current_span():
    """The innermost open span, or the no-op span when none/disabled."""
    if _enabled and _span_stack:
        return _span_stack[-1]
    return NOOP_SPAN


def phase_seconds() -> Dict[str, float]:
    """Total wall time of root spans, aggregated by span name.

    The CLI footer's source of truth: repeated phases (several explores
    in one command) sum.
    """
    totals: Dict[str, float] = {}
    for root in _root_spans:
        totals[root.name] = totals.get(root.name, 0.0) + root.seconds
    return totals


# -- progress -------------------------------------------------------------


def progress_reporter():
    """The live progress sink, or ``None`` (the common case).

    Hot loops fetch this once and guard every update with
    ``if progress is not None`` — the disabled cost is one comparison.
    """
    return _progress


# -- worker-side collection ----------------------------------------------


def worker_collect(fn, item) -> Tuple[Any, Dict[str, Any], float]:
    """Run ``fn(item)`` in a pool worker, collecting its metrics delta.

    Enables collection locally for the duration (pool workers may have
    been spawned before the parent enabled telemetry), resets the
    worker's registry so the snapshot is exactly this call's delta, and
    returns ``(result, metrics_delta, elapsed_seconds)``.  Workers run
    one task at a time on one thread, so the reset cannot race another
    task.
    """
    global _enabled
    _registry.reset()
    previous = _enabled
    _enabled = True
    start = time.perf_counter()
    try:
        result = fn(item)
    finally:
        _enabled = previous
    elapsed = time.perf_counter() - start
    return result, _registry.snapshot(), elapsed


def merge_worker_metrics(delta: Dict[str, Any]) -> None:
    """Fold one worker delta into the parent registry (round boundary)."""
    if _enabled:
        _registry.merge(delta)


# -- snapshot -------------------------------------------------------------


def snapshot() -> Dict[str, Any]:
    """The full telemetry state as a JSON-ready dict (the stable schema
    validated by :func:`repro.telemetry.schema.validate_snapshot`)."""
    return {
        "version": SNAPSHOT_VERSION,
        "metrics": _registry.snapshot(),
        "spans": [root.snapshot() for root in _root_spans],
    }
