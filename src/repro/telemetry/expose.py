"""The live exposition endpoint: ``--expose PORT`` on every subcommand.

A stdlib-only HTTP server (``http.server.ThreadingHTTPServer`` on a
daemon thread) that makes a running — or lingering — engine process
scrapeable:

* ``GET /metrics`` — the :class:`~repro.telemetry.core.MetricsRegistry`
  rendered in Prometheus text exposition format (version 0.0.4):
  counters as ``repro_<name>_total``, gauges as ``repro_<name>``, each
  histogram summary as the four series ``_count``/``_sum``/``_min``/
  ``_max``.  Dotted metric names map to underscores, so
  ``explore.states`` scrapes as ``repro_explore_states_total``.
* ``GET /events`` — the flight recorder as NDJSON, oldest first; every
  line validates against
  :func:`repro.telemetry.schema.validate_event`.  ``?since=SEQ`` returns
  only events after that sequence number (tail-follow by polling:
  remember the last ``seq`` you saw, ask for what came after) and
  ``?limit=N`` caps the reply to the most recent ``N``.
* ``GET /healthz`` — liveness: ``{"status": "ok", "pid": ..., "uptime_s":
  ..., "events": <last seq>}``.

The server binds loopback by default, serves each request on its own
thread (scrapes never block the engine — handlers only *read* telemetry
state), counts as a live event consumer (:func:`repro.telemetry.events
.add_tap`) so throttled producers start emitting, and dies with the
process.  This is the first resident-server surface in the repo — the
seed of the verification-as-a-service roadmap item; the service will
mount these handlers unchanged.
"""

from __future__ import annotations

import json
import os
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, Optional
from urllib.parse import parse_qs, urlsplit

from repro.telemetry import events
from repro.telemetry.core import registry

#: Seconds the CLI keeps serving after the command finished, so scrapers
#: can read the final state of short runs (CI sets this).
LINGER_ENV = "REPRO_EXPOSE_LINGER"

#: Prefix of every exported Prometheus series.
PROM_PREFIX = "repro_"


def _prom_name(name: str) -> str:
    """A dotted metric name as a Prometheus identifier."""
    return PROM_PREFIX + "".join(
        ch if ch.isalnum() or ch == "_" else "_" for ch in name
    )


def render_prometheus(metrics: Optional[Dict[str, Any]] = None) -> str:
    """The registry snapshot in Prometheus text exposition format.

    ``metrics`` defaults to the live registry's snapshot; passing one in
    makes the renderer testable and lets the future service render
    per-job snapshots.
    """
    if metrics is None:
        metrics = registry().snapshot()
    lines = []
    for name, value in sorted(metrics["counters"].items()):
        series = _prom_name(name) + "_total"
        lines.append(f"# TYPE {series} counter")
        lines.append(f"{series} {value}")
    for name, value in sorted(metrics["gauges"].items()):
        series = _prom_name(name)
        lines.append(f"# TYPE {series} gauge")
        lines.append(f"{series} {value}")
    for name, summary in sorted(metrics["histograms"].items()):
        base = _prom_name(name)
        lines.append(f"# TYPE {base} summary")
        lines.append(f"{base}_count {summary['count']}")
        lines.append(f"{base}_sum {summary['total']}")
        if summary["min"] is not None:
            lines.append(f"{base}_min {summary['min']}")
        if summary["max"] is not None:
            lines.append(f"{base}_max {summary['max']}")
    lines.append(f"# TYPE {PROM_PREFIX}events gauge")
    lines.append(f"{PROM_PREFIX}events {events.last_seq()}")
    return "\n".join(lines) + "\n"


def _first_int(query: Dict[str, Any], key: str) -> Optional[int]:
    values = query.get(key)
    if not values:
        return None
    try:
        return int(values[0])
    except ValueError:
        return None


class _Handler(BaseHTTPRequestHandler):
    server_version = "repro-expose/1"

    def log_message(self, format: str, *args: Any) -> None:
        pass  # scrapes must not spam the engine's stderr

    def _send(self, status: int, content_type: str, body: bytes) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        parsed = urlsplit(self.path)
        try:
            if parsed.path == "/healthz":
                payload = {
                    "status": "ok",
                    "pid": os.getpid(),
                    "uptime_s": round(
                        time.monotonic() - self.server.started_mono, 3
                    ),
                    "events": events.last_seq(),
                }
                self._send(
                    200,
                    "application/json",
                    (json.dumps(payload, sort_keys=True) + "\n").encode(),
                )
            elif parsed.path == "/metrics":
                self._send(
                    200,
                    "text/plain; version=0.0.4; charset=utf-8",
                    render_prometheus().encode(),
                )
            elif parsed.path == "/events":
                query = parse_qs(parsed.query)
                since = _first_int(query, "since")
                limit = _first_int(query, "limit")
                tail = events.flight_recorder().tail(limit)
                if since is not None:
                    tail = [event for event in tail if event["seq"] > since]
                body = "".join(
                    json.dumps(event, sort_keys=True, default=str) + "\n"
                    for event in tail
                )
                self._send(200, "application/x-ndjson", body.encode())
            else:
                self._send(
                    404,
                    "application/json",
                    b'{"error": "unknown path", "paths": '
                    b'["/metrics", "/events", "/healthz"]}\n',
                )
        except (BrokenPipeError, ConnectionResetError):
            pass  # the scraper went away mid-reply; nothing to do


class _Server(ThreadingHTTPServer):
    daemon_threads = True
    started_mono = 0.0


class ExpositionServer:
    """A live `/metrics` + `/events` + `/healthz` endpoint for one run.

    ``port=0`` binds an ephemeral port (tests); :meth:`start` returns the
    actual port.  The server registers as an event-bus tap for its
    lifetime so throttled producers emit while anyone could be watching.
    """

    def __init__(self, port: int = 0, host: str = "127.0.0.1") -> None:
        self._host = host
        self._port = port
        self._server: Optional[_Server] = None
        self._thread: Optional[threading.Thread] = None

    @property
    def port(self) -> int:
        if self._server is None:
            return self._port
        return self._server.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self._host}:{self.port}"

    def start(self) -> int:
        """Bind, start serving on a daemon thread, return the bound port."""
        if self._server is not None:
            return self.port
        self._server = _Server((self._host, self._port), _Handler)
        self._server.started_mono = time.monotonic()
        events.add_tap()
        self._thread = threading.Thread(
            target=self._server.serve_forever,
            name="repro-expose",
            daemon=True,
        )
        self._thread.start()
        return self.port

    def stop(self) -> None:
        """Shut the server down and release the event tap (idempotent)."""
        if self._server is None:
            return
        self._server.shutdown()
        self._server.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5)
        self._server = None
        self._thread = None
        events.remove_tap()

    def __enter__(self) -> "ExpositionServer":
        self.start()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()


def linger_seconds() -> float:
    """The configured post-run serving window (:data:`LINGER_ENV`)."""
    raw = os.environ.get(LINGER_ENV)
    if raw is None:
        return 0.0
    try:
        return max(0.0, float(raw))
    except ValueError:
        return 0.0
