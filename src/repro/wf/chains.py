"""Utilities for descending chains.

Soundness (Theorem 1) and the well-foundedness audits both revolve around
(non-)existence of infinite descending chains.  These helpers make the
contrapositive executable: bound how long a descent can continue, and search
for descents of a requested length.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, List, Sequence

from repro.wf.base import WellFoundedOrder


def longest_strict_descent(
    order: WellFoundedOrder,
    values: Sequence[Any],
) -> List[Any]:
    """The longest strictly ``≻``-descending subsequence of ``values``.

    Classic O(n²) dynamic program, adequate for audit-sized inputs.  The
    returned list is a witness; its length bounds how much "progress" the
    sequence of measure values actually certifies.
    """
    values = list(values)
    if not values:
        return []
    best_len = [1] * len(values)
    prev = [-1] * len(values)
    for i, current in enumerate(values):
        for j in range(i):
            if order.gt(values[j], current) and best_len[j] + 1 > best_len[i]:
                best_len[i] = best_len[j] + 1
                prev[i] = j
    end = max(range(len(values)), key=lambda i: best_len[i])
    chain: List[Any] = []
    while end != -1:
        chain.append(values[end])
        end = prev[end]
    chain.reverse()
    return chain


def descend_greedily(
    order: WellFoundedOrder,
    start: Any,
    step: Callable[[Any], Iterable[Any]],
    max_steps: int = 10_000,
) -> List[Any]:
    """Follow ``step`` greedily while it offers a strictly smaller value.

    From ``start``, repeatedly pick any successor strictly below the current
    value; stop when none exists or after ``max_steps``.  For a well-founded
    order the walk always stops before exhausting the budget on terminating
    step functions; hitting the budget is reported by raising
    ``RuntimeError`` — in tests this is how a *bogus* (non-well-founded)
    "order" is caught red-handed.
    """
    order.check_member(start)
    chain = [start]
    current = start
    for _ in range(max_steps):
        candidates = [v for v in step(current) if order.gt(current, v)]
        if not candidates:
            return chain
        current = candidates[0]
        chain.append(current)
    raise RuntimeError(
        f"descent did not stop within {max_steps} steps; "
        "the relation is likely not well-founded"
    )


def verify_no_descent_cycles(order: WellFoundedOrder, values: Sequence[Any]) -> None:
    """Assert antisymmetry of ``≻`` restricted to ``values``.

    A pair with ``a ≻ b`` and ``b ≻ a`` would give the two-element infinite
    chain ``a ≻ b ≻ a ≻ ...``; any well-founded relation must refute it.
    Raises ``AssertionError`` with the offending pair otherwise.  (Quadratic;
    intended for audits and tests.)
    """
    values = list(values)
    for i, a in enumerate(values):
        if order.gt(a, a):
            raise AssertionError(f"{a!r} ≻ {a!r}: relation is irreflexive-violating")
        for b in values[i + 1 :]:
            if order.gt(a, b) and order.gt(b, a):
                raise AssertionError(
                    f"{a!r} ≻ {b!r} and {b!r} ≻ {a!r}: descent cycle of length 2"
                )
