"""Explicitly represented orders with a decidable well-foundedness check.

The Theorem 3 construction builds ``(W, ≻)`` incrementally: ``new`` allocates
fresh elements, and Case 2 ("forced active") adds edges ``w ≻ w'``.  The
completeness proof then argues that the resulting relation is well-founded.
:class:`GrowableRelation` is the mutable structure that construction uses;
:class:`FiniteOrder` is its frozen, queryable form, whose
:meth:`~FiniteOrder.is_well_founded` check is a genuine cycle/infinite-chain
test (for a finite relation, well-foundedness ⟺ the transitive closure is
irreflexive ⟺ the edge digraph is acyclic).
"""

from __future__ import annotations

from typing import Any, Dict, Hashable, Iterable, List, Set, Tuple

from repro.wf.base import WellFoundedOrder


class GrowableRelation:
    """A mutable set of elements with ``≻``-edges, as built by ``new``.

    Elements are identified by consecutive integers (the paper's Theorem 4
    remarks that "we can represent W using the natural numbers; successive
    invocations of 'new' then give progress values '0', '1', ..." — this
    class is exactly that representation).  Edges record the *immediate*
    ``w ≻ w'`` facts added by the construction; the induced strict order is
    the transitive closure.
    """

    def __init__(self) -> None:
        self._count = 0
        self._edges: Set[Tuple[int, int]] = set()
        self._successors: Dict[int, Set[int]] = {}

    def new(self) -> int:
        """Allocate and return a fresh element (the paper's ``new``)."""
        element = self._count
        self._count += 1
        return element

    def add_descent(self, greater: int, lesser: int) -> None:
        """Record ``greater ≻ lesser`` (a Case 2 edge)."""
        for value in (greater, lesser):
            if not (0 <= value < self._count):
                raise ValueError(f"{value} was never allocated by new()")
        self._edges.add((greater, lesser))
        self._successors.setdefault(greater, set()).add(lesser)

    @property
    def size(self) -> int:
        """Number of elements allocated so far."""
        return self._count

    @property
    def edges(self) -> frozenset[Tuple[int, int]]:
        """The immediate descent edges recorded so far."""
        return frozenset(self._edges)

    def freeze(self) -> "FiniteOrder":
        """Snapshot into an immutable, queryable :class:`FiniteOrder`."""
        return FiniteOrder(range(self._count), self._edges)


class FiniteOrder(WellFoundedOrder):
    """A finite strict order given by explicit edges (transitively closed
    on demand).

    ``gt(a, b)`` holds iff ``b`` is reachable from ``a`` along one or more
    edges.  :meth:`is_well_founded` decides well-foundedness by cycle
    detection — this is the audit applied to every ``(W, ≻)`` produced by
    the completeness constructions and the synthesiser.
    """

    def __init__(
        self,
        elements: Iterable[Hashable],
        edges: Iterable[Tuple[Hashable, Hashable]],
    ) -> None:
        self._elements = frozenset(elements)
        self._successors: Dict[Hashable, frozenset] = {}
        grouped: Dict[Hashable, Set[Hashable]] = {}
        for greater, lesser in edges:
            if greater not in self._elements or lesser not in self._elements:
                raise ValueError(f"edge ({greater!r}, {lesser!r}) mentions unknown element")
            grouped.setdefault(greater, set()).add(lesser)
        for key, values in grouped.items():
            self._successors[key] = frozenset(values)
        self._reachable_cache: Dict[Hashable, frozenset] = {}

    @property
    def elements(self) -> frozenset:
        """The carrier set ``W``."""
        return self._elements

    @property
    def edge_count(self) -> int:
        """Number of immediate descent edges."""
        return sum(len(s) for s in self._successors.values())

    def contains(self, value: Any) -> bool:
        return value in self._elements

    def _reachable_from(self, start: Hashable) -> frozenset:
        cached = self._reachable_cache.get(start)
        if cached is not None:
            return cached
        seen: Set[Hashable] = set()
        stack: List[Hashable] = list(self._successors.get(start, ()))
        while stack:
            node = stack.pop()
            if node in seen:
                continue
            seen.add(node)
            # Reuse previously computed closures where available.
            cached_node = self._reachable_cache.get(node)
            if cached_node is not None:
                seen.update(cached_node)
            else:
                stack.extend(self._successors.get(node, ()))
        result = frozenset(seen)
        self._reachable_cache[start] = result
        return result

    def gt(self, left: Any, right: Any) -> bool:
        self.check_member(left)
        self.check_member(right)
        return right in self._reachable_from(left)

    def is_well_founded(self) -> bool:
        """True iff the descent digraph is acyclic (no infinite chains)."""
        return self.find_cycle() is None

    def find_cycle(self) -> List[Hashable] | None:
        """Return a descent cycle ``[w₀, w₁, ..., w₀]`` if one exists.

        A cycle yields the infinite descending chain refuting
        well-foundedness; ``None`` means the order is well-founded.  Uses an
        iterative three-colour DFS.
        """
        WHITE, GREY, BLACK = 0, 1, 2
        colour: Dict[Hashable, int] = {e: WHITE for e in self._elements}
        parent: Dict[Hashable, Hashable] = {}
        for root in self._elements:
            if colour[root] != WHITE:
                continue
            stack: List[Tuple[Hashable, Iterable]] = [
                (root, iter(self._successors.get(root, ())))
            ]
            colour[root] = GREY
            while stack:
                node, children = stack[-1]
                advanced = False
                for child in children:
                    if colour[child] == GREY:
                        # Found a back edge: reconstruct the cycle.
                        cycle = [node]
                        current = node
                        while current != child:
                            current = parent[current]
                            cycle.append(current)
                        cycle.reverse()
                        cycle.append(cycle[0])
                        return cycle
                    if colour[child] == WHITE:
                        colour[child] = GREY
                        parent[child] = node
                        stack.append((child, iter(self._successors.get(child, ()))))
                        advanced = True
                        break
                if not advanced:
                    colour[node] = BLACK
                    stack.pop()
        return None

    def longest_descent_from(self, start: Hashable) -> int:
        """Length (edge count) of the longest descent starting at ``start``.

        Only meaningful on well-founded orders; raises ``ValueError`` if a
        cycle is reachable (the length would be infinite).
        """
        self.check_member(start)
        memo: Dict[Hashable, int] = {}
        on_path: Set[Hashable] = set()

        def depth(node: Hashable) -> int:
            if node in memo:
                return memo[node]
            if node in on_path:
                raise ValueError("descent cycle reachable; length is infinite")
            on_path.add(node)
            best = 0
            for child in self._successors.get(node, ()):
                best = max(best, 1 + depth(child))
            on_path.discard(node)
            memo[node] = best
            return best

        return depth(start)

    def describe(self) -> str:
        return f"finite order ({len(self._elements)} elements, {self.edge_count} edges)"
