"""The Dershowitz–Manna multiset extension of a well-founded order.

Multiset measures are the classic tool for termination of systems where a
step replaces one "big" obligation by finitely many strictly smaller ones —
exactly the shape of helpful-direction decompositions, where discharging one
unfairness hypothesis may spawn several smaller sub-obligations.  The
extension of a well-founded order is well-founded (Dershowitz & Manna 1979),
so multisets are a legitimate measure domain for stack assertions.

Multisets are represented as immutable :class:`Multiset` values (element →
positive multiplicity).
"""

from __future__ import annotations

from typing import Any, Dict, Hashable, Iterable, Mapping, Tuple

from repro.wf.base import WellFoundedOrder


class Multiset:
    """An immutable finite multiset over hashable elements."""

    __slots__ = ("_counts", "_hash")

    def __init__(self, items: Iterable[Hashable] | Mapping[Hashable, int] = ()) -> None:
        counts: Dict[Hashable, int] = {}
        if isinstance(items, Mapping):
            for element, multiplicity in items.items():
                if not isinstance(multiplicity, int) or multiplicity < 0:
                    raise ValueError(
                        f"multiplicity must be a non-negative int, got {multiplicity!r}"
                    )
                if multiplicity:
                    counts[element] = multiplicity
        else:
            for element in items:
                counts[element] = counts.get(element, 0) + 1
        self._counts = counts
        self._hash = hash(frozenset(counts.items()))

    def count(self, element: Hashable) -> int:
        """Multiplicity of ``element`` (0 if absent)."""
        return self._counts.get(element, 0)

    def elements(self) -> frozenset:
        """The distinct elements."""
        return frozenset(self._counts)

    def items(self) -> Tuple[Tuple[Hashable, int], ...]:
        """(element, multiplicity) pairs."""
        return tuple(self._counts.items())

    def __len__(self) -> int:
        return sum(self._counts.values())

    def __iter__(self):
        for element, multiplicity in self._counts.items():
            for _ in range(multiplicity):
                yield element

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Multiset) and other._counts == self._counts

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        inner = ", ".join(f"{e!r}×{m}" for e, m in sorted(
            self._counts.items(), key=lambda item: repr(item[0])
        ))
        return f"Multiset({{{inner}}})"

    def union(self, other: "Multiset") -> "Multiset":
        """Multiset sum (multiplicities add)."""
        counts = dict(self._counts)
        for element, multiplicity in other._counts.items():
            counts[element] = counts.get(element, 0) + multiplicity
        return Multiset(counts)

    def difference(self, other: "Multiset") -> "Multiset":
        """Multiset difference (multiplicities saturate at zero)."""
        counts = {}
        for element, multiplicity in self._counts.items():
            remaining = multiplicity - other.count(element)
            if remaining > 0:
                counts[element] = remaining
        return Multiset(counts)


class MultisetExtension(WellFoundedOrder):
    """``M(W)`` under the Dershowitz–Manna order.

    ``M ≻ N`` iff ``M ≠ N`` and, writing ``X = M − N`` and ``Y = N − M``
    (multiset differences), every element of ``Y`` is dominated by some
    strictly greater element of ``X``.  Equivalently: ``N`` is obtained from
    ``M`` by removing a non-empty multiset and adding finitely many elements
    each strictly below some removed one.
    """

    def __init__(self, base: WellFoundedOrder) -> None:
        self._base = base

    @property
    def base(self) -> WellFoundedOrder:
        """The element order."""
        return self._base

    def contains(self, value: Any) -> bool:
        return isinstance(value, Multiset) and all(
            self._base.contains(e) for e in value.elements()
        )

    def gt(self, left: Any, right: Any) -> bool:
        self.check_member(left)
        self.check_member(right)
        if left == right:
            return False
        removed = left.difference(right)
        added = right.difference(left)
        if len(removed) == 0:
            return False
        for small in added.elements():
            if not any(self._base.gt(big, small) for big in removed.elements()):
                return False
        return True

    def describe(self) -> str:
        return f"multisets over {self._base.describe()}"
