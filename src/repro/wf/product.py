"""Componentwise (cross) products of well-founded orders.

Theorem 2 speaks of choosing "the least value of the progress measure ...
with respect to a cross-product ordering"; this module provides both the
strict-in-every-component product and the more useful weak product (strict
somewhere, weakly descending everywhere), each well-founded when the
components are.
"""

from __future__ import annotations

from typing import Any, Sequence

from repro.wf.base import WellFoundedOrder


class PointwiseProduct(WellFoundedOrder):
    """Tuples ordered by ``left ≻ right`` iff every component is ``⪰`` and
    at least one is strictly ``≻``.

    This is the standard product order; it is well-founded whenever every
    component order is (a descending chain would project to an eventually
    constant weakly-descending chain in each component, with infinitely many
    strict steps in some component by pigeonhole).
    """

    def __init__(self, components: Sequence[WellFoundedOrder]) -> None:
        if not components:
            raise ValueError("product order needs at least one component")
        self._components = tuple(components)

    @property
    def components(self) -> tuple[WellFoundedOrder, ...]:
        """The component orders."""
        return self._components

    def contains(self, value: Any) -> bool:
        return (
            isinstance(value, tuple)
            and len(value) == len(self._components)
            and all(c.contains(v) for c, v in zip(self._components, value))
        )

    def gt(self, left: Any, right: Any) -> bool:
        self.check_member(left)
        self.check_member(right)
        strict = False
        for order, a, b in zip(self._components, left, right):
            if a == b:
                continue
            if order.gt(a, b):
                strict = True
            else:
                return False
        return strict

    def describe(self) -> str:
        inner = " × ".join(c.describe() for c in self._components)
        return f"pointwise({inner})"


class StrictProduct(WellFoundedOrder):
    """Tuples ordered by strict descent in *every* component.

    Coarser than :class:`PointwiseProduct` (fewer related pairs), therefore
    also well-founded when the components are.
    """

    def __init__(self, components: Sequence[WellFoundedOrder]) -> None:
        if not components:
            raise ValueError("product order needs at least one component")
        self._components = tuple(components)

    @property
    def components(self) -> tuple[WellFoundedOrder, ...]:
        """The component orders."""
        return self._components

    def contains(self, value: Any) -> bool:
        return (
            isinstance(value, tuple)
            and len(value) == len(self._components)
            and all(c.contains(v) for c, v in zip(self._components, value))
        )

    def gt(self, left: Any, right: Any) -> bool:
        self.check_member(left)
        self.check_member(right)
        return all(
            order.gt(a, b) for order, a, b in zip(self._components, left, right)
        )

    def describe(self) -> str:
        inner = " × ".join(c.describe() for c in self._components)
        return f"strict({inner})"
