"""Well-founded orders — the measure domains for progress hypotheses.

See :mod:`repro.wf.base` for the interface and the sibling modules for the
concrete orders.  The most commonly used names are re-exported here.
"""

from repro.wf.base import NotInDomainError, WellFoundedOrder
from repro.wf.chains import (
    descend_greedily,
    longest_strict_descent,
    verify_no_descent_cycles,
)
from repro.wf.finite import FiniteOrder, GrowableRelation
from repro.wf.lex import BoundedLengthLexOrder, HomogeneousLexOrder, LexicographicOrder
from repro.wf.multiset import Multiset, MultisetExtension
from repro.wf.naturals import NATURALS, BoundedNaturals, Naturals
from repro.wf.ordinals import (
    OMEGA,
    ONE,
    ORDINALS,
    ZERO,
    Ordinal,
    OrdinalsBelowEpsilon0,
    omega_power,
    ordinal,
)
from repro.wf.product import PointwiseProduct, StrictProduct

__all__ = [
    "NotInDomainError",
    "WellFoundedOrder",
    "descend_greedily",
    "longest_strict_descent",
    "verify_no_descent_cycles",
    "FiniteOrder",
    "GrowableRelation",
    "BoundedLengthLexOrder",
    "HomogeneousLexOrder",
    "LexicographicOrder",
    "Multiset",
    "MultisetExtension",
    "NATURALS",
    "BoundedNaturals",
    "Naturals",
    "OMEGA",
    "ONE",
    "ORDINALS",
    "ZERO",
    "Ordinal",
    "OrdinalsBelowEpsilon0",
    "omega_power",
    "ordinal",
    "PointwiseProduct",
    "StrictProduct",
]
