"""The natural numbers ``0 < 1 < 2 < ...`` as a well-founded order.

This is the order used by every example in the paper: ``P1'`` measures
``max{y-x, 0}``, ``P3'`` measures ``z mod 117`` — both natural numbers.
"""

from __future__ import annotations

from typing import Any

from repro.wf.base import WellFoundedOrder


class Naturals(WellFoundedOrder):
    """``(ℕ, >)`` — the canonical well-founded order of Floyd's method."""

    def contains(self, value: Any) -> bool:
        return isinstance(value, int) and not isinstance(value, bool) and value >= 0

    def gt(self, left: Any, right: Any) -> bool:
        self.check_member(left)
        self.check_member(right)
        return left > right

    def describe(self) -> str:
        return "ℕ with >"


#: Shared instance; the class is stateless.
NATURALS = Naturals()


class BoundedNaturals(WellFoundedOrder):
    """``({0, ..., bound-1}, >)`` — naturals restricted below ``bound``.

    Handy for measures with a known ceiling, e.g. ``z mod 117`` in ``P3'``
    always lies in ``{0, ..., 116}``; declaring the bound lets the checker
    flag annotation mistakes (values escaping the intended range) instead of
    silently accepting them.
    """

    def __init__(self, bound: int) -> None:
        if bound <= 0:
            raise ValueError(f"bound must be positive, got {bound}")
        self._bound = bound

    @property
    def bound(self) -> int:
        """The exclusive upper bound of the domain."""
        return self._bound

    def contains(self, value: Any) -> bool:
        return (
            isinstance(value, int)
            and not isinstance(value, bool)
            and 0 <= value < self._bound
        )

    def gt(self, left: Any, right: Any) -> bool:
        self.check_member(left)
        self.check_member(right)
        return left > right

    def describe(self) -> str:
        return f"{{0..{self._bound - 1}}} with >"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, BoundedNaturals) and other._bound == self._bound

    def __hash__(self) -> int:
        return hash(("BoundedNaturals", self._bound))
