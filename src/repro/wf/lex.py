"""Lexicographic orders on tuples of well-founded values.

Theorem 2's quotient construction orders the measure lists
``w = ⟨w₀, ..., w_N⟩`` lexicographically: ``w ≻ w'`` iff for some ``i``,
``w[i] ≻ w'[i]`` and ``w[j] = w'[j]`` for all ``j < i``.  When each component
order is well-founded (and, for the fixed-width case, the width is fixed),
the lexicographic order is well-founded too.
"""

from __future__ import annotations

from typing import Any, Sequence

from repro.wf.base import WellFoundedOrder


class LexicographicOrder(WellFoundedOrder):
    """Fixed-width lexicographic product of well-founded orders.

    ``LexicographicOrder([A, B, C])`` orders triples ``(a, b, c)`` with the
    first differing component deciding, exactly as in the proof of
    Theorem 2.
    """

    def __init__(self, components: Sequence[WellFoundedOrder]) -> None:
        if not components:
            raise ValueError("lexicographic order needs at least one component")
        self._components = tuple(components)

    @property
    def components(self) -> tuple[WellFoundedOrder, ...]:
        """The component orders, leftmost most significant."""
        return self._components

    @property
    def width(self) -> int:
        """The tuple width."""
        return len(self._components)

    def contains(self, value: Any) -> bool:
        return (
            isinstance(value, tuple)
            and len(value) == len(self._components)
            and all(c.contains(v) for c, v in zip(self._components, value))
        )

    def gt(self, left: Any, right: Any) -> bool:
        self.check_member(left)
        self.check_member(right)
        for order, a, b in zip(self._components, left, right):
            if a != b:
                return order.gt(a, b)
        return False

    def describe(self) -> str:
        inner = " × ".join(c.describe() for c in self._components)
        return f"lex({inner})"


class HomogeneousLexOrder(WellFoundedOrder):
    """Fixed-width lexicographic power ``Wⁿ`` of a single order.

    The Theorem 2 proof assumes "(W, ≻) is totally ordered" and takes
    ``W^{N+1}`` under lexicographic comparison; this class is that order.
    """

    def __init__(self, base: WellFoundedOrder, width: int) -> None:
        if width <= 0:
            raise ValueError(f"width must be positive, got {width}")
        self._base = base
        self._width = width

    @property
    def base(self) -> WellFoundedOrder:
        """The component order."""
        return self._base

    @property
    def width(self) -> int:
        """The tuple width."""
        return self._width

    def contains(self, value: Any) -> bool:
        return (
            isinstance(value, tuple)
            and len(value) == self._width
            and all(self._base.contains(v) for v in value)
        )

    def gt(self, left: Any, right: Any) -> bool:
        self.check_member(left)
        self.check_member(right)
        for a, b in zip(left, right):
            if a != b:
                return self._base.gt(a, b)
        return False

    def describe(self) -> str:
        return f"({self._base.describe()})^{self._width} lexicographic"


class BoundedLengthLexOrder(WellFoundedOrder):
    """Lexicographic order on tuples of length at most ``max_length``.

    Shorter tuples that are proper prefixes compare *below* their
    extensions would not be well-founded in general for unbounded lengths;
    with a global length bound and well-founded components it is.  We order
    by: first differing position decides; if one tuple is a proper prefix of
    the other, the longer one is greater.  This matches comparing stacks of
    different heights where only a bounded number of hypotheses can exist
    (the paper's stacks never exceed N+1 entries).
    """

    def __init__(self, base: WellFoundedOrder, max_length: int) -> None:
        if max_length <= 0:
            raise ValueError(f"max_length must be positive, got {max_length}")
        self._base = base
        self._max_length = max_length

    @property
    def max_length(self) -> int:
        """The inclusive bound on tuple length."""
        return self._max_length

    def contains(self, value: Any) -> bool:
        return (
            isinstance(value, tuple)
            and len(value) <= self._max_length
            and all(self._base.contains(v) for v in value)
        )

    def gt(self, left: Any, right: Any) -> bool:
        self.check_member(left)
        self.check_member(right)
        for a, b in zip(left, right):
            if a != b:
                return self._base.gt(a, b)
        return len(left) > len(right)

    def describe(self) -> str:
        return f"({self._base.describe()})^≤{self._max_length} lexicographic"
