"""Ordinals below epsilon_0 in Cantor normal form.

The completeness proofs for fair termination (and the earlier methods the
paper cites — [LPS81], [GFMdRv85]) in general need transfinite measures: a
program may fairly terminate although no natural-number bound on the number
of remaining steps exists (unbounded nondeterminism pushes the measure to
``ω`` and beyond).  This module provides a faithful, fully computable
fragment: ordinals strictly below ``ε₀``, represented in Cantor normal form

    ``α = ω^β₁·c₁ + ω^β₂·c₂ + ... + ω^βₖ·cₖ``

with ``β₁ > β₂ > ... > βₖ`` ordinals (recursively in CNF) and coefficients
``cᵢ`` positive integers.  Comparison, (non-commutative) ordinal addition and
multiplication, and the commutative natural (Hessenberg) sum are implemented.

``Ordinal`` values are immutable and totally ordered, so they slot directly
into the :class:`~repro.wf.base.WellFoundedOrder` interface via
:class:`OrdinalsBelowEpsilon0`.
"""

from __future__ import annotations

import functools
from typing import Any, Iterable, Tuple

from repro.wf.base import WellFoundedOrder

# A CNF term is (exponent, coefficient); an ordinal is a tuple of terms with
# strictly decreasing exponents.  The empty tuple is the ordinal 0.
_Terms = Tuple[Tuple["Ordinal", int], ...]


@functools.total_ordering
class Ordinal:
    """An ordinal below ``ε₀`` in Cantor normal form.

    Construct via :func:`ordinal` (from an int), :data:`OMEGA`, or the
    arithmetic operators.  The constructor validates CNF invariants so that
    malformed ordinals cannot be built by accident.
    """

    __slots__ = ("_terms", "_hash")

    def __init__(self, terms: Iterable[Tuple["Ordinal", int]] = ()) -> None:
        terms = tuple(terms)
        for exponent, coefficient in terms:
            if not isinstance(exponent, Ordinal):
                raise TypeError(f"exponent must be an Ordinal, got {exponent!r}")
            if not isinstance(coefficient, int) or coefficient <= 0:
                raise ValueError(f"coefficient must be a positive int, got {coefficient!r}")
        for (e1, _), (e2, _) in zip(terms, terms[1:]):
            if not e1 > e2:
                raise ValueError("CNF exponents must strictly decrease")
        self._terms: _Terms = terms
        self._hash = hash(terms)

    # -- structure ---------------------------------------------------------

    @property
    def terms(self) -> _Terms:
        """The CNF terms ``((β₁, c₁), ...)`` with strictly decreasing ``βᵢ``."""
        return self._terms

    def is_zero(self) -> bool:
        """Whether this is the ordinal 0."""
        return not self._terms

    def is_finite(self) -> bool:
        """Whether this ordinal is a natural number."""
        return self.is_zero() or (len(self._terms) == 1 and self._terms[0][0].is_zero())

    def to_int(self) -> int:
        """The value as an int, if finite; raises ``ValueError`` otherwise."""
        if self.is_zero():
            return 0
        if not self.is_finite():
            raise ValueError(f"{self} is not finite")
        return self._terms[0][1]

    def is_limit(self) -> bool:
        """Whether this is a limit ordinal (nonzero, no finite part)."""
        return bool(self._terms) and not self._terms[-1][0].is_zero()

    def is_successor(self) -> bool:
        """Whether this ordinal is a successor (has a finite part)."""
        return bool(self._terms) and self._terms[-1][0].is_zero()

    def degree(self) -> "Ordinal":
        """The leading exponent ``β₁`` (``0`` for finite ordinals)."""
        if self.is_zero():
            return ZERO
        return self._terms[0][0]

    # -- comparison --------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if isinstance(other, int):
            other = ordinal(other)
        if not isinstance(other, Ordinal):
            return NotImplemented
        return self._terms == other._terms

    def __lt__(self, other: object) -> bool:
        if isinstance(other, int):
            other = ordinal(other)
        if not isinstance(other, Ordinal):
            return NotImplemented
        for (e1, c1), (e2, c2) in zip(self._terms, other._terms):
            if e1 != e2:
                return e1 < e2
            if c1 != c2:
                return c1 < c2
        return len(self._terms) < len(other._terms)

    def __hash__(self) -> int:
        return self._hash

    # -- arithmetic --------------------------------------------------------

    def __add__(self, other: "Ordinal | int") -> "Ordinal":
        """Ordinal addition (non-commutative): absorbs small left terms.

        ``1 + ω == ω`` but ``ω + 1 > ω``.
        """
        if isinstance(other, int):
            other = ordinal(other)
        if not isinstance(other, Ordinal):
            return NotImplemented
        if other.is_zero():
            return self
        cut = other._terms[0][0]
        kept = [(e, c) for (e, c) in self._terms if e > cut]
        merged = list(other._terms)
        # Merge equal leading exponent if present on the left.
        for e, c in self._terms:
            if e == cut:
                merged[0] = (cut, c + merged[0][1])
                break
        return Ordinal(tuple(kept) + tuple(merged))

    def __radd__(self, other: int) -> "Ordinal":
        return ordinal(other) + self

    def __mul__(self, other: "Ordinal | int") -> "Ordinal":
        """Ordinal multiplication (non-commutative): ``2·ω == ω``, ``ω·2 > ω``."""
        if isinstance(other, int):
            other = ordinal(other)
        if not isinstance(other, Ordinal):
            return NotImplemented
        if self.is_zero() or other.is_zero():
            return ZERO
        result = ZERO
        lead_exp, lead_coeff = self._terms[0]
        for e, c in other._terms:
            if e.is_zero():
                # Right factor finite part: multiply leading coefficient,
                # keep this ordinal's tail.
                result = result + Ordinal(
                    ((lead_exp, lead_coeff * c),) + self._terms[1:]
                )
            else:
                result = result + Ordinal(((lead_exp + e, c),))
        return result

    def __rmul__(self, other: int) -> "Ordinal":
        return ordinal(other) * self

    def natural_sum(self, other: "Ordinal | int") -> "Ordinal":
        """The commutative Hessenberg sum: merge CNF terms by exponent.

        Used where measures from independent components must combine
        monotonically in both arguments (e.g. products of per-process
        measures).
        """
        if isinstance(other, int):
            other = ordinal(other)
        coeffs: dict[Ordinal, int] = {}
        for e, c in self._terms + other._terms:
            coeffs[e] = coeffs.get(e, 0) + c
        terms = tuple(sorted(coeffs.items(), key=lambda t: t[0], reverse=True))
        return Ordinal(terms)

    # -- display -----------------------------------------------------------

    def __repr__(self) -> str:
        return f"Ordinal({self})"

    def __str__(self) -> str:
        if self.is_zero():
            return "0"
        parts = []
        for e, c in self._terms:
            if e.is_zero():
                parts.append(str(c))
            elif e == ONE:
                parts.append("ω" if c == 1 else f"ω·{c}")
            else:
                base = f"ω^{e}" if (e.is_finite() or len(e._terms) == 1) else f"ω^({e})"
                parts.append(base if c == 1 else f"{base}·{c}")
        return " + ".join(parts)


def ordinal(n: int) -> Ordinal:
    """The finite ordinal ``n`` (``n ≥ 0``)."""
    if not isinstance(n, int) or isinstance(n, bool) or n < 0:
        raise ValueError(f"expected a non-negative int, got {n!r}")
    if n == 0:
        return ZERO
    return Ordinal(((ZERO, n),))


def omega_power(exponent: "Ordinal | int", coefficient: int = 1) -> Ordinal:
    """The ordinal ``ω^exponent · coefficient``."""
    if isinstance(exponent, int):
        exponent = ordinal(exponent)
    if coefficient == 0:
        return ZERO
    return Ordinal(((exponent, coefficient),))


#: The ordinal 0.
ZERO = Ordinal()
#: The ordinal 1.
ONE = Ordinal(((ZERO, 1),))
#: The first infinite ordinal.
OMEGA = Ordinal(((ONE, 1),))


class OrdinalsBelowEpsilon0(WellFoundedOrder):
    """The well-founded order of all :class:`Ordinal` values (below ``ε₀``)."""

    def contains(self, value: Any) -> bool:
        return isinstance(value, Ordinal)

    def gt(self, left: Any, right: Any) -> bool:
        self.check_member(left)
        self.check_member(right)
        return left > right

    def describe(self) -> str:
        return "ordinals < ε₀"


#: Shared instance; the class is stateless.
ORDINALS = OrdinalsBelowEpsilon0()
