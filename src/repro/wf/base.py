"""Abstract interface for well-founded orders.

The paper's measures take values in a well-founded set ``(W, ≻)``: a set
``W`` with a binary relation ``≻`` admitting no infinite descending chain
``w0 ≻ w1 ≻ ...``.  Progress hypotheses (`repro.measures.hypotheses`) carry
values drawn from such a set, and the soundness argument (Theorem 1) turns
any would-be fair infinite computation into an infinite descending chain,
which well-foundedness forbids.

This module defines the small interface the rest of the library relies on.
Concrete orders live in sibling modules:

* :mod:`repro.wf.naturals` — the natural numbers with ``>``;
* :mod:`repro.wf.ordinals` — ordinals below epsilon_0 in Cantor normal form;
* :mod:`repro.wf.lex` — lexicographic tuples (used by Theorem 2's quotient);
* :mod:`repro.wf.product` — componentwise products;
* :mod:`repro.wf.finite` — explicit finite relations with an effective
  well-foundedness (acyclicity) check, used to audit the ``(W, ≻)`` built by
  the Theorem 3 construction;
* :mod:`repro.wf.multiset` — the Dershowitz–Manna multiset extension.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, Iterable, Sequence


class NotInDomainError(ValueError):
    """Raised when a value is compared in an order it does not belong to."""


class WellFoundedOrder(ABC):
    """A well-founded set ``(W, ≻)``.

    Subclasses implement membership and the strict relation; the derived
    operations (``ge``, ``max_of`` ...) are provided here.  Instances are
    immutable and safe to share.

    The contract — *no infinite descending chains* — cannot be checked
    mechanically in general (well-foundedness of a recursive relation is
    Pi^1_1-complete; the paper's Theorem 4 leans on exactly this).  Orders
    whose well-foundedness *is* decidable (finite ones) override
    :meth:`is_well_founded` with a real check; the default documents the
    promise.
    """

    @abstractmethod
    def contains(self, value: Any) -> bool:
        """Return whether ``value`` is an element of ``W``."""

    @abstractmethod
    def gt(self, left: Any, right: Any) -> bool:
        """Return whether ``left ≻ right``."""

    def check_member(self, value: Any) -> None:
        """Raise :class:`NotInDomainError` unless ``value`` is in ``W``."""
        if not self.contains(value):
            raise NotInDomainError(f"{value!r} is not an element of {self.describe()}")

    def ge(self, left: Any, right: Any) -> bool:
        """Return whether ``left ⪰ right``, i.e. ``left ≻ right`` or equal.

        The paper's footnote 4 defines exactly this derived relation; it is
        what the soundness proof tracks between strict decreases.
        """
        return left == right or self.gt(left, right)

    def is_well_founded(self) -> bool:
        """Whether ``(W, ≻)`` has no infinite descending chain.

        Infinite orders in this library are well-founded by construction and
        return ``True``.  :class:`repro.wf.finite.FiniteOrder` performs a
        genuine cycle check instead.
        """
        return True

    def describe(self) -> str:
        """A short human-readable description of the order."""
        return type(self).__name__

    def max_of(self, values: Iterable[Any]) -> Any:
        """Return a maximal element among ``values`` (w.r.t. ``⪰``).

        Raises ``ValueError`` on an empty iterable and
        :class:`NotInDomainError` if any value is outside ``W``.  For partial
        orders the result is *a* maximal element (no other given value is
        strictly above it), found by a linear scan.
        """
        best = _MISSING
        for value in values:
            self.check_member(value)
            if best is _MISSING or self.gt(value, best):
                best = value
        if best is _MISSING:
            raise ValueError("max_of() of an empty iterable")
        return best

    def min_of(self, values: Iterable[Any]) -> Any:
        """Return a minimal element among ``values`` (dual of :meth:`max_of`)."""
        best = _MISSING
        for value in values:
            self.check_member(value)
            if best is _MISSING or self.gt(best, value):
                best = value
        if best is _MISSING:
            raise ValueError("min_of() of an empty iterable")
        return best

    def is_descending_chain(self, chain: Sequence[Any]) -> bool:
        """Whether ``chain`` is strictly descending: ``chain[i] ≻ chain[i+1]``.

        Useful in tests and in the soundness witness extractor, which must
        exhibit the descending chain a hypothetical fair computation would
        produce.
        """
        for value in chain:
            self.check_member(value)
        return all(self.gt(a, b) for a, b in zip(chain, chain[1:]))


class _Missing:
    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "<missing>"


_MISSING = _Missing()
