"""Deciding fair response for finite-state systems.

``G(trigger → F response)`` holds under strong fairness iff no *fair*
infinite computation keeps an obligation pending forever.  On the finite
obligation product that is: no reachable fair cycle lies entirely inside
the pending states — decided by the same Streett refinement as fair
termination, restricted to the pending region.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.fairness.checker import FairCycle, find_fair_cycle
from repro.response.product import ObligationSystem, pending_indices
from repro.response.property import ResponseProperty
from repro.ts.explore import ReachableGraph, explore
from repro.ts.system import TransitionSystem


@dataclass(frozen=True)
class FairResponseResult:
    """Outcome of the fair-response decision.

    ``holds`` — over the explored region; ``decisive`` — whether that is a
    theorem (complete exploration or a genuine counterexample);
    ``witness`` — a fair lasso whose cycle is all-pending (the starved
    obligation), when the property fails.
    """

    holds: bool
    decisive: bool
    witness: Optional[FairCycle]
    pending_states: int
    product_graph: ReachableGraph

    def __str__(self) -> str:
        verdict = "holds under strong fairness" if self.holds else "FAILS"
        scope = "" if self.decisive else " (explored region only)"
        return (
            f"fair response {verdict}{scope} "
            f"[{len(self.product_graph)} product states, "
            f"{self.pending_states} pending]"
        )


def check_fair_response(
    system: TransitionSystem,
    prop: ResponseProperty,
    max_states: Optional[int] = None,
    max_depth: Optional[int] = None,
    product_graph: Optional[ReachableGraph] = None,
) -> FairResponseResult:
    """Decide ``G(trigger → F response)`` under strong fairness.

    Pass a pre-explored ``product_graph`` (of the :class:`ObligationSystem`)
    to amortise exploration across several properties.
    """
    if product_graph is None:
        product = ObligationSystem(system, prop)
        product_graph = explore(product, max_states=max_states, max_depth=max_depth)
    pending = pending_indices(product_graph)
    witness = find_fair_cycle(product_graph, restrict_to=pending)
    if witness is not None:
        # Sanity: the cycle really stays pending.
        for state in witness.lasso.cycle_states():
            _base, is_pending = state
            if not is_pending:
                raise AssertionError(
                    "internal error: response witness cycle leaves pending"
                )
        return FairResponseResult(
            holds=False,
            decisive=True,
            witness=witness,
            pending_states=len(pending),
            product_graph=product_graph,
        )
    return FairResponseResult(
        holds=True,
        decisive=product_graph.complete,
        witness=None,
        pending_states=len(pending),
        product_graph=product_graph,
    )
