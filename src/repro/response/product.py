"""The obligation product: base states paired with a pending bit.

The history-variable idea in miniature: one boolean of history ("is an
obligation open?") reduces fair response to reasoning about infinite
*pending* computations — a benign transformation in the paper's sense
(deterministic, no new nondeterminism, transitions project one-to-one).
"""

from __future__ import annotations

from typing import Iterable, List, Tuple

from repro.response.property import ResponseProperty
from repro.ts.explore import ReachableGraph
from repro.ts.system import CommandLabel, State, TransitionSystem

#: A product state: (base state, obligation pending?).
ObligationState = Tuple[State, bool]


class ObligationSystem(TransitionSystem):
    """The base system × the obligation bit of a response property."""

    def __init__(self, base: TransitionSystem, prop: ResponseProperty) -> None:
        self._base = base
        self._property = prop

    @property
    def base(self) -> TransitionSystem:
        """The unannotated system."""
        return self._base

    @property
    def response_property(self) -> ResponseProperty:
        """The property whose obligation is tracked."""
        return self._property

    def commands(self) -> Tuple[CommandLabel, ...]:
        return self._base.commands()

    def initial_states(self) -> Iterable[State]:
        for state in self._base.initial_states():
            yield (state, self._property.initial_pending(state))

    def enabled(self, state: State) -> frozenset:
        base_state, _pending = state
        return self._base.enabled(base_state)

    def post(self, state: State) -> Iterable[Tuple[CommandLabel, State]]:
        base_state, pending = state
        for command, target in self._base.post(base_state):
            yield command, (target, self._property.step_pending(pending, target))


def pending_indices(graph: ReachableGraph) -> List[int]:
    """Indices of the product graph's pending states."""
    result = []
    for index in range(len(graph)):
        _base_state, pending = graph.state_of(index)
        if pending:
            result.append(index)
    return result
