"""Response properties: ``G(trigger → F response)``.

§2: "Using a fragment of fixed-point calculus, Manna and Pnueli formulated
elegant proof rules ... For the problem of fair response (which generalizes
fair termination), they exhibited a simple proof rule, which is recursively
applied to transformed programs."  [MP91]

Fair termination is the instance with ``trigger = true`` and ``response =
terminated``: every computation eventually reaches a state with nothing
enabled — unless it is unfair.  The general property asks that under the
fairness assumption, every trigger state is eventually followed by a
response state.  The stack-assertion method carries over without recursive
program transformations: measures live on the *pending* states (obligation
raised, not yet discharged), and the verification conditions are required
on pending-to-pending transitions only.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.ts.system import State

StatePredicate = Callable[[State], bool]


@dataclass(frozen=True)
class ResponseProperty:
    """``G(trigger → F response)`` over program states."""

    name: str
    trigger: StatePredicate
    response: StatePredicate

    def initial_pending(self, state: State) -> bool:
        """Whether an obligation is already open at an initial state."""
        return self.trigger(state) and not self.response(state)

    def step_pending(self, pending: bool, target: State) -> bool:
        """Obligation after moving to ``target``.

        A response state discharges everything; otherwise a standing
        obligation persists and a trigger state (re)raises one.
        """
        if self.response(target):
            return False
        return pending or self.trigger(target)

    def __str__(self) -> str:
        return f"G({self.name}: trigger → F response)"


def termination_as_response(system) -> ResponseProperty:
    """Fair termination as the degenerate response property.

    Trigger everywhere, respond at terminal states: "eventually a terminal
    state is reached" — pending exactly while the program still runs.
    """
    return ResponseProperty(
        name="termination",
        trigger=lambda state: True,
        response=lambda state: not system.enabled(state),
    )
