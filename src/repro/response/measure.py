"""Stack measures for fair response — "progress towards the response".

The stack-assertion method generalizes from fair termination to fair
response exactly as the paper's framework suggests ("the property, for
example, could be that every infinite computation is unfair" — here: every
infinite computation that keeps an obligation pending is unfair).  A
**response measure** assigns stacks to the *pending* product states only;
the verification conditions are required on pending→pending transitions;
discharging transitions are exempt (they are the progress).

Soundness mirrors Theorem 1: a fair computation violating the property has
an all-pending tail, along which the usual liminf argument manufactures an
infinite descent or a starved command.  Completeness for finite-state
systems is constructive: :func:`synthesize_response_measure` runs the
hierarchical decomposition on the pending region.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.completeness.synthesis import (
    NotFairlyTerminatingError,
    RegionInfo,
    process_regions,
)
from repro.fairness.checker import find_fair_cycle
from repro.fairness.generalized import command_requirements
from repro.measures.assignment import StackAssignment
from repro.measures.hypotheses import TERMINATION, Hypothesis
from repro.measures.stack import Stack
from repro.measures.verification import (
    ActiveWitness,
    MeasureCheckResult,
    TransitionViolation,
    find_active_level,
)
from repro.ts.explore import ReachableGraph
from repro.ts.graph import decompose
from repro.wf.naturals import NATURALS


class ResponseViolatedError(ValueError):
    """The pending region hosts a fair cycle: the property fails, so no
    response measure exists."""

    def __init__(self, message: str, witness) -> None:
        super().__init__(message)
        self.witness = witness


def check_response_measure(
    product_graph: ReachableGraph,
    pending: Sequence[int],
    assignment: StackAssignment,
) -> MeasureCheckResult:
    """Verify a response measure over the obligation product.

    (V_A), (V_NonI), (V_NoC) are checked on every transition between
    pending states; transitions that discharge the obligation (or start
    outside it) carry no proof obligation.
    """
    order = assignment.order
    pending_set = set(pending)
    stacks: Dict[int, Stack] = {}
    for index in pending_set:
        stack = assignment(product_graph.state_of(index))
        for hypothesis in stack:
            if hypothesis.value is not None:
                order.check_member(hypothesis.value)
        stacks[index] = stack

    witnesses: List[ActiveWitness] = []
    violations: List[TransitionViolation] = []
    checked = 0
    for transition in product_graph.transitions:
        if transition.source not in pending_set or transition.target not in pending_set:
            continue
        checked += 1
        enabled_union = product_graph.enabled_at(
            transition.source
        ) | product_graph.enabled_at(transition.target)
        data, failures = find_active_level(
            stacks[transition.source],
            stacks[transition.target],
            transition.command,
            enabled_union,
            order,
        )
        plain = product_graph.to_transition(transition)
        if data is None:
            violations.append(
                TransitionViolation(
                    transition=plain,
                    source_stack=stacks[transition.source],
                    target_stack=stacks[transition.target],
                    failures=tuple(failures),
                )
            )
        else:
            witnesses.append(
                ActiveWitness(
                    transition=plain,
                    level=data.level,
                    subject=data.subject,
                    reason=data.reason,
                )
            )
    return MeasureCheckResult(
        witnesses=witnesses,
        violations=violations,
        transitions_checked=checked,
        complete=product_graph.complete,
        order_well_founded=order.is_well_founded(),
    )


@dataclass
class ResponseSynthesis:
    """A synthesised response measure: stacks on the pending states."""

    product_graph: ReachableGraph
    pending: List[int]
    stacks: Dict[int, Stack]
    regions: List[RegionInfo]

    def assignment(self) -> StackAssignment:
        """The measure as a checkable assignment (pending states only)."""
        table = {
            self.product_graph.state_of(index): stack
            for index, stack in self.stacks.items()
        }
        return StackAssignment.from_dict(
            table, NATURALS, description="synthesised response measure"
        )

    def max_stack_height(self) -> int:
        """The tallest stack used."""
        return max((s.height for s in self.stacks.values()), default=0)


def synthesize_response_measure(
    product_graph: ReachableGraph,
    pending: Sequence[int],
) -> ResponseSynthesis:
    """Synthesise a response measure on the pending region.

    ``μ^T`` is the reverse-topological rank over the pending subgraph's
    SCCs (pending→pending transitions across components strictly decrease
    it; discharging transitions need nothing); unfairness hypotheses are
    assigned inside each non-trivial pending SCC exactly as for fair
    termination.  Raises :class:`ResponseViolatedError` (with the fair
    all-pending cycle) when the property fails.
    """
    if not product_graph.complete:
        raise ValueError(
            "response synthesis needs the complete product graph"
        )
    pending = sorted(pending)
    decomposition = decompose(product_graph, restrict_to=pending)
    entries: Dict[int, List[Hypothesis]] = {
        index: [Hypothesis(TERMINATION, decomposition.component_of[index])]
        for index in pending
    }
    requirements = tuple(command_requirements(product_graph.system))
    try:
        regions: List[RegionInfo] = process_regions(
            product_graph,
            decomposition.components,
            requirements,
            entries,
        )
    except NotFairlyTerminatingError:
        witness = find_fair_cycle(product_graph, restrict_to=pending)
        raise ResponseViolatedError(
            "the pending region hosts a fair cycle: the response property "
            "fails under strong fairness, so no response measure exists",
            witness,
        ) from None
    stacks = {index: Stack(parts) for index, parts in entries.items()}
    return ResponseSynthesis(
        product_graph=product_graph,
        pending=list(pending),
        stacks=stacks,
        regions=regions,
    )
