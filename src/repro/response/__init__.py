"""Fair response ``G(P → F Q)`` — the [MP91] generalization (§2)."""

from repro.response.checker import FairResponseResult, check_fair_response
from repro.response.measure import (
    ResponseSynthesis,
    ResponseViolatedError,
    check_response_measure,
    synthesize_response_measure,
)
from repro.response.product import ObligationSystem, pending_indices
from repro.response.property import (
    ResponseProperty,
    StatePredicate,
    termination_as_response,
)

__all__ = [
    "FairResponseResult",
    "check_fair_response",
    "ResponseSynthesis",
    "ResponseViolatedError",
    "check_response_measure",
    "synthesize_response_measure",
    "ObligationSystem",
    "pending_indices",
    "ResponseProperty",
    "StatePredicate",
    "termination_as_response",
]
