"""Schedulers: resolutions of the scheduling nondeterminism.

A scheduler picks, at each step, which enabled command to execute.  The
notion of fairness constrains exactly this choice, so schedulers make the
paper's hypotheses *runnable*:

* :class:`LeastRecentlyExecutedScheduler` is strongly fair by construction
  (a starved command eventually becomes the oldest and is chosen the next
  time it is enabled);
* :class:`RoundRobinScheduler` guarantees bounded waiting for *continuously*
  enabled commands (weak fairness), but a command enabled only
  intermittently can dodge its rotation slot forever — it is **not**
  strongly fair in general;
* :class:`RandomScheduler` is strongly fair with probability 1;
* :class:`AdversarialScheduler` starves a chosen set of commands whenever it
  can — exactly the scheduler that keeps ``P2`` alive forever by always
  choosing ``lb``;
* :class:`ScriptedScheduler` replays a fixed choice sequence (for tests).

Simulation under a fair scheduler must terminate on fairly terminating
programs; under an adversarial one it exhibits the unfair infinite runs the
stack assertions blame.  Both facts are exercised by tests and benches.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from typing import Iterable, Sequence

from repro.ts.system import CommandLabel, State


class Scheduler(ABC):
    """Strategy interface: choose one of the enabled commands."""

    @abstractmethod
    def choose(
        self,
        state: State,
        enabled: Sequence[CommandLabel],
    ) -> CommandLabel:
        """Pick a command among ``enabled`` (non-empty, deterministic order)."""

    def reset(self) -> None:
        """Forget internal state before a new run (default: nothing)."""


class RoundRobinScheduler(Scheduler):
    """Cycle through the command list, executing the next enabled one.

    Maintains a rotating pointer over the full command tuple; at each step
    the first enabled command at-or-after the pointer runs, and the pointer
    advances past it.  A command that *stays* enabled is chosen within one
    rotation (bounded waiting — weak fairness), but a command enabled only
    intermittently can be disabled precisely whenever the pointer reaches
    it and starve forever, so round-robin is **not** strongly fair; use
    :class:`LeastRecentlyExecutedScheduler` where strong fairness is
    required.
    """

    def __init__(self, commands: Sequence[CommandLabel]) -> None:
        if not commands:
            raise ValueError("round-robin needs a non-empty command list")
        self._commands = tuple(commands)
        self._next = 0

    def reset(self) -> None:
        self._next = 0

    def choose(self, state: State, enabled: Sequence[CommandLabel]) -> CommandLabel:
        enabled_set = set(enabled)
        for offset in range(len(self._commands)):
            index = (self._next + offset) % len(self._commands)
            command = self._commands[index]
            if command in enabled_set:
                self._next = (index + 1) % len(self._commands)
                return command
        raise ValueError(f"no enabled command among {list(enabled)}")


class LeastRecentlyExecutedScheduler(Scheduler):
    """Execute the enabled command that has waited longest — strongly fair.

    Tracks, per command, the step at which it last executed (initially its
    position in the command tuple, so ties break by declaration order and a
    fresh scheduler sweeps the commands like round-robin).  Each step runs
    the enabled command with the *oldest* last-execution stamp.

    **Strong fairness, by construction**: suppose command ``c`` is enabled
    infinitely often but executes only finitely often.  After ``c``'s last
    execution, every command that executes infinitely often eventually
    carries a younger stamp than ``c``, and commands that stop executing
    keep fixed stamps — so from some point on, ``c`` is the unique oldest
    among {``c``} ∪ {still-executing commands}.  The next time ``c`` is
    enabled, it is chosen — contradiction.  Hence every command enabled
    infinitely often executes infinitely often.
    """

    def __init__(self, commands: Sequence[CommandLabel]) -> None:
        if not commands:
            raise ValueError(
                "least-recently-executed needs a non-empty command list"
            )
        self._commands = tuple(commands)
        self.reset()

    def reset(self) -> None:
        # Stamps start negative in declaration order: a fresh scheduler
        # prefers earlier-declared commands, like round-robin's first sweep.
        self._last = {
            command: index - len(self._commands)
            for index, command in enumerate(self._commands)
        }
        self._step = 0

    def choose(self, state: State, enabled: Sequence[CommandLabel]) -> CommandLabel:
        known = [c for c in enabled if c in self._last]
        if not known:
            raise ValueError(f"no enabled command among {list(enabled)}")
        command = min(known, key=self._last.__getitem__)
        self._last[command] = self._step
        self._step += 1
        return command


class RandomScheduler(Scheduler):
    """Choose uniformly at random (seeded).  Strongly fair almost surely."""

    def __init__(self, seed: int = 0) -> None:
        self._seed = seed
        self._rng = random.Random(seed)

    def reset(self) -> None:
        self._rng = random.Random(self._seed)

    def choose(self, state: State, enabled: Sequence[CommandLabel]) -> CommandLabel:
        if not enabled:
            raise ValueError("no enabled command")
        return self._rng.choice(list(enabled))


class AdversarialScheduler(Scheduler):
    """Starve ``avoid`` commands whenever an alternative is enabled.

    Ties among non-avoided commands are broken by the given preference
    order, then lexicographically.  This scheduler realises the *unfair*
    computations: on ``P2`` with ``avoid={'la'}`` it loops on ``lb``
    forever.
    """

    def __init__(
        self,
        avoid: Iterable[CommandLabel],
        prefer: Sequence[CommandLabel] = (),
    ) -> None:
        self._avoid = frozenset(avoid)
        self._prefer = tuple(prefer)

    def choose(self, state: State, enabled: Sequence[CommandLabel]) -> CommandLabel:
        if not enabled:
            raise ValueError("no enabled command")
        allowed = [c for c in enabled if c not in self._avoid]
        pool = allowed if allowed else list(enabled)
        for command in self._prefer:
            if command in pool:
                return command
        return min(pool)


class ScriptedScheduler(Scheduler):
    """Replay a fixed sequence of command choices; raises when the script
    runs out or names a disabled command (tests want loud failures)."""

    def __init__(self, script: Sequence[CommandLabel]) -> None:
        self._script = tuple(script)
        self._position = 0

    def reset(self) -> None:
        self._position = 0

    def choose(self, state: State, enabled: Sequence[CommandLabel]) -> CommandLabel:
        if self._position >= len(self._script):
            raise ValueError("scripted scheduler exhausted")
        command = self._script[self._position]
        self._position += 1
        if command not in set(enabled):
            raise ValueError(
                f"script step {self._position}: {command!r} not enabled "
                f"(enabled: {sorted(enabled)})"
            )
        return command
