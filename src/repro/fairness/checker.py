"""Deciding fair termination of finite-state systems.

"A program P fairly terminates if every infinite computation of P is
unfair."  For a finite reachable graph this is decidable: a *fair* infinite
computation exists iff some reachable sub-SCC hosts a **fair cycle** — a
cycle along which every command enabled at a visited state is also executed.
Strong fairness is a Streett condition (one pair per command:
"infinitely often enabled ⇒ infinitely often executed"), and we use the
classic recursive SCC-refinement emptiness check:

1. Decompose the candidate region into SCCs.
2. In an SCC ``S`` with internal transitions, let ``E`` be the commands
   enabled somewhere in ``S`` and ``X`` those executed on transitions inside
   ``S``.  If ``E ⊆ X``, a grand tour of all internal transitions is a fair
   cycle — report it.
3. Otherwise every fair computation confined to ``S`` would have to
   eventually avoid all states enabling a command in ``E − X`` (such a
   command may be enabled only finitely often on a fair run that never
   executes it); remove those states and recurse on the remainder.

The refinement terminates because each recursion strictly shrinks the
region.  On a *complete* graph the verdict is exact; on a bounded graph a
found fair cycle is still a genuine counterexample, while "no fair cycle"
only covers the explored region (the result says which).
"""

from __future__ import annotations

from array import array
from dataclasses import dataclass
from typing import FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.fairness.spec import STRONG_FAIRNESS
from repro.telemetry import core as telemetry
from repro.telemetry import events
from repro.ts.explore import ReachableGraph, explore
from repro.ts.graph import decompose
from repro.ts.lasso import (
    Lasso,
    cycle_through_all,
    find_path_indices,
    lasso_from_indices,
)
from repro.ts.system import TransitionSystem


@dataclass(frozen=True)
class FairCycle:
    """A fair lasso together with the SCC region that hosts its cycle."""

    lasso: Lasso
    region: Tuple[int, ...]
    enabled_on_cycle: FrozenSet[str]
    executed_on_cycle: FrozenSet[str]


@dataclass(frozen=True)
class FairTerminationResult:
    """Outcome of the fair-termination decision.

    ``fairly_terminates`` is the verdict over the explored region;
    ``decisive`` tells whether that verdict is a theorem about the whole
    program (complete exploration, or a counterexample which is always
    genuine).  ``witness`` is the fair lasso when one exists.
    """

    fairly_terminates: bool
    decisive: bool
    witness: Optional[FairCycle]
    states_explored: int
    transitions_explored: int

    def __str__(self) -> str:
        verdict = "fairly terminates" if self.fairly_terminates else "admits a fair infinite computation"
        scope = "" if self.decisive else " (within the explored region only)"
        return f"{verdict}{scope} [{self.states_explored} states]"


def find_fair_cycle(
    graph: ReachableGraph,
    restrict_to: Sequence[int] | None = None,
) -> Optional[FairCycle]:
    """Find a reachable fair cycle, or ``None`` if none exists (in region).

    ``restrict_to`` limits the search to a sub-region; indices are
    deduplicated, and out-of-range ones raise :class:`ValueError`.
    """
    # Frontier states have unexplored successors; a cycle through them could
    # not be trusted, but they only ever *lose* outgoing transitions in our
    # graph (kept transitions all originate from fully expanded states), so
    # they simply cannot appear on any explored cycle — no special-casing.
    if restrict_to is None:
        # The memoized full decomposition (its components are shared with
        # every other full-graph analysis).
        components = decompose(graph).components
    else:
        region = sorted(set(restrict_to))
        n = len(graph)
        if region and (region[0] < 0 or region[-1] >= n):
            bad = next(i for i in region if i < 0 or i >= n)
            raise ValueError(
                f"restrict_to index {bad} out of range for a graph with "
                f"{n} states (valid indices: 0..{n - 1})"
            )
        components = decompose(graph, restrict_to=region).components
    return _refine_components(graph, components)


class RefinementScratch:
    """Recycled allocations of the Streett refinement.

    Holds the generation-stamp array and the Tarjan work arrays
    (:class:`~repro.engine.analysis.TarjanScratch`).  One refinement pass
    already shares the stamp across its levels; the *streaming* decision
    procedure runs a refinement per budget stage over the same growing
    graph, so it threads one scratch through all of them — stages allocate
    nothing, they only extend.  The generation counter persists across
    passes, which is what makes reuse sound: a stale stamp value can never
    equal a fresh generation.
    """

    __slots__ = ("stamp", "generation", "tarjan")

    def __init__(self) -> None:
        from repro.engine.analysis import TarjanScratch

        self.stamp = array("q")
        self.generation = 0
        self.tarjan = TarjanScratch()

    def ensure(self, n: int) -> None:
        """Grow the stamp to cover ``n`` states (never shrinks)."""
        grow = n - len(self.stamp)
        if grow > 0:
            self.stamp.frombytes(bytes(8 * grow))


def _refine_components(
    graph: ReachableGraph,
    components: Sequence[Sequence[int]],
    scratch: Optional[RefinementScratch] = None,
) -> Optional[FairCycle]:
    """The recursive Streett-emptiness refinement, on stamped regions.

    Membership at every refinement level is a *generation stamp* over one
    shared ``array('q')`` — each candidate region bumps the generation and
    stamps its members, so no per-level sets are built and no decomposition
    is re-sliced: SCCs, executed masks and enabled masks are all read
    straight off the graph's CSR arrays through the stamp.  Component
    order (reverse topological), per-component member order (ascending)
    and the survivor stack discipline replicate the set-based
    implementation exactly, so every witness is bit-identical to it.

    ``scratch`` recycles the stamp and the Tarjan work arrays across
    passes (:class:`RefinementScratch`); omitted, a fresh private one is
    used — the verdict and witness are identical either way.
    """
    from repro.engine.analysis import tarjan_scc_csr

    analyses = graph.analyses
    enabled_masks = analyses.enabled_masks
    packed = analyses.packed
    if scratch is None:
        scratch = RefinementScratch()
    scratch.ensure(len(graph))
    stamp = scratch.stamp
    generation = scratch.generation
    pending: List[List[int]] = []

    def scan(batch: Sequence[Sequence[int]]) -> Optional[FairCycle]:
        nonlocal generation
        for component in batch:
            generation += 1
            for i in component:
                stamp[i] = generation
            executed_mask = analyses.executed_mask_stamped(
                component, stamp, generation
            )
            if not executed_mask:
                # No internal transition — a trivial component.
                continue
            enabled_mask = 0
            for i in component:
                enabled_mask |= enabled_masks[i]
            violating_mask = enabled_mask & ~executed_mask
            if not violating_mask:
                cycle = cycle_through_all(graph, component)
                stem = find_path_indices(
                    graph, graph.initial_indices, cycle[0].source
                )
                lasso = lasso_from_indices(graph, stem, cycle)
                return FairCycle(
                    lasso=lasso,
                    region=tuple(component),
                    enabled_on_cycle=analyses.labels_of_mask(enabled_mask),
                    executed_on_cycle=analyses.labels_of_mask(executed_mask),
                )
            # Remove every state enabling a violating command; what remains
            # may still host a fair cycle one level down.  Iterating the
            # (ascending) component keeps survivors ascending, which is
            # what the stamped Tarjan requires of its root order.
            survivors = [
                i
                for i in component
                if not (enabled_masks[i] & violating_mask)
            ]
            if survivors:
                pending.append(survivors)
        return None

    try:
        found = scan(components)
        if found is not None:
            return found
        while pending:
            region = pending.pop()
            generation += 1
            for i in region:
                stamp[i] = generation
            sub = tarjan_scc_csr(
                packed,
                region,
                stamp=stamp,
                stamp_value=generation,
                scratch=scratch.tarjan,
            )
            # The decomposition's contract sorts each component ascending.
            found = scan([sorted(c) for c in sub])
            if found is not None:
                return found
        return None
    finally:
        # Persist the generation so the next pass through this scratch
        # starts above every stamp value it may have left behind.
        scratch.generation = generation


def _validated_counterexample(
    graph: ReachableGraph, witness: FairCycle
) -> FairTerminationResult:
    """Package a found fair cycle, sanity-checking its fairness first.

    Defence in depth — the spec module re-derives fairness from the lasso
    itself; a found counterexample is genuine even on a bounded graph.
    The enabled sets come from the graph's recorded masks (exact for every
    explored state, frontier included — guards already ran there), so
    validation reads columns instead of re-running guards; a state the
    graph somehow does not know falls back to the system.
    """

    def enabled(state):
        try:
            return graph.enabled_at(graph.index_of(state))
        except KeyError:
            return graph.system.enabled(state)

    violations = STRONG_FAIRNESS.violations(
        witness.lasso, enabled, graph.system.commands()
    )
    if violations:
        raise AssertionError(
            f"internal error: claimed fair cycle is unfair: {violations[0]}"
        )
    return FairTerminationResult(
        fairly_terminates=False,
        decisive=True,
        witness=witness,
        states_explored=len(graph),
        transitions_explored=len(graph.transitions),
    )


def _emit_verdict(
    result: FairTerminationResult, streaming: bool, stages: Optional[int] = None
) -> None:
    """One ``decide.verdict`` event per decision (a phase boundary)."""
    events.emit(
        events.DECIDE_VERDICT,
        fairly_terminates=result.fairly_terminates,
        decisive=result.decisive,
        streaming=streaming,
        states=result.states_explored,
        transitions=result.transitions_explored,
        stages=stages,
    )


def check_fair_termination(graph: ReachableGraph) -> FairTerminationResult:
    """Decide fair termination over (the explored region of) ``graph``."""
    witness = find_fair_cycle(graph)
    if witness is not None:
        result = _validated_counterexample(graph, witness)
        _emit_verdict(result, streaming=False)
        return result
    result = FairTerminationResult(
        fairly_terminates=True,
        decisive=graph.complete,
        witness=None,
        states_explored=len(graph),
        transitions_explored=len(graph.transitions),
    )
    _emit_verdict(result, streaming=False)
    return result


#: First-stage state budget of the streaming decision procedure.
STREAM_FIRST_BUDGET = 1024

#: Geometric budget growth between stages: re-exploration overhead is a
#: convergent series — at factor 4, at most a third of the final stage.
STREAM_GROWTH = 4


def check_fair_termination_streaming(
    system: TransitionSystem,
    max_states: Optional[int] = None,
    max_depth: Optional[int] = None,
    n_jobs: Optional[int] = None,
    first_budget: int = STREAM_FIRST_BUDGET,
    growth: int = STREAM_GROWTH,
) -> FairTerminationResult:
    """Decide fair termination with early exit: hunt for a fair lasso
    *during* bounded exploration instead of after materializing all of it.

    Exploration proceeds in stages of geometrically growing state budgets
    (``first_budget``, then ``× growth``, capped by ``max_states``).
    After each stage the fair-cycle refinement runs — but only over the
    SCCs that closed freshly in that stage, i.e. the components containing
    at least one state expanded since the previous stage.  That filter is
    sound because BFS discovery order is a stable prefix across growing
    budgets and expanded states never lose or gain outgoing transitions:
    a component whose states were all expanded in an earlier stage is the
    *same* component it was then (same members, same internal
    transitions), and it was already refined.  A fair cycle found on a
    bounded graph is a genuine counterexample, so a violating family
    yields its verdict after exploring a small prefix of the state space.

    Run to completion — a non-violating system, or one whose bounded
    exploration finds no cycle — the result equals
    ``check_fair_termination(explore(system, max_states, max_depth,
    n_jobs=...))`` field for field.  On violating systems the boolean
    verdict matches and the (independently validated) witness may differ:
    the streaming hunt reports the first fair cycle the budget schedule
    reaches, not the one full refinement would pick.  For any fixed
    bounds the result is bit-identical across job counts.
    """
    if first_budget < 1:
        raise ValueError(f"first_budget must be >= 1, got {first_budget}")
    if growth < 2:
        raise ValueError(f"growth must be >= 2, got {growth}")
    with telemetry.span(
        "decide", streaming=True, jobs=n_jobs, max_states=max_states
    ) as sp:
        result, stages = _streaming_decide(
            system, max_states, max_depth, n_jobs, first_budget, growth
        )
        if telemetry.enabled():
            telemetry.count("stream.decides")
            telemetry.count("stream.stages", stages)
            telemetry.gauge("stream.states_at_verdict", result.states_explored)
        sp.set("stages", stages)
        sp.set("fairly_terminates", result.fairly_terminates)
    _emit_verdict(result, streaming=True, stages=stages)
    return result


def _streaming_decide(
    system: TransitionSystem,
    max_states: Optional[int],
    max_depth: Optional[int],
    n_jobs: Optional[int],
    first_budget: int,
    growth: int,
) -> Tuple[FairTerminationResult, int]:
    budget = first_budget
    previous_states = 0
    previous_frontier: frozenset = frozenset()
    stages = 0
    # One scratch arena for every stage's refinement: the stamp and the
    # Tarjan work arrays grow with the graph and are never reallocated.
    scratch = RefinementScratch()
    while True:
        stages += 1
        bound = budget if max_states is None else min(budget, max_states)
        graph = explore(
            system, max_states=bound, max_depth=max_depth, n_jobs=n_jobs
        )
        frontier = graph.frontier
        # A state is *fresh* if this stage expanded it: newly discovered,
        # or frontier last stage.  Only components containing fresh states
        # can differ from a component already refined in an earlier stage
        # (every non-trivial SCC contains an expanded state, and expanded
        # states keep their transitions verbatim across stages).
        fresh = bytearray(len(graph))
        for i in range(len(graph)):
            if i in frontier:
                continue
            if i >= previous_states or i in previous_frontier:
                fresh[i] = 1
        candidates = [
            component
            for component in decompose(graph).components
            if any(fresh[i] for i in component)
        ]
        if telemetry.enabled():
            telemetry.count("stream.sccs_checked", len(candidates))
        witness = _refine_components(graph, candidates, scratch)
        # One stage-transition event per budget stage — the streaming
        # decide's natural unit of progress reporting.
        events.emit(
            events.STREAM_STAGE,
            stage=stages,
            budget=bound,
            states=len(graph),
            candidates=len(candidates),
            witness=witness is not None,
        )
        if witness is not None:
            return _validated_counterexample(graph, witness), stages
        budget_bound = len(graph) >= bound
        if graph.complete or not budget_bound or (
            max_states is not None and bound >= max_states
        ):
            # Final stage: the graph equals what a materialized
            # ``explore(system, max_states, max_depth)`` would return —
            # either complete, or cut by the same depth/state bounds.
            return (
                FairTerminationResult(
                    fairly_terminates=True,
                    decisive=graph.complete,
                    witness=None,
                    states_explored=len(graph),
                    transitions_explored=len(graph.transitions),
                ),
                stages,
            )
        previous_states = len(graph)
        previous_frontier = frontier
        budget *= growth


def find_weakly_fair_cycle(graph: ReachableGraph) -> Optional[FairCycle]:
    """A reachable cycle fair under *weak* fairness (justice), or ``None``.

    A lasso is weakly fair iff every command enabled at **every** cycle
    state is executed on the cycle.  Per SCC ``S``: the grand tour visits
    all of ``S``, so its continuously-enabled set is exactly the commands
    enabled everywhere in ``S`` — the tour is weakly fair iff those are all
    executed inside ``S``.  Conversely a command enabled everywhere in
    ``S`` but executed on no internal transition starves *every* cycle of
    ``S`` (it is continuously enabled along any of them), so no refinement
    is needed: the per-SCC test is complete.
    """
    analyses = graph.analyses
    enabled_masks = analyses.enabled_masks
    decomposition = decompose(graph)
    for component in decomposition.components:
        component_set = set(component)
        executed_mask = analyses.executed_mask_within(component_set)
        if not executed_mask:
            continue
        everywhere_mask = enabled_masks[component[0]]
        for i in component:
            everywhere_mask &= enabled_masks[i]
        if not (everywhere_mask & ~executed_mask):
            cycle = cycle_through_all(graph, component)
            stem = find_path_indices(graph, graph.initial_indices, cycle[0].source)
            return FairCycle(
                lasso=lasso_from_indices(graph, stem, cycle),
                region=tuple(component),
                enabled_on_cycle=graph.commands_enabled_within(component_set),
                executed_on_cycle=analyses.labels_of_mask(executed_mask),
            )
    return None


def find_impartial_cycle(graph: ReachableGraph) -> Optional[FairCycle]:
    """A reachable cycle that is *impartial* (executes every command
    infinitely often), or ``None``.

    Exists iff some SCC's internal transitions cover the whole command set;
    the grand tour then realises it.  Impartiality is the strongest notion
    of the [LPS81] trio, so impartial termination is the weakest
    termination property: ``weak-fair term ⟹ strong-fair term ⟹
    impartial term`` (tested, not just asserted here).
    """
    all_commands = frozenset(graph.system.commands())
    analyses = graph.analyses
    decomposition = decompose(graph)
    for component in decomposition.components:
        component_set = set(component)
        executed_mask = analyses.executed_mask_within(component_set)
        if not executed_mask:
            continue
        executed = analyses.labels_of_mask(executed_mask)
        if executed == all_commands:
            cycle = cycle_through_all(graph, component)
            stem = find_path_indices(graph, graph.initial_indices, cycle[0].source)
            return FairCycle(
                lasso=lasso_from_indices(graph, stem, cycle),
                region=tuple(component),
                enabled_on_cycle=graph.commands_enabled_within(component_set),
                executed_on_cycle=executed,
            )
    return None


def enumerate_unfair_commands(
    graph: ReachableGraph,
    component: Sequence[int],
) -> FrozenSet[str]:
    """Commands enabled somewhere in ``component`` but never executed inside.

    Non-empty for every SCC of a fairly terminating program — these are the
    candidate *unfairness hypotheses* (helpful directions) of the region,
    and the synthesiser picks its level-1 hypothesis among them.
    """
    analyses = graph.analyses
    members = set(component)
    executed_mask = analyses.executed_mask_within(members)
    enabled_mask = analyses.enabled_mask_within(members)
    return analyses.labels_of_mask(enabled_mask & ~executed_mask)
