"""Deciding fair termination of finite-state systems.

"A program P fairly terminates if every infinite computation of P is
unfair."  For a finite reachable graph this is decidable: a *fair* infinite
computation exists iff some reachable sub-SCC hosts a **fair cycle** — a
cycle along which every command enabled at a visited state is also executed.
Strong fairness is a Streett condition (one pair per command:
"infinitely often enabled ⇒ infinitely often executed"), and we use the
classic recursive SCC-refinement emptiness check:

1. Decompose the candidate region into SCCs.
2. In an SCC ``S`` with internal transitions, let ``E`` be the commands
   enabled somewhere in ``S`` and ``X`` those executed on transitions inside
   ``S``.  If ``E ⊆ X``, a grand tour of all internal transitions is a fair
   cycle — report it.
3. Otherwise every fair computation confined to ``S`` would have to
   eventually avoid all states enabling a command in ``E − X`` (such a
   command may be enabled only finitely often on a fair run that never
   executes it); remove those states and recurse on the remainder.

The refinement terminates because each recursion strictly shrinks the
region.  On a *complete* graph the verdict is exact; on a bounded graph a
found fair cycle is still a genuine counterexample, while "no fair cycle"
only covers the explored region (the result says which).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.fairness.spec import STRONG_FAIRNESS
from repro.ts.explore import ReachableGraph
from repro.ts.graph import decompose
from repro.ts.lasso import (
    Lasso,
    cycle_through_all,
    find_path_indices,
    lasso_from_indices,
)


@dataclass(frozen=True)
class FairCycle:
    """A fair lasso together with the SCC region that hosts its cycle."""

    lasso: Lasso
    region: Tuple[int, ...]
    enabled_on_cycle: FrozenSet[str]
    executed_on_cycle: FrozenSet[str]


@dataclass(frozen=True)
class FairTerminationResult:
    """Outcome of the fair-termination decision.

    ``fairly_terminates`` is the verdict over the explored region;
    ``decisive`` tells whether that verdict is a theorem about the whole
    program (complete exploration, or a counterexample which is always
    genuine).  ``witness`` is the fair lasso when one exists.
    """

    fairly_terminates: bool
    decisive: bool
    witness: Optional[FairCycle]
    states_explored: int
    transitions_explored: int

    def __str__(self) -> str:
        verdict = "fairly terminates" if self.fairly_terminates else "admits a fair infinite computation"
        scope = "" if self.decisive else " (within the explored region only)"
        return f"{verdict}{scope} [{self.states_explored} states]"


def find_fair_cycle(
    graph: ReachableGraph,
    restrict_to: Sequence[int] | None = None,
) -> Optional[FairCycle]:
    """Find a reachable fair cycle, or ``None`` if none exists (in region)."""
    region: Set[int] = (
        set(range(len(graph))) if restrict_to is None else set(restrict_to)
    )
    # Frontier states have unexplored successors; a cycle through them could
    # not be trusted, but they only ever *lose* outgoing transitions in our
    # graph (kept transitions all originate from fully expanded states), so
    # they simply cannot appear on any explored cycle — no special-casing.
    analyses = graph.analyses
    enabled_masks = analyses.enabled_masks
    whole = restrict_to is None
    pending: List[Set[int]] = [region]
    while pending:
        current = pending.pop()
        # The first iteration over the whole graph reuses the memoized
        # decomposition; refinement steps walk only their region's edges.
        decomposition = decompose(
            graph, restrict_to=None if whole else current
        )
        whole = False
        for component in decomposition.components:
            component_set = set(component)
            executed_mask = analyses.executed_mask_within(component_set)
            if not executed_mask:
                # No internal transition — a trivial component.
                continue
            enabled_mask = analyses.enabled_mask_within(component_set)
            violating_mask = enabled_mask & ~executed_mask
            if not violating_mask:
                cycle = cycle_through_all(graph, component)
                stem = find_path_indices(
                    graph, graph.initial_indices, cycle[0].source
                )
                lasso = lasso_from_indices(graph, stem, cycle)
                return FairCycle(
                    lasso=lasso,
                    region=tuple(component),
                    enabled_on_cycle=analyses.labels_of_mask(enabled_mask),
                    executed_on_cycle=analyses.labels_of_mask(executed_mask),
                )
            # Remove every state enabling a violating command; what remains
            # may still host a fair cycle one level down.
            survivors = {
                i
                for i in component_set
                if not (enabled_masks[i] & violating_mask)
            }
            if survivors:
                pending.append(survivors)
    return None


def check_fair_termination(graph: ReachableGraph) -> FairTerminationResult:
    """Decide fair termination over (the explored region of) ``graph``."""
    witness = find_fair_cycle(graph)
    if witness is not None:
        # Sanity: the witness really is fair (defence in depth — the spec
        # module re-derives fairness from the lasso itself).
        violations = STRONG_FAIRNESS.violations(
            witness.lasso, graph.system.enabled, graph.system.commands()
        )
        if violations:
            raise AssertionError(
                f"internal error: claimed fair cycle is unfair: {violations[0]}"
            )
        return FairTerminationResult(
            fairly_terminates=False,
            decisive=True,
            witness=witness,
            states_explored=len(graph),
            transitions_explored=len(graph.transitions),
        )
    return FairTerminationResult(
        fairly_terminates=True,
        decisive=graph.complete,
        witness=None,
        states_explored=len(graph),
        transitions_explored=len(graph.transitions),
    )


def find_weakly_fair_cycle(graph: ReachableGraph) -> Optional[FairCycle]:
    """A reachable cycle fair under *weak* fairness (justice), or ``None``.

    A lasso is weakly fair iff every command enabled at **every** cycle
    state is executed on the cycle.  Per SCC ``S``: the grand tour visits
    all of ``S``, so its continuously-enabled set is exactly the commands
    enabled everywhere in ``S`` — the tour is weakly fair iff those are all
    executed inside ``S``.  Conversely a command enabled everywhere in
    ``S`` but executed on no internal transition starves *every* cycle of
    ``S`` (it is continuously enabled along any of them), so no refinement
    is needed: the per-SCC test is complete.
    """
    analyses = graph.analyses
    enabled_masks = analyses.enabled_masks
    decomposition = decompose(graph)
    for component in decomposition.components:
        component_set = set(component)
        executed_mask = analyses.executed_mask_within(component_set)
        if not executed_mask:
            continue
        everywhere_mask = enabled_masks[component[0]]
        for i in component:
            everywhere_mask &= enabled_masks[i]
        if not (everywhere_mask & ~executed_mask):
            cycle = cycle_through_all(graph, component)
            stem = find_path_indices(graph, graph.initial_indices, cycle[0].source)
            return FairCycle(
                lasso=lasso_from_indices(graph, stem, cycle),
                region=tuple(component),
                enabled_on_cycle=graph.commands_enabled_within(component_set),
                executed_on_cycle=analyses.labels_of_mask(executed_mask),
            )
    return None


def find_impartial_cycle(graph: ReachableGraph) -> Optional[FairCycle]:
    """A reachable cycle that is *impartial* (executes every command
    infinitely often), or ``None``.

    Exists iff some SCC's internal transitions cover the whole command set;
    the grand tour then realises it.  Impartiality is the strongest notion
    of the [LPS81] trio, so impartial termination is the weakest
    termination property: ``weak-fair term ⟹ strong-fair term ⟹
    impartial term`` (tested, not just asserted here).
    """
    all_commands = frozenset(graph.system.commands())
    analyses = graph.analyses
    decomposition = decompose(graph)
    for component in decomposition.components:
        component_set = set(component)
        executed_mask = analyses.executed_mask_within(component_set)
        if not executed_mask:
            continue
        executed = analyses.labels_of_mask(executed_mask)
        if executed == all_commands:
            cycle = cycle_through_all(graph, component)
            stem = find_path_indices(graph, graph.initial_indices, cycle[0].source)
            return FairCycle(
                lasso=lasso_from_indices(graph, stem, cycle),
                region=tuple(component),
                enabled_on_cycle=graph.commands_enabled_within(component_set),
                executed_on_cycle=executed,
            )
    return None


def enumerate_unfair_commands(
    graph: ReachableGraph,
    component: Sequence[int],
) -> FrozenSet[str]:
    """Commands enabled somewhere in ``component`` but never executed inside.

    Non-empty for every SCC of a fairly terminating program — these are the
    candidate *unfairness hypotheses* (helpful directions) of the region,
    and the synthesiser picks its level-1 hypothesis among them.
    """
    analyses = graph.analyses
    members = set(component)
    executed_mask = analyses.executed_mask_within(members)
    enabled_mask = analyses.enabled_mask_within(members)
    return analyses.labels_of_mask(enabled_mask & ~executed_mask)
