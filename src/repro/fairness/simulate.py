"""Running programs under a scheduler.

The simulator resolves *both* levels of nondeterminism: the scheduler picks
the command, and an optional seeded RNG picks among a nondeterministic
command's successors (``choose`` statements).  The result is an
:class:`~repro.ts.trace.ExecutionTrace` that tests and benches audit for
termination and bounded-fairness facts.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional

from repro.fairness.scheduler import Scheduler
from repro.ts.system import State, TransitionSystem
from repro.ts.trace import ExecutionTrace, TraceRecorder


@dataclass(frozen=True)
class SimulationResult:
    """A finished simulation: the trace plus convenience flags."""

    trace: ExecutionTrace
    terminated: bool
    steps: int

    def executed(self, command: str) -> int:
        """How many times ``command`` ran."""
        return self.trace.execution_counts().get(command, 0)


def simulate(
    system: TransitionSystem,
    scheduler: Scheduler,
    max_steps: int = 10_000,
    initial: Optional[State] = None,
    successor_seed: int = 0,
) -> SimulationResult:
    """Run ``system`` under ``scheduler`` for at most ``max_steps`` steps.

    ``initial`` defaults to the first declared initial state.  When the
    scheduled command has several successors, one is drawn with the seeded
    RNG — runs are reproducible given (scheduler, seeds).
    """
    if initial is None:
        try:
            initial = next(iter(system.initial_states()))
        except StopIteration:
            raise ValueError("system has no initial states") from None
    scheduler.reset()
    rng = random.Random(successor_seed)
    recorder = TraceRecorder()
    state = initial
    for _ in range(max_steps):
        enabled = system.enabled(state)
        if not enabled:
            trace = recorder.finish(state, enabled, terminated=True)
            return SimulationResult(trace=trace, terminated=True, steps=len(trace))
        command = scheduler.choose(state, sorted(enabled))
        successors = [t for c, t in system.post(state) if c == command]
        if not successors:
            raise RuntimeError(
                f"scheduler chose {command!r}, which is enabled at {state!r} "
                "but has no successor — inconsistent system"
            )
        recorder.record(state, enabled, command)
        state = successors[0] if len(successors) == 1 else rng.choice(successors)
    enabled = system.enabled(state)
    trace = recorder.finish(state, enabled, terminated=not enabled)
    return SimulationResult(
        trace=trace, terminated=not enabled, steps=len(trace)
    )
