"""Generalized fairness ([FK84]) — fairness over arbitrary requirements.

§2: "The approach of helpful directions has been successful at explaining
many fairness concepts, such as those involving general state predicates
[FK84]", and the paper notes its own proofs "could have been formulated for
Rabin pairs conditions (thus yielding a method for general fairness
[FK84])".  This module supplies that generality:

A :class:`FairnessRequirement` names a constraint with

* ``enabled_at(state)`` — when the requirement *demands service*, and
* ``fulfilled_by(source, command, target)`` — which transitions service it.

A computation is *fair* w.r.t. a requirement set iff every requirement
enabled infinitely often is fulfilled infinitely often.  Strong command
fairness is the instance with one requirement per command
(:func:`command_requirements`); group fairness, predicate fairness and
similar notions are other instances.

:func:`find_generally_fair_cycle` decides, for a finite reachable graph,
whether a fair infinite computation exists — the same Streett-style SCC
refinement as the per-command checker, with requirement-based pairs.  The
stack-assertion machinery generalizes alongside: hypotheses may name
requirements instead of commands (see
:func:`repro.measures.verification.check_measure` with ``requirements=``),
and the synthesiser accepts a requirement set too.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Set, Tuple

from repro.ts.explore import IndexedTransition, ReachableGraph
from repro.ts.graph import decompose, internal_transitions
from repro.ts.lasso import (
    Lasso,
    cycle_through_all,
    find_path_indices,
    lasso_from_indices,
)
from repro.ts.system import CommandLabel, State, TransitionSystem


@dataclass(frozen=True)
class FairnessRequirement:
    """One fairness constraint: when it demands service and what serves it.

    ``kind`` is a performance tag, not a semantic one: requirements built by
    :func:`command_requirements` carry ``kind="command"``, promising that
    ``enabled_at`` is exactly "the named command is enabled" and
    ``fulfilled_by`` exactly "the named command is executed" — which lets
    index-native consumers answer both from the explored graph's cached
    enabled sets instead of calling back into the predicates per state.
    """

    name: str
    enabled_at: Callable[[State], bool]
    fulfilled_by: Callable[[State, CommandLabel, State], bool]
    kind: str = "general"

    def __str__(self) -> str:
        return f"requirement {self.name!r}"


def command_requirements(
    system: TransitionSystem,
) -> Tuple[FairnessRequirement, ...]:
    """Strong command fairness as a requirement set: one per command."""
    requirements = []
    for command in system.commands():
        requirements.append(
            FairnessRequirement(
                name=command,
                enabled_at=lambda state, _c=command: _c in system.enabled(state),
                fulfilled_by=lambda s, c, t, _c=command: c == _c,
                kind="command",
            )
        )
    return tuple(requirements)


def group_requirement(
    system: TransitionSystem,
    name: str,
    members: Sequence[CommandLabel],
) -> FairnessRequirement:
    """Group fairness: the *group* must act when any member is enabled.

    Coarser than per-command fairness — the scheduler may starve individual
    members forever as long as some member runs — so group-fair computations
    form a superset of command-fair ones, and group-fair *termination* is
    the stronger property.
    """
    member_set = frozenset(members)
    unknown = member_set - set(system.commands())
    if unknown:
        raise ValueError(f"group {name!r} mentions unknown commands {sorted(unknown)}")
    return FairnessRequirement(
        name=name,
        enabled_at=lambda state: bool(member_set & system.enabled(state)),
        fulfilled_by=lambda s, c, t: c in member_set,
    )


def predicate_requirement(
    name: str,
    demands: Callable[[State], bool],
    serves: Callable[[State, CommandLabel, State], bool],
) -> FairnessRequirement:
    """General state-predicate fairness ([FK84]): free-form demand/serve."""
    return FairnessRequirement(name=name, enabled_at=demands, fulfilled_by=serves)


@dataclass(frozen=True)
class RequirementViolation:
    """A requirement the lasso treats unfairly: demanded at ``enabled_at``
    cycle states, serviced by no cycle transition."""

    requirement: FairnessRequirement
    enabled_at: Tuple[State, ...]


def requirement_violations(
    lasso: Lasso,
    requirements: Sequence[FairnessRequirement],
) -> Tuple[RequirementViolation, ...]:
    """All requirements the lasso's infinite computation starves."""
    cycle_states = lasso.cycle_states()
    cycle_transitions = list(lasso.cycle.transitions())
    result: List[RequirementViolation] = []
    for requirement in requirements:
        fulfilled = any(
            requirement.fulfilled_by(t.source, t.command, t.target)
            for t in cycle_transitions
        )
        if fulfilled:
            continue
        demanded = tuple(
            state for state in cycle_states if requirement.enabled_at(state)
        )
        if demanded:
            result.append(
                RequirementViolation(requirement=requirement, enabled_at=demanded)
            )
    return tuple(result)


def is_generally_fair(
    lasso: Lasso,
    requirements: Sequence[FairnessRequirement],
) -> bool:
    """Whether the lasso satisfies every requirement."""
    return not requirement_violations(lasso, requirements)


@dataclass(frozen=True)
class GeneralFairCycle:
    """A fair lasso (w.r.t. a requirement set) and the hosting region."""

    lasso: Lasso
    region: Tuple[int, ...]


def find_generally_fair_cycle(
    graph: ReachableGraph,
    requirements: Sequence[FairnessRequirement],
) -> Optional[GeneralFairCycle]:
    """A reachable cycle fair w.r.t. ``requirements``, or ``None``.

    Streett-emptiness refinement with one pair per requirement: an SCC
    hosts a fair cycle iff every requirement demanded somewhere inside is
    fulfilled by some internal transition; otherwise states demanding a
    starved requirement are removed and the remainder re-examined.
    """
    pending: List[Set[int]] = [set(range(len(graph)))]
    while pending:
        current = pending.pop()
        decomposition = decompose(graph, restrict_to=current)
        for component in decomposition.components:
            internal = internal_transitions(graph, component)
            if not internal:
                continue
            starved = _starved_requirements(graph, component, internal, requirements)
            if not starved:
                cycle = cycle_through_all(graph, component)
                stem = find_path_indices(
                    graph, graph.initial_indices, cycle[0].source
                )
                lasso = lasso_from_indices(graph, stem, cycle)
                if requirement_violations(lasso, requirements):
                    raise AssertionError(
                        "internal error: grand tour unexpectedly unfair"
                    )
                return GeneralFairCycle(lasso=lasso, region=tuple(component))
            survivors = {
                index
                for index in component
                if not any(
                    r.enabled_at(graph.state_of(index)) for r in starved
                )
            }
            if survivors:
                pending.append(survivors)
    return None


def _starved_requirements(
    graph: ReachableGraph,
    component: Sequence[int],
    internal: Sequence[IndexedTransition],
    requirements: Sequence[FairnessRequirement],
) -> List[FairnessRequirement]:
    starved = []
    for requirement in requirements:
        demanded = any(
            requirement.enabled_at(graph.state_of(index)) for index in component
        )
        if not demanded:
            continue
        fulfilled = any(
            requirement.fulfilled_by(
                graph.state_of(t.source), t.command, graph.state_of(t.target)
            )
            for t in internal
        )
        if not fulfilled:
            starved.append(requirement)
    return starved


def check_general_fair_termination(
    graph: ReachableGraph,
    requirements: Sequence[FairnessRequirement],
) -> Tuple[bool, Optional[GeneralFairCycle]]:
    """``(fairly_terminates_over_explored_region, witness)``."""
    witness = find_generally_fair_cycle(graph, requirements)
    return witness is None, witness
