"""Fairness notions and their decision on ultimately periodic computations.

The paper concentrates on **strong fairness**: "a computation is fair if
commands that are enabled infinitely often are also executed infinitely
often".  [LPS81] (which the paper builds on) distinguishes three notions,
all implemented here so the checker and benches can contrast them:

* **impartiality** — every command is executed infinitely often;
* **justice** (weak fairness) — every command enabled continuously from some
  point on is executed infinitely often;
* **fairness** (strong fairness) — every command enabled infinitely often is
  executed infinitely often.

On an ultimately periodic computation ``stem · cycle^ω`` all three are
decidable from the cycle alone:

* executed infinitely often ⟺ labels some cycle transition;
* enabled infinitely often ⟺ enabled at some cycle state;
* enabled continuously from some point ⟺ enabled at every cycle state.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Callable, FrozenSet, Iterable, Tuple

from repro.ts.lasso import Lasso
from repro.ts.system import CommandLabel, State

EnabledFn = Callable[[State], frozenset]


@dataclass(frozen=True)
class UnfairnessEvidence:
    """Why a lasso fails a fairness notion, for one command.

    ``command`` is treated unfairly: ``enabled_at`` lists the cycle states
    where it is enabled (non-empty), while it labels no cycle transition.
    This is precisely the paper's "unfair with respect to command ℓ".
    """

    command: CommandLabel
    enabled_at: Tuple[State, ...]

    def __str__(self) -> str:
        return (
            f"command {self.command!r} is enabled at cycle states "
            f"{list(self.enabled_at)} but never executed on the cycle"
        )


class FairnessSpec(ABC):
    """A fairness notion over the commands of a transition system."""

    name: str = "fairness"

    @abstractmethod
    def violations(
        self,
        lasso: Lasso,
        enabled: EnabledFn,
        commands: Iterable[CommandLabel],
    ) -> Tuple[UnfairnessEvidence, ...]:
        """All commands treated unfairly by ``lasso`` under this notion."""

    def is_fair(
        self,
        lasso: Lasso,
        enabled: EnabledFn,
        commands: Iterable[CommandLabel],
    ) -> bool:
        """Whether the infinite computation induced by ``lasso`` is fair."""
        return not self.violations(lasso, enabled, commands)


def _cycle_enabled_sets(lasso: Lasso, enabled: EnabledFn) -> Tuple[FrozenSet, ...]:
    return tuple(enabled(state) for state in lasso.cycle_states())


class StrongFairness(FairnessSpec):
    """The paper's notion: enabled infinitely often ⇒ executed infinitely often."""

    name = "strong fairness"

    def violations(
        self,
        lasso: Lasso,
        enabled: EnabledFn,
        commands: Iterable[CommandLabel],
    ) -> Tuple[UnfairnessEvidence, ...]:
        executed = lasso.executed_infinitely_often()
        enabled_sets = _cycle_enabled_sets(lasso, enabled)
        result = []
        for command in commands:
            if command in executed:
                continue
            where = tuple(
                state
                for state, cmds in zip(lasso.cycle_states(), enabled_sets)
                if command in cmds
            )
            if where:
                result.append(UnfairnessEvidence(command=command, enabled_at=where))
        return tuple(result)


class WeakFairness(FairnessSpec):
    """Justice: enabled continuously from some point ⇒ executed infinitely often."""

    name = "weak fairness (justice)"

    def violations(
        self,
        lasso: Lasso,
        enabled: EnabledFn,
        commands: Iterable[CommandLabel],
    ) -> Tuple[UnfairnessEvidence, ...]:
        executed = lasso.executed_infinitely_often()
        enabled_sets = _cycle_enabled_sets(lasso, enabled)
        result = []
        for command in commands:
            if command in executed:
                continue
            if all(command in cmds for cmds in enabled_sets):
                result.append(
                    UnfairnessEvidence(
                        command=command, enabled_at=tuple(lasso.cycle_states())
                    )
                )
        return tuple(result)


class Impartiality(FairnessSpec):
    """Impartiality: every command is executed infinitely often, regardless
    of enabledness.  (The strongest of the [LPS81] trio; included for
    contrast — under it even ``P1`` with an extra never-enabled command would
    "fairly terminate" vacuously only if that command can never be scheduled.)
    """

    name = "impartiality"

    def violations(
        self,
        lasso: Lasso,
        enabled: EnabledFn,
        commands: Iterable[CommandLabel],
    ) -> Tuple[UnfairnessEvidence, ...]:
        executed = lasso.executed_infinitely_often()
        enabled_sets = _cycle_enabled_sets(lasso, enabled)
        result = []
        for command in commands:
            if command in executed:
                continue
            where = tuple(
                state
                for state, cmds in zip(lasso.cycle_states(), enabled_sets)
                if command in cmds
            )
            result.append(UnfairnessEvidence(command=command, enabled_at=where))
        return tuple(result)


#: Shared instances; the classes are stateless.
STRONG_FAIRNESS = StrongFairness()
WEAK_FAIRNESS = WeakFairness()
IMPARTIALITY = Impartiality()
