"""Parametric program families for sweeps, scaling and randomised testing.

* :func:`nested_rings` — the "onion": fairly terminating systems whose
  synthesised stacks are provably deep (height grows linearly with the
  nesting parameter), probing the hierarchy of unfairness hypotheses.
* :func:`counter_grid` — a GCL family with tunable state-space size.
* :func:`distractor_loop` — ``P2`` generalised to many skip distractors.
* :func:`random_system` — seeded random explicit systems with no a-priori
  fairness verdict (ground truth comes from the checker; used to cross-test
  synthesis, the tree construction and the semi-measure against each
  other).
"""

from __future__ import annotations

import random
from typing import List, Tuple

from repro.gcl.program import Program, parse_program
from repro.ts.system import ExplicitSystem


def nested_rings(depth: int) -> ExplicitSystem:
    """The onion: ``depth`` nested regions, each starving its own escape.

    States are ``a_depth, ..., a_1, b`` plus a terminal ``t``.  From ``a_j``
    one may descend (``enter_j``) towards ``b``; from ``b`` one may ``spin``
    forever or climb back up via ``exit_0 .. exit_{j-1}``; ``exit_j`` at
    ``a_j`` escapes the region towards the terminal.  Every infinite
    computation starves the escape of the region it is confined to, so the
    system fairly terminates — and the measure needs one unfairness
    hypothesis per nesting level: synthesised stack height is ``depth + 2``.
    """
    if depth < 0:
        raise ValueError(f"depth must be ≥ 0, got {depth}")
    commands: List[str] = ["spin", "exit_0"]
    transitions: List[Tuple[str, str, str]] = [
        ("b", "spin", "b"),
        ("b", "exit_0", "a_1" if depth >= 1 else "t"),
    ]
    for j in range(1, depth + 1):
        commands.append(f"enter_{j}")
        commands.append(f"exit_{j}")
        below = "b" if j == 1 else f"a_{j-1}"
        above = "t" if j == depth else f"a_{j+1}"
        transitions.append((f"a_{j}", f"enter_{j}", below))
        # exit_j climbs out of region j: to a_{j+1}, or to the terminal at
        # the top — so exit_{j-1} is executed *inside* region j, and exit_j
        # is the one command region j starves.
        transitions.append((f"a_{j}", f"exit_{j}", above))
    initial = f"a_{depth}" if depth >= 1 else "b"
    return ExplicitSystem(
        commands=tuple(commands),
        initial=[initial],
        transitions=transitions,
    )


def counter_grid(width: int, height: int) -> Program:
    """A two-counter program with ``(width+1)·(height+1)`` reachable states.

    ``step`` decreases ``u`` when ``v`` is exhausted, refilling ``v``;
    ``dec`` decreases ``v``; ``idle`` spins.  Fairly terminating: an
    infinite run must eventually starve ``dec`` or ``step`` while it stays
    enabled.
    """
    return parse_program(
        f"""
        program Grid
        var u := {width}, v := {height}
        do
             step: u > 0 and v == 0 -> u := u - 1; v := {height}
          [] dec:  v > 0 -> v := v - 1
          [] idle: u > 0 or v > 0 -> skip
        od
        """
    )


def distractor_loop(distance: int, distractors: int) -> Program:
    """``P2`` with ``distractors`` many skip branches instead of one.

    All distractors together still cannot keep a fair computation alive:
    ``la`` stays enabled and must eventually run.  Synthesised stacks stay
    at height 2 regardless of ``distractors`` — the unfairness hierarchy
    depends on the *structure* of starvation, not on how many commands do
    the starving.
    """
    if distractors < 1:
        raise ValueError("need at least one distractor")
    branches = "\n".join(
        f"  [] skip_{i}: x < y -> skip" for i in range(distractors)
    )
    return parse_program(
        f"""
        program Distract
        var x := 0, y := {distance}
        do
             la: x < y -> x := x + 1
        {branches}
        od
        """
    )


def modulus_chain(stages: int, modulus: int = 3, fuel: int = 9) -> Program:
    """A chain of ``P3``-style stages: stage ``i`` progresses only when the
    previous counter is congruent to 0.

    Generalises the paper's ``P3`` pattern to ``stages`` levels; the state
    space and the measure structure both grow with ``stages``.
    """
    if stages < 1:
        raise ValueError("need at least one stage")
    declarations = ", ".join(f"z{i} := {fuel}" for i in range(stages))
    lines = [
        f"la: x < y and z0 mod {modulus} == 0 -> x := x + 1",
    ]
    for i in range(stages):
        guard = f"x < y and z{i} > 0"
        if i + 1 < stages:
            guard += f" and z{i+1} mod {modulus} == 0"
        lines.append(f"dec{i}: {guard} -> z{i} := z{i} - 1")
    lines.append("idle: x < y -> skip")
    body = "\n  [] ".join(lines)
    return parse_program(
        f"""
        program Chain
        var x := 0, y := 2, {declarations}
        do
             {body}
        od
        """
    )


def escape_ring(period: int) -> ExplicitSystem:
    """A ring of ``period`` states circled by ``advance``, with ``escape``
    enabled only at state 0 (leading to the terminal).

    The minimal weak-vs-strong discriminator (the ``P3`` phenomenon,
    distilled): circling forever starves ``escape``, which is enabled
    *intermittently* — at state 0, infinitely often but never continuously.
    Strong fairness forbids that (the system strongly-fairly terminates);
    weak fairness tolerates it (a weakly fair infinite run exists for
    ``period ≥ 2``).  Also the group-fairness discriminator: under the
    single group requirement "the ring moves", the circling run is fair.
    """
    if period < 1:
        raise ValueError("need at least one ring state")
    transitions = [(i, "advance", (i + 1) % period) for i in range(period)]
    transitions.append((0, "escape", period))
    return ExplicitSystem(
        commands=("advance", "escape"),
        initial=[0],
        transitions=transitions,
    )


def random_system(
    seed: int,
    states: int = 12,
    commands: int = 3,
    extra_edges: int = 10,
) -> ExplicitSystem:
    """A seeded random transition system (connected from state 0).

    A random spanning structure guarantees reachability; ``extra_edges``
    random transitions (including back edges) create cycles.  Whether the
    result fairly terminates is *not* controlled — ground truth comes from
    :func:`repro.fairness.check_fair_termination`, and the property tests
    assert the synthesiser/checker/simulator agree on it.
    """
    rng = random.Random(seed)
    command_names = tuple(f"c{i}" for i in range(commands))
    transitions: List[Tuple[int, str, int]] = []
    for target in range(1, states):
        source = rng.randrange(target)
        transitions.append((source, rng.choice(command_names), target))
    for _ in range(extra_edges):
        source = rng.randrange(states)
        target = rng.randrange(states)
        transitions.append((source, rng.choice(command_names), target))
    return ExplicitSystem(
        commands=command_names,
        initial=[0],
        transitions=transitions,
    )


def grid_hypercube(dims: int, side: int) -> Program:
    """A ``dims``-dimensional counter cube: ``(side+1)**dims`` states.

    Each ``dec_i`` decrements its own counter independently, so BFS levels
    are *wide* (states at depth ``d`` are the compositions of ``d`` over
    the coordinates) — the stress case the sharded explorer is built for,
    in contrast to :func:`counter_grid`'s narrow diagonal levels.
    Terminates trivially (every command strictly decreases the sum), so
    exploration, not fairness structure, is what this family measures.
    ``grid_hypercube(6, 9)`` is exactly one million states.
    """
    if dims < 1:
        raise ValueError("need at least one dimension")
    if side < 1:
        raise ValueError("need side ≥ 1")
    declarations = ", ".join(f"x{i} := {side}" for i in range(dims))
    body = "\n  [] ".join(
        f"dec{i}: x{i} > 0 -> x{i} := x{i} - 1" for i in range(dims)
    )
    return parse_program(
        f"""
        program Hypercube
        var {declarations}
        do
             {body}
        od
        """
    )


def grid_hypercube_rebound(dims: int, side: int, kick: int = 1) -> Program:
    """:func:`grid_hypercube` plus a ``rebound`` command at the origin:
    same ``(side+1)**dims`` state space, non-terminating.

    ``rebound`` fires only at the all-zero corner — the unique deepest
    state, discovered and expanded *last* by BFS — and kicks ``x0`` back
    up to ``kick``.  Its target is a state the exploration has already
    interned, so two ``kick`` values produce graphs that differ in exactly
    one transition-target entry while agreeing on every state row, every
    other transition and every enabled mask.  That makes this the graph
    store's incremental-reuse stress family: editing ``kick`` is a
    single-command change whose re-exploration should replay every state
    from the stored base and republish almost entirely from existing
    chunks.  ``grid_hypercube_rebound(6, 9)`` is exactly one million
    states.
    """
    if dims < 1:
        raise ValueError("need at least one dimension")
    if side < 1:
        raise ValueError("need side ≥ 1")
    if not 1 <= kick <= side:
        raise ValueError(f"kick must be within 1..{side}")
    declarations = ", ".join(f"x{i} := {side}" for i in range(dims))
    lines = [
        f"dec{i}: x{i} > 0 -> x{i} := x{i} - 1" for i in range(dims)
    ]
    origin = " and ".join(f"x{i} == 0" for i in range(dims))
    lines.append(f"rebound: {origin} -> x0 := {kick}")
    body = "\n  [] ".join(lines)
    return parse_program(
        f"""
        program HypercubeRebound
        var {declarations}
        do
             {body}
        od
        """
    )


def hypercube_trap(dims: int, side: int) -> Program:
    """:func:`grid_hypercube` plus a fair two-state trap near the root:
    ``(side+1)**dims + 2`` states, of which the trap is at depth 1.

    From the initial corner (all coordinates at ``side``) a ``fall`` command
    flips mode ``t`` to 1, disabling every ``dec_i`` and entering a
    ``flip``/``flop`` two-cycle — a *fair* infinite computation (each of the
    two commands is enabled and executed on every tour of the cycle).  The
    rest of the cube is the million-state terminating bulk of
    :func:`grid_hypercube`.  This is the early-exit stress shape: a
    materialized decision must enumerate the whole cube before refining,
    while the streaming hunt meets the trap SCC in its first stage.
    ``hypercube_trap(6, 9)`` is exactly 1 000 002 states.
    """
    if dims < 1:
        raise ValueError("need at least one dimension")
    if side < 1:
        raise ValueError("need side ≥ 1")
    declarations = ", ".join(f"x{i} := {side}" for i in range(dims))
    lines = [
        f"dec{i}: t == 0 and x{i} > 0 -> x{i} := x{i} - 1"
        for i in range(dims)
    ]
    corner = " and ".join(f"x{i} == {side}" for i in range(dims))
    lines.append(f"fall: t == 0 and {corner} -> t := 1")
    lines.append("flip: t == 1 and p == 0 -> p := 1")
    lines.append("flop: t == 1 and p == 1 -> p := 0")
    body = "\n  [] ".join(lines)
    return parse_program(
        f"""
        program HypercubeTrap
        var {declarations}, t := 0, p := 0
        do
             {body}
        od
        """
    )


def distributed_ring(stations: int, work: int) -> Program:
    """A token ring of ``stations`` worker stations, each with ``work``
    units: ``stations * (work+1)**stations`` states.

    Station ``i`` may burn one unit of its own work while it holds the
    token (``work_i``) or pass the token on (``pass_i``).  The token
    circulates forever, so the system does *not* terminate — it is the
    server-loop shape of the scaling suite, with state dominated by the
    cross product of per-station counters.  ``distributed_ring(3, 69)`` is
    1 029 000 states.
    """
    if stations < 2:
        raise ValueError("need at least two stations")
    if work < 0:
        raise ValueError("need work ≥ 0")
    declarations = "t := 0, " + ", ".join(
        f"w{i} := {work}" for i in range(stations)
    )
    lines = []
    for i in range(stations):
        lines.append(f"work{i}: t == {i} and w{i} > 0 -> w{i} := w{i} - 1")
        lines.append(f"pass{i}: t == {i} -> t := {(i + 1) % stations}")
    body = "\n  [] ".join(lines)
    return parse_program(
        f"""
        program Ring
        var {declarations}
        do
             {body}
        od
        """
    )


def engine_scaling_suite(scale: str = "full") -> List[Tuple[str, object]]:
    """The ``(name, factory)`` workload list for engine scaling experiments.

    One entry per family, sized so the largest ("grid") dominates wall
    clock; ``scale="smoke"`` substitutes tiny instances for CI, where the
    point is exercising every code path, not measuring anything.  Shared by
    :mod:`benchmarks.bench_e13_engine_scaling` and the engine equivalence
    tests so they always agree on what "each workload family" means.
    """
    if scale == "smoke":
        return [
            ("grid(5,5)", lambda: counter_grid(5, 5)),
            ("chain(2 stages)", lambda: modulus_chain(2, fuel=3)),
            ("rings(3)", lambda: nested_rings(3)),
            ("distractors(2,2)", lambda: distractor_loop(2, 2)),
            ("random(7)", lambda: random_system(7)),
        ]
    if scale != "full":
        raise ValueError(f"unknown scale {scale!r} (expected 'full' or 'smoke')")
    return [
        ("grid(69,69)", lambda: counter_grid(69, 69)),
        ("chain(3 stages)", lambda: modulus_chain(3, fuel=5)),
        ("rings(24)", lambda: nested_rings(24)),
        ("distractors(6,6)", lambda: distractor_loop(6, 6)),
        ("random(7,64)", lambda: random_system(7, states=64, extra_edges=48)),
    ]


def large_scaling_suite(scale: str = "full") -> List[Tuple[str, object]]:
    """Million-state ``(name, factory)`` workloads for exploration scaling.

    Scaled-up grid/chain/distributed shapes (≥ 10^6 states each at
    ``"full"``) for the sharded-exploration experiments
    (:mod:`benchmarks.bench_e15_sharded_explore`); ``"smoke"`` substitutes
    instances in the hundreds of states that walk the same code paths.
    The hypercube is listed first — it is the largest-frontier family and
    the one the E15 acceptance gates are phrased over.
    """
    if scale == "smoke":
        return [
            ("hypercube(6,2)", lambda: grid_hypercube(6, 2)),
            ("chain(3,fuel=7)", lambda: modulus_chain(3, fuel=7)),
            ("ring(3,7)", lambda: distributed_ring(3, 7)),
        ]
    if scale != "full":
        raise ValueError(f"unknown scale {scale!r} (expected 'full' or 'smoke')")
    return [
        ("hypercube(6,9)", lambda: grid_hypercube(6, 9)),
        ("chain(3,fuel=69)", lambda: modulus_chain(3, fuel=69)),
        ("ring(3,69)", lambda: distributed_ring(3, 69)),
    ]
