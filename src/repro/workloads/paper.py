"""The paper's example programs ``P1``–``P4`` and annotations ``P1'``–``P4'``.

Each builder returns the program parameterised by its initial values; the
companion ``*_assertion`` functions return the paper's exact stack
assertions:

* ``P1'``: ``(T: max{y−x, 0})`` — a plain loop variant (Floyd);
* ``P2'``: ``(ℓa / T: max{y−x, 0})``;
* ``P3'``: ``(ℓa: z mod 117 / T: max{y−x, 0})``;
* ``P4'``: ``(ℓb / ℓa: z mod 117 / T: max{y−x, 0})``.

``P3``/``P4`` over unbounded integers have infinite reachable state spaces
(``z`` may decrease forever on unfair branches); the ``*_bounded`` variants
guard ``ℓb`` with ``z > 0``, preserving the fairness structure (the paper's
annotations still verify, by the same case analysis) while making the state
space finite for exact experiments.
"""

from __future__ import annotations

from repro.gcl.program import Program, parse_program
from repro.measures.assertions import StackAssertion


def p1(distance: int = 10) -> Program:
    """``P1: *[ x < y → x := x + 1 ]`` with ``y − x = distance`` initially."""
    return parse_program(
        f"""
        program P1
        var x := 0, y := {distance}
        do
          la: x < y -> x := x + 1
        od
        """
    )


def p1_assertion() -> StackAssertion:
    """``P1'``: the termination measure ``max{y − x, 0}`` alone."""
    return StackAssertion.parse(
        ["T: max(y - x, 0)"], description="paper P1' (Floyd loop variant)"
    )


def p2(distance: int = 10) -> Program:
    """``P2``: ``P1`` plus a skip branch — terminates only under fairness."""
    return parse_program(
        f"""
        program P2
        var x := 0, y := {distance}
        do
             la: x < y -> x := x + 1
          [] lb: x < y -> skip
        od
        """
    )


def p2_assertion() -> StackAssertion:
    """``P2'``: ``(ℓa / T: max{y − x, 0})``."""
    return StackAssertion.parse(
        ["la", "T: max(y - x, 0)"], description="paper P2'"
    )


def p3(distance: int = 3, z0: int = 240, modulus: int = 117) -> Program:
    """``P3``: ``ℓa`` enabled only when ``z ≡ 0 (mod modulus)``.

    The paper uses modulus 117; it is a parameter here so benches can sweep
    it.
    """
    return parse_program(
        f"""
        program P3
        var x := 0, y := {distance}, z := {z0}
        do
             la: x < y and z mod {modulus} == 0 -> x := x + 1
          [] lb: x < y -> z := z - 1
        od
        """
    )


def p3_bounded(distance: int = 3, z0: int = 240, modulus: int = 117) -> Program:
    """``P3`` with ``ℓb`` additionally guarded by ``z > 0`` (finite state)."""
    return parse_program(
        f"""
        program P3b
        var x := 0, y := {distance}, z := {z0}
        do
             la: x < y and z mod {modulus} == 0 -> x := x + 1
          [] lb: x < y and z > 0 -> z := z - 1
        od
        """
    )


def p3_assertion(modulus: int = 117) -> StackAssertion:
    """``P3'``: ``(ℓa: z mod 117 / T: max{y − x, 0})``."""
    return StackAssertion.parse(
        [f"la: z mod {modulus}", "T: max(y - x, 0)"],
        description="paper P3'",
    )


def p4(distance: int = 3, z0: int = 240, modulus: int = 117) -> Program:
    """``P4``: ``P3`` plus an empty (skip) guarded command ``ℓc``."""
    return parse_program(
        f"""
        program P4
        var x := 0, y := {distance}, z := {z0}
        do
             la: x < y and z mod {modulus} == 0 -> x := x + 1
          [] lb: x < y -> z := z - 1
          [] lc: x < y -> skip
        od
        """
    )


def p4_bounded(distance: int = 3, z0: int = 240, modulus: int = 117) -> Program:
    """``P4`` with ``ℓb`` guarded by ``z > 0`` (finite state)."""
    return parse_program(
        f"""
        program P4b
        var x := 0, y := {distance}, z := {z0}
        do
             la: x < y and z mod {modulus} == 0 -> x := x + 1
          [] lb: x < y and z > 0 -> z := z - 1
          [] lc: x < y -> skip
        od
        """
    )


def p4_assertion(modulus: int = 117) -> StackAssertion:
    """``P4'``: ``(ℓb / ℓa: z mod 117 / T: max{y − x, 0})``."""
    return StackAssertion.parse(
        ["lb", f"la: z mod {modulus}", "T: max(y - x, 0)"],
        description="paper P4'",
    )


def p4_bounded_assertion(modulus: int = 117) -> StackAssertion:
    """``P4'`` adapted to the bounded variant.

    With ``ℓb`` guarded by ``z > 0``, executions of ``ℓc`` at ``z = 0``
    leave ``ℓb`` *disabled*, so the bare ``ℓb``-hypothesis cannot be active
    there; but then ``z ≡ 0 (mod m)``, so ``ℓa`` is enabled and the
    ``ℓa``-hypothesis is active instead — the same reasoning pattern the
    paper uses for ``P3'``.  The single paper stack still verifies because
    the checker may pick the ``ℓa`` level (the active hypothesis is not
    unique, §5).
    """
    return p4_assertion(modulus)
