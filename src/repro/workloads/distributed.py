"""Distributed scenarios — the systems the paper's introduction motivates.

"Fairness is the assumption that an action that is enabled over and over
will eventually be taken.  Such assumptions are central to many distributed
or concurrent systems."  These workloads are interleavings of small
processes; strong fairness over the composite command set is exactly
"no process action is starved", and each system fairly terminates for a
reason a stack assertion can state.
"""

from __future__ import annotations

from typing import Tuple

from repro.ts.product import InterleavingComposition
from repro.ts.system import ExplicitSystem


def _philosopher() -> ExplicitSystem:
    """One philosopher: ponder in ``H`` (hungry), ``pick`` both forks
    atomically to eat, ``put`` them down, done."""
    return ExplicitSystem(
        commands=("ponder", "pick", "put"),
        initial=["H"],
        transitions=[
            ("H", "ponder", "H"),
            ("H", "pick", "E"),
            ("E", "put", "D"),
        ],
    )


def dining_philosophers(count: int) -> InterleavingComposition:
    """``count`` philosophers around a table, each needing to eat once.

    A philosopher picks *both* forks atomically (enabled only when neither
    neighbour is eating), eats, and is done.  Infinite computations exist —
    everyone can ponder forever — but each is unfair: once a philosopher's
    neighbours are done, their ``pick`` is enabled at every later step.
    Under strong fairness the system terminates with everyone fed.
    """
    if count < 2:
        raise ValueError("need at least two philosophers")

    names = [f"phil{i}" for i in range(count)]

    def forks_free(state: Tuple, name: str, label: str) -> bool:
        if label != "pick":
            return True
        index = names.index(name)
        left = state[(index - 1) % count]
        right = state[(index + 1) % count]
        return left != "E" and right != "E"

    return InterleavingComposition(
        processes=[(name, _philosopher()) for name in names],
        shared_guard=forks_free,
    )


def _mutex_process(rounds: int) -> ExplicitSystem:
    """One mutual-exclusion client: ``rounds`` critical-section entries.

    States ``(phase, remaining)``: ``W`` waiting (may ``idle`` or ``enter``),
    ``C`` critical (must ``leave``); after the last round it is done.
    """
    transitions = []
    for remaining in range(rounds, 0, -1):
        waiting = ("W", remaining)
        critical = ("C", remaining)
        after = ("W", remaining - 1) if remaining > 1 else ("D", 0)
        transitions.append((waiting, "idle", waiting))
        transitions.append((waiting, "enter", critical))
        transitions.append((critical, "leave", after))
    return ExplicitSystem(
        commands=("idle", "enter", "leave"),
        initial=[("W", rounds)],
        transitions=transitions,
    )


def mutual_exclusion(processes: int = 2, rounds: int = 1) -> InterleavingComposition:
    """``processes`` clients each entering a critical section ``rounds``
    times; ``enter`` is enabled only when no one else is critical.

    Starving a waiting client whose ``enter`` stays enabled is the unfair
    behaviour; under strong fairness every client gets every round and the
    system terminates.
    """
    if processes < 2:
        raise ValueError("need at least two processes")
    names = [f"proc{i}" for i in range(processes)]

    def mutex(state: Tuple, name: str, label: str) -> bool:
        if label != "enter":
            return True
        index = names.index(name)
        return all(
            state[i][0] != "C" for i in range(processes) if i != index
        )

    return InterleavingComposition(
        processes=[(name, _mutex_process(rounds)) for name in names],
        shared_guard=mutex,
    )


def request_server(noise_states: int = 1) -> ExplicitSystem:
    """A request/grant server that runs forever — fair *response*, not
    fair termination.

    From ``idle`` a client may ``request`` (moving to ``wait``); the server
    may ``grant`` (back to ``idle``); ``work`` self-loops everywhere
    (``noise_states`` extra idle-side states lengthen the work detour).
    The system never terminates — request/grant forever is a fair infinite
    run — but the response property ``G(wait → F idle)`` holds under
    strong fairness: starving ``grant`` while a request waits is unfair.
    """
    if noise_states < 1:
        raise ValueError("need at least one noise state")
    transitions = [
        ("idle", "request", "wait"),
        ("wait", "grant", "idle"),
        ("wait", "work", "wait"),
        ("idle", "work", "busy_0"),
    ]
    for i in range(noise_states):
        target = "idle" if i == noise_states - 1 else f"busy_{i + 1}"
        transitions.append((f"busy_{i}", "work", target))
    return ExplicitSystem(
        commands=("request", "grant", "work"),
        initial=["idle"],
        transitions=transitions,
    )


def _producer(items: int) -> ExplicitSystem:
    """Produces ``items`` items, with a think self-loop before each."""
    transitions = []
    for remaining in range(items, 0, -1):
        transitions.append((remaining, "think", remaining))
        transitions.append((remaining, "produce", remaining - 1))
    return ExplicitSystem(
        commands=("think", "produce"),
        initial=[items],
        transitions=transitions,
    )


def _consumer() -> ExplicitSystem:
    """Consumes forever (the buffer guard gates actual consumption)."""
    return ExplicitSystem(
        commands=("consume",),
        initial=["ready"],
        transitions=[("ready", "consume", "ready")],
    )


class ProducerConsumer(InterleavingComposition):
    """A producer/consumer pair around a bounded buffer.

    The composite state is ``((items left to produce), 'ready', buffer
    fill)`` — the buffer is modelled as a third, trivial "process" whose
    state the shared guard reads and the composition's post-processing
    updates.  Implemented directly instead: this subclass wraps the
    two-process interleaving and threads the buffer count through the
    composite state.
    """

    def __init__(self, items: int, capacity: int) -> None:
        if items < 1 or capacity < 1:
            raise ValueError("need at least one item and one buffer slot")
        self._items = items
        self._capacity = capacity
        super().__init__(
            processes=[("prod", _producer(items)), ("cons", _consumer())],
        )

    def initial_states(self):
        for state in super().initial_states():
            yield state + (0,)

    def enabled(self, state):
        inner, fill = state[:-1], state[-1]
        result = set()
        for label in super().enabled(inner):
            if label == "prod.produce" and fill >= self._capacity:
                continue
            if label == "cons.consume" and fill == 0:
                continue
            result.add(label)
        return frozenset(result)

    def post(self, state):
        inner, fill = state[:-1], state[-1]
        for label, target in super().post(inner):
            if label == "prod.produce":
                if fill >= self._capacity:
                    continue
                yield label, target + (fill + 1,)
            elif label == "cons.consume":
                if fill == 0:
                    continue
                yield label, target + (fill - 1,)
            else:
                yield label, target + (fill,)


def producer_consumer(items: int = 3, capacity: int = 2) -> ProducerConsumer:
    """A bounded-buffer producer/consumer system.

    The producer thinks (self-loop) or produces one of ``items`` items into
    a buffer of size ``capacity``; the consumer drains it.  Quiescence —
    everything produced and consumed — is reachable but not inevitable
    without fairness (thinking forever is a run).  Under strong fairness:

    * the system **fairly terminates** (an infinite run eventually only
      thinks, starving the enabled ``produce`` — or only consumes, which
      the finite buffer and item budget forbid);
    * the response property ``G(buffer non-empty → F buffer empty)`` holds
      (a non-empty buffer keeps ``consume`` enabled; starving it forever is
      unfair) — and remains meaningful on variants that never terminate.
    """
    return ProducerConsumer(items, capacity)


def token_ring(stations: int) -> ExplicitSystem:
    """A token circulating once around ``stations`` stations.

    Station ``i`` may ``work_i`` (self-loop) while holding the token or
    ``pass_i`` it on; the token parks after leaving the last station.
    Distinct per-station commands make the starvation structure visible:
    an infinite run parks at some station and starves that station's
    ``pass`` — one unfairness hypothesis per station.
    """
    if stations < 1:
        raise ValueError("need at least one station")
    commands = []
    transitions = []
    for i in range(stations):
        commands += [f"work_{i}", f"pass_{i}"]
        transitions.append((i, f"work_{i}", i))
        transitions.append((i, f"pass_{i}", i + 1))
    return ExplicitSystem(
        commands=tuple(commands),
        initial=[0],
        transitions=transitions,
    )
