"""Workloads: the paper's programs, scaling families, distributed scenarios."""

from repro.workloads.distributed import (
    dining_philosophers,
    producer_consumer,
    request_server,
    mutual_exclusion,
    token_ring,
)
from repro.workloads.families import (
    counter_grid,
    engine_scaling_suite,
    escape_ring,
    distractor_loop,
    modulus_chain,
    nested_rings,
    random_system,
)
from repro.workloads.paper import (
    p1,
    p1_assertion,
    p2,
    p2_assertion,
    p3,
    p3_assertion,
    p3_bounded,
    p4,
    p4_assertion,
    p4_bounded,
    p4_bounded_assertion,
)

__all__ = [
    "dining_philosophers",
    "producer_consumer",
    "request_server",
    "mutual_exclusion",
    "token_ring",
    "counter_grid",
    "engine_scaling_suite",
    "escape_ring",
    "distractor_loop",
    "modulus_chain",
    "nested_rings",
    "random_system",
    "p1",
    "p1_assertion",
    "p2",
    "p2_assertion",
    "p3",
    "p3_assertion",
    "p3_bounded",
    "p4",
    "p4_assertion",
    "p4_bounded",
    "p4_bounded_assertion",
]
