"""Transition systems — the paper's program model.

Section 4.1: "A program P defines a transition relation → on a countable set
of program states; moreover, P defines a set of initial program states and a
finite set of commands.  A command ... is designated by a label ℓ, and P
defines for each program state whether ℓ is enabled or disabled.  A
transition p → p' describes the execution of exactly one command, which is
enabled in p."

:class:`TransitionSystem` is that definition as an abstract base class; the
rest of the library is written against it, so the method — like the paper's
results — "applies to strong fairness in all transition systems", not just
guarded commands.  :class:`ExplicitSystem` is the direct finite
representation used heavily in tests and by the random workload generators.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Dict, Hashable, Iterable, Mapping, Sequence, Set, Tuple

State = Hashable
CommandLabel = str


@dataclass(frozen=True)
class Transition:
    """One execution step ``source →(command) target``."""

    source: State
    command: CommandLabel
    target: State

    def __str__(self) -> str:
        return f"{self.source!r} --{self.command}--> {self.target!r}"


class TransitionSystem(ABC):
    """A labelled transition system with per-state command enabledness.

    States must be hashable (they key dictionaries throughout).  The command
    set is finite and fixed — the paper assumes "the number of different
    commands is finite", and the completeness construction's stack height
    bound ``N + 1`` depends on it.
    """

    @abstractmethod
    def commands(self) -> Tuple[CommandLabel, ...]:
        """The finite tuple of command labels, in a fixed order."""

    @abstractmethod
    def initial_states(self) -> Iterable[State]:
        """The initial program states."""

    @abstractmethod
    def enabled(self, state: State) -> frozenset:
        """The set of command labels enabled in ``state``."""

    @abstractmethod
    def post(self, state: State) -> Iterable[Tuple[CommandLabel, State]]:
        """All ``(command, successor)`` pairs from ``state``.

        Every yielded command must be enabled in ``state``; a command may
        yield several successors (nondeterministic commands are allowed).
        """

    def is_terminal(self, state: State) -> bool:
        """Whether no command is enabled (the program has terminated)."""
        return not self.enabled(state)

    def expand(self, state: State) -> Tuple[frozenset, Tuple[Tuple[CommandLabel, State], ...]]:
        """``(enabled(state), tuple(post(state)))`` computed together.

        Exploration expands through this hook so systems that derive both
        answers from the same work — a GCL program evaluates each guard
        once for enabledness *and* body execution — can override it and
        share (or cache) that work.  The default simply delegates, so the
        two views always agree.
        """
        return self.enabled(state), tuple(self.post(state))

    def transitions_from(self, state: State) -> Iterable[Transition]:
        """The outgoing :class:`Transition` objects of ``state``."""
        for command, target in self.post(state):
            yield Transition(state, command, target)

    def validate_commands(self) -> None:
        """Sanity-check the command tuple (finite, non-empty, unique)."""
        commands = self.commands()
        if not commands:
            raise ValueError("a transition system needs at least one command")
        if len(set(commands)) != len(commands):
            raise ValueError(f"duplicate command labels in {commands!r}")

    def shard_spec(self) -> bytes | None:
        """A picklable payload that rebuilds this system in a worker process.

        The sharded explorer ships this to the worker pool once per
        exploration; workers rebuild the system from it and expand states
        locally.  ``None`` (the default) means the system cannot be
        reconstructed elsewhere — closures, open resources, views over
        unpicklable bases — and exploration silently stays serial.
        Overrides must guarantee the rebuilt system is *semantically
        identical*: same commands, same ``expand`` results for every state.
        """
        return None

    def value_plane(self):
        """The system's packed value plane, or ``None`` (the default).

        A *value plane* (:class:`repro.gcl.program.ProgramValuePlane` is
        the canonical one) exposes the system's states as flat int64
        tuples with batched expansion, which lets the sharded explorer
        move the hot data over shared memory and evaluate guards in
        batches instead of pickling state objects.  Systems without a
        natural flat encoding simply return ``None`` and take the
        object-level paths; results are bit-identical either way.
        """
        return None


class ExplicitSystem(TransitionSystem):
    """A transition system given by explicit dictionaries.

    Parameters
    ----------
    commands:
        All command labels.
    initial:
        The initial states.
    transitions:
        Triples ``(source, command, target)``.
    enabled:
        Optional map ``state → set of enabled commands``.  When omitted, a
        command is considered enabled in a state iff some transition executes
        it there.  Supplying the map explicitly allows the crucial
        *enabled-but-not-taken* situations that make fairness non-trivial —
        e.g. a command that is enabled in a state but whose execution the
        modelled scheduler may forever avoid... is just an extra transition;
        but a command enabled in states with *no* matching transition would
        be a modelling error, so that case is rejected.
    """

    def __init__(
        self,
        commands: Sequence[CommandLabel],
        initial: Iterable[State],
        transitions: Iterable[Tuple[State, CommandLabel, State]],
        enabled: Mapping[State, Iterable[CommandLabel]] | None = None,
    ) -> None:
        self._commands = tuple(commands)
        self._initial = tuple(initial)
        self._post: Dict[State, list[Tuple[CommandLabel, State]]] = {}
        self._states: Set[State] = set(self._initial)
        executed_at: Dict[State, Set[CommandLabel]] = {}
        # The transition relation is a set: duplicates collapse.
        seen: Set[Tuple[State, CommandLabel, State]] = set()
        for source, command, target in transitions:
            if command not in self._commands:
                raise ValueError(f"transition uses unknown command {command!r}")
            if (source, command, target) in seen:
                continue
            seen.add((source, command, target))
            self._post.setdefault(source, []).append((command, target))
            executed_at.setdefault(source, set()).add(command)
            self._states.add(source)
            self._states.add(target)
        if enabled is None:
            self._enabled = {
                state: frozenset(cmds) for state, cmds in executed_at.items()
            }
        else:
            self._enabled = {
                state: frozenset(cmds) for state, cmds in enabled.items()
            }
            for state, cmds in executed_at.items():
                missing = cmds - self._enabled.get(state, frozenset())
                if missing:
                    raise ValueError(
                        f"commands {sorted(missing)} executed at {state!r} "
                        "but not declared enabled there"
                    )
            for state, cmds in self._enabled.items():
                self._states.add(state)
                ghost = cmds - executed_at.get(state, set())
                if ghost:
                    raise ValueError(
                        f"commands {sorted(ghost)} declared enabled at {state!r} "
                        "but have no transition from it; a transition p → p' "
                        "requires the executed command to be enabled, and an "
                        "enabled command must be executable"
                    )
        self.validate_commands()

    def commands(self) -> Tuple[CommandLabel, ...]:
        return self._commands

    def initial_states(self) -> Iterable[State]:
        return self._initial

    def enabled(self, state: State) -> frozenset:
        return self._enabled.get(state, frozenset())

    def post(self, state: State) -> Iterable[Tuple[CommandLabel, State]]:
        return tuple(self._post.get(state, ()))

    @property
    def known_states(self) -> frozenset:
        """Every state mentioned in the construction (not just reachable)."""
        return frozenset(self._states)

    def shard_spec(self) -> bytes | None:
        """Explicit systems are plain data — ship them whole (when their
        states happen to be picklable; generator-built systems with closure
        states are not, and fall back to serial exploration)."""
        import pickle

        try:
            return pickle.dumps(self, protocol=pickle.HIGHEST_PROTOCOL)
        except Exception:
            return None


class RenamedSystem(TransitionSystem):
    """A view of a system with states mapped through an injective function.

    Used by transformations (history variables, scheduler products) when the
    natural state representation should be normalised before hashing or
    display.  The renaming must be injective on reachable states; collisions
    would silently merge distinct states, so :meth:`post` re-checks.
    """

    def __init__(self, base: TransitionSystem, rename, unrename) -> None:
        self._base = base
        self._rename = rename
        self._unrename = unrename

    def commands(self) -> Tuple[CommandLabel, ...]:
        return self._base.commands()

    def initial_states(self) -> Iterable[State]:
        return (self._rename(s) for s in self._base.initial_states())

    def enabled(self, state: State) -> frozenset:
        return self._base.enabled(self._unrename(state))

    def post(self, state: State) -> Iterable[Tuple[CommandLabel, State]]:
        inner = self._unrename(state)
        if self._rename(inner) != state:
            raise ValueError(f"rename/unrename are not inverse at {state!r}")
        for command, target in self._base.post(inner):
            yield command, self._rename(target)
