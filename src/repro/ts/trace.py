"""Execution traces produced by simulation.

A :class:`TraceRecorder` accumulates the (state, executed command, enabled
set) history of one run; the finished :class:`ExecutionTrace` can be audited
for *bounded* fairness facts — e.g. "was any command enabled for the last k
steps without being executed?" — which is how the simulator's schedulers are
validated against their fairness promises.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.ts.system import CommandLabel, State


@dataclass(frozen=True)
class TraceStep:
    """One simulation step: from ``state`` (with ``enabled`` commands),
    ``command`` was executed."""

    state: State
    enabled: frozenset
    command: CommandLabel


@dataclass(frozen=True)
class ExecutionTrace:
    """A finished run: ``steps`` then ``final_state``.

    ``terminated`` distinguishes a genuine halt (no enabled command in the
    final state) from a step-budget cutoff.
    """

    steps: Tuple[TraceStep, ...]
    final_state: State
    final_enabled: frozenset
    terminated: bool

    def __len__(self) -> int:
        return len(self.steps)

    def states(self) -> Tuple[State, ...]:
        """All visited states including the final one."""
        return tuple(s.state for s in self.steps) + (self.final_state,)

    def commands(self) -> Tuple[CommandLabel, ...]:
        """The executed command sequence."""
        return tuple(s.command for s in self.steps)

    def execution_counts(self) -> Dict[CommandLabel, int]:
        """How many times each command was executed."""
        counts: Dict[CommandLabel, int] = {}
        for step in self.steps:
            counts[step.command] = counts.get(step.command, 0) + 1
        return counts

    def enabled_counts(self) -> Dict[CommandLabel, int]:
        """At how many steps each command was enabled."""
        counts: Dict[CommandLabel, int] = {}
        for step in self.steps:
            for command in step.enabled:
                counts[command] = counts.get(command, 0) + 1
        return counts

    def starvation_span(self, command: CommandLabel) -> int:
        """Longest run of consecutive steps where ``command`` was enabled
        but a different command was executed.

        A strongly fair scheduler keeps this bounded for every command; an
        adversarial one drives it to the trace length.
        """
        best = 0
        current = 0
        for step in self.steps:
            if command in step.enabled and step.command != command:
                current += 1
                best = max(best, current)
            else:
                current = 0
        return best

    def suffix_violations(self, window: int) -> List[CommandLabel]:
        """Commands enabled at every one of the last ``window`` steps yet
        never executed there — the finite-trace shadow of unfairness."""
        if window <= 0 or window > len(self.steps):
            window = len(self.steps)
        tail = self.steps[len(self.steps) - window :]
        violations = []
        enabled_throughout = (
            set.intersection(*(set(s.enabled) for s in tail)) if tail else set()
        )
        executed = {s.command for s in tail}
        for command in sorted(enabled_throughout - executed):
            violations.append(command)
        return violations


class TraceRecorder:
    """Mutable builder for :class:`ExecutionTrace`."""

    def __init__(self) -> None:
        self._steps: List[TraceStep] = []

    def record(self, state: State, enabled: frozenset, command: CommandLabel) -> None:
        """Append one executed step."""
        self._steps.append(TraceStep(state=state, enabled=enabled, command=command))

    def finish(
        self,
        final_state: State,
        final_enabled: frozenset,
        terminated: bool,
    ) -> ExecutionTrace:
        """Seal the trace."""
        return ExecutionTrace(
            steps=tuple(self._steps),
            final_state=final_state,
            final_enabled=final_enabled,
            terminated=terminated,
        )
