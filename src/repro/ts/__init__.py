"""Transition systems, exploration, SCCs, lassos, composition, traces."""

from repro.ts.explore import (
    ExplorationLimitError,
    ExplorationObserver,
    IndexedTransition,
    ReachableGraph,
    StopExploration,
    explore,
)
from repro.ts.graph import (
    SccDecomposition,
    condensation_edges,
    decompose,
    internal_transitions,
    is_nontrivial_scc,
    tarjan_scc,
)
from repro.ts.lasso import (
    Lasso,
    Path,
    cycle_through_all,
    find_path_indices,
    lasso_from_indices,
)
from repro.ts.product import GuardedOverlay, InterleavingComposition
from repro.ts.system import (
    CommandLabel,
    ExplicitSystem,
    RenamedSystem,
    State,
    Transition,
    TransitionSystem,
)
from repro.ts.trace import ExecutionTrace, TraceRecorder, TraceStep

__all__ = [
    "ExplorationLimitError",
    "ExplorationObserver",
    "IndexedTransition",
    "ReachableGraph",
    "StopExploration",
    "explore",
    "SccDecomposition",
    "condensation_edges",
    "decompose",
    "internal_transitions",
    "is_nontrivial_scc",
    "tarjan_scc",
    "Lasso",
    "Path",
    "cycle_through_all",
    "find_path_indices",
    "lasso_from_indices",
    "GuardedOverlay",
    "InterleavingComposition",
    "CommandLabel",
    "ExplicitSystem",
    "RenamedSystem",
    "State",
    "Transition",
    "TransitionSystem",
    "ExecutionTrace",
    "TraceRecorder",
    "TraceStep",
]
