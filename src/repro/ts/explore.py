"""Reachability exploration with explicit completeness accounting.

The verification conditions are local, so checking them over a region of the
state space means enumerating that region's transitions.  For finite-state
programs :func:`explore` exhausts the reachable states and the resulting
:class:`ReachableGraph` is *complete*: every judgement made over it is a
theorem about the program.  For infinite-state programs (the paper's
``P1``–``P4`` over unbounded integers) exploration is *bounded* and the graph
records its frontier, so downstream analyses can — and do — say precisely
what was and was not covered, instead of silently truncating.

States are interned (hashed once at discovery, :mod:`repro.engine.interning`)
and every downstream analysis works on integer indices; the graph lazily
builds a packed-array view plus cached analyses
(:attr:`ReachableGraph.analyses`) that the hot paths — measure checking,
fair-cycle search, synthesis — run on.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence, Set, Tuple

from repro.engine.interning import StateInterner
from repro.ts.system import CommandLabel, State, Transition, TransitionSystem


class ExplorationLimitError(RuntimeError):
    """Raised by :func:`explore` with ``strict=True`` when a bound is hit."""


@dataclass(frozen=True)
class IndexedTransition:
    """A transition in index form: ``source``/``target`` are state indices."""

    source: int
    command: CommandLabel
    target: int


class ReachableGraph:
    """The explored region of a transition system.

    States are indexed ``0..n-1`` in discovery (BFS) order; index ``0..k-1``
    are the initial states.  The graph keeps, per state, the enabled command
    set and the outgoing indexed transitions, plus:

    * :attr:`complete` — whether exploration exhausted all reachable states;
    * :attr:`frontier` — indices of states whose successors were *not*
      expanded (non-empty exactly when incomplete).

    All verification-condition checking, fair-cycle detection, SCC analysis
    and synthesis run over this structure.  Index-native callers should use
    :attr:`analyses` (packed transition arrays, per-state enabled bitmasks
    and memoized SCC decomposition — computed once, cached here) instead of
    round-tripping through :class:`State` objects.
    """

    def __init__(
        self,
        system: TransitionSystem,
        states: Sequence[State],
        transitions: Sequence[IndexedTransition],
        enabled: Sequence[frozenset],
        initial_count: int,
        frontier: Iterable[int],
        index: Dict[State, int] | None = None,
    ) -> None:
        self._system = system
        self._states = tuple(states)
        if index is None:
            index = {s: i for i, s in enumerate(self._states)}
        self._index: Dict[State, int] = index
        if len(self._index) != len(self._states):
            raise ValueError("duplicate states in exploration result")
        self._transitions = tuple(transitions)
        self._enabled = tuple(enabled)
        self._initial_count = initial_count
        self._frontier = frozenset(frontier)
        out: List[List[IndexedTransition]] = [[] for _ in self._states]
        incoming: List[List[IndexedTransition]] = [[] for _ in self._states]
        for t in self._transitions:
            out[t.source].append(t)
            incoming[t.target].append(t)
        # Per-state tuples are built once; ``outgoing``/``incoming`` hand the
        # same tuple back on every call instead of re-allocating.
        self._out: Tuple[Tuple[IndexedTransition, ...], ...] = tuple(
            tuple(ts) for ts in out
        )
        self._in: Tuple[Tuple[IndexedTransition, ...], ...] = tuple(
            tuple(ts) for ts in incoming
        )
        self._analyses = None
        self._scc_cache = None  # full-graph SccDecomposition, set by decompose()

    # -- basic queries -------------------------------------------------

    @property
    def system(self) -> TransitionSystem:
        """The underlying transition system."""
        return self._system

    @property
    def states(self) -> Tuple[State, ...]:
        """All explored states, in discovery order."""
        return self._states

    @property
    def transitions(self) -> Tuple[IndexedTransition, ...]:
        """All explored transitions (between expanded states)."""
        return self._transitions

    @property
    def initial_indices(self) -> range:
        """Indices of the initial states."""
        return range(self._initial_count)

    @property
    def frontier(self) -> frozenset:
        """Indices of discovered-but-unexpanded states."""
        return self._frontier

    @property
    def complete(self) -> bool:
        """Whether the whole reachable state space was explored."""
        return not self._frontier

    def __len__(self) -> int:
        return len(self._states)

    def index_of(self, state: State) -> int:
        """The index of ``state``; raises ``KeyError`` if unexplored."""
        return self._index[state]

    def state_of(self, index: int) -> State:
        """The state at ``index``."""
        return self._states[index]

    def contains(self, state: State) -> bool:
        """Whether ``state`` was discovered."""
        return state in self._index

    def enabled_at(self, index: int) -> frozenset:
        """Enabled commands of the state at ``index``."""
        return self._enabled[index]

    def outgoing(self, index: int) -> Sequence[IndexedTransition]:
        """Outgoing transitions of the state at ``index``."""
        return self._out[index]

    def incoming(self, index: int) -> Sequence[IndexedTransition]:
        """Incoming transitions of the state at ``index``."""
        return self._in[index]

    def is_terminal(self, index: int) -> bool:
        """Whether the state at ``index`` enables no command."""
        return not self._enabled[index]

    def terminal_indices(self) -> List[int]:
        """Indices of all terminal (no command enabled) states."""
        return [i for i in range(len(self._states)) if not self._enabled[i]]

    def to_transition(self, t: IndexedTransition) -> Transition:
        """Convert an indexed transition back to state form."""
        return Transition(self._states[t.source], t.command, self._states[t.target])

    # -- engine view -----------------------------------------------------

    @property
    def analyses(self):
        """Cached :class:`repro.engine.analysis.GraphAnalyses` for this graph.

        Built on first use: packed ``(src, cmd_id, dst)`` arrays with CSR
        adjacency, per-state enabled bitmasks, and the memoized full-graph
        SCC decomposition.  Shared by every analysis over this graph.
        """
        if self._analyses is None:
            from repro.engine.analysis import GraphAnalyses

            self._analyses = GraphAnalyses(self)
        return self._analyses

    # -- derived facts ---------------------------------------------------

    def commands_executed_within(self, indices: Iterable[int]) -> frozenset:
        """Commands executed on transitions staying inside ``indices``.

        ``indices`` may be any iterable; passing a ``set``/``frozenset``
        skips re-materialisation, and the answer is assembled from cached
        bitmasks rather than per-call frozenset churn.
        """
        analyses = self.analyses
        return analyses.labels_of_mask(analyses.executed_mask_within(indices))

    def commands_enabled_within(self, indices: Iterable[int]) -> frozenset:
        """Commands enabled at some state of ``indices``."""
        analyses = self.analyses
        return analyses.labels_of_mask(analyses.enabled_mask_within(indices))

    def describe(self) -> str:
        """One-line summary used by reports."""
        status = "complete" if self.complete else f"bounded (frontier {len(self._frontier)})"
        return (
            f"{len(self._states)} states, {len(self._transitions)} transitions, "
            f"{status}"
        )


def explore(
    system: TransitionSystem,
    max_states: int | None = None,
    max_depth: int | None = None,
    strict: bool = False,
) -> ReachableGraph:
    """Breadth-first exploration of the reachable states of ``system``.

    Parameters
    ----------
    max_states:
        Stop expanding after this many states have been discovered.
    max_depth:
        Do not expand states deeper than this many transitions from the
        initial states.
    strict:
        If true, raise :class:`ExplorationLimitError` when a bound truncates
        exploration instead of returning an incomplete graph.
    """
    system.validate_commands()
    interner = StateInterner()
    states = interner.states
    depth: List[int] = []

    for s in system.initial_states():
        _, is_new = interner.intern(s)
        if is_new:
            depth.append(0)
    initial_count = len(states)
    if initial_count == 0:
        raise ValueError("system has no initial states")

    transitions: List[IndexedTransition] = []
    enabled_at: Dict[int, frozenset] = {}
    expanded: Set[int] = set()
    frontier: Set[int] = set()
    queue = deque(range(initial_count))
    truncated = False

    while queue:
        i = queue.popleft()
        if i in expanded:
            continue
        if max_depth is not None and depth[i] > max_depth:
            frontier.add(i)
            truncated = True
            continue
        expanded.add(i)
        state = states[i]
        successor_depth = depth[i] + 1
        at_budget = max_states is not None and len(states) >= max_states
        # ``expand`` hands back enabledness and successors from one guard
        # pass (and lets compiled systems answer from their successor
        # cache); unexpanded states get a guards-only query at the end.
        enabled_at[i], posts = system.expand(state)
        for command, target in posts:
            if at_budget:
                # At the state budget only already-interned successors may
                # be recorded; a genuinely new one is lost, so the source
                # becomes frontier.
                j = interner.lookup(target)
                if j is None:
                    frontier.add(i)
                    truncated = True
                    # The state stays expanded for the transitions already
                    # recorded; mark it frontier because this successor is
                    # lost.
                    break
            else:
                j, is_new = interner.intern(target)
                if is_new:
                    depth.append(successor_depth)
                    at_budget = max_states is not None and len(states) >= max_states
            transitions.append(IndexedTransition(i, command, j))
            if j not in expanded:
                queue.append(j)

    if truncated and strict:
        raise ExplorationLimitError(
            f"exploration truncated at {len(states)} states "
            f"(max_states={max_states}, max_depth={max_depth})"
        )

    # States discovered but never expanded (depth cut or budget exhaustion).
    for i in range(len(states)):
        if i not in expanded:
            frontier.add(i)

    enabled: List[frozenset] = [
        frozenset(
            enabled_at[i] if i in enabled_at else system.enabled(states[i])
        )
        for i in range(len(states))
    ]

    # Keep only transitions whose source was genuinely expanded; a partially
    # expanded frontier state may have recorded a prefix of its successors,
    # which would bias analyses that assume all-or-nothing expansion.
    kept = [t for t in transitions if t.source not in frontier]

    return ReachableGraph(
        system=system,
        states=states,
        transitions=kept,
        enabled=enabled,
        initial_count=initial_count,
        frontier=frontier,
        index=interner.index,
    )
