"""Reachability exploration with explicit completeness accounting.

The verification conditions are local, so checking them over a region of the
state space means enumerating that region's transitions.  For finite-state
programs :func:`explore` exhausts the reachable states and the resulting
:class:`ReachableGraph` is *complete*: every judgement made over it is a
theorem about the program.  For infinite-state programs (the paper's
``P1``–``P4`` over unbounded integers) exploration is *bounded* and the graph
records its frontier, so downstream analyses can — and do — say precisely
what was and was not covered, instead of silently truncating.

States are interned (hashed once at discovery, :mod:`repro.engine.interning`)
and every downstream analysis works on integer indices.  Transitions are
streamed straight into flat ``array('q')`` columns during exploration — the
graph never holds per-transition Python objects, so a million-state graph
fits comfortably in RAM; :class:`IndexedTransition` values are materialized
lazily as views when object-level callers ask for them.  Per-state enabled
sets are stored as command bitmasks over an interned label table, shared
with the cached engine analyses (:attr:`ReachableGraph.analyses`).

``explore(..., n_jobs=N)`` with ``N > 1`` dispatches to the hash-sharded
frontier-parallel explorer (:mod:`repro.engine.shard`) when the system can
be shipped to workers (:meth:`TransitionSystem.shard_spec`); results are
bit-identical to the serial path by construction and by differential test.
"""

from __future__ import annotations

import os
from array import array
from collections import deque
from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Sequence, Set, Tuple

from repro.engine.interning import StateInterner
from repro.engine.packed import CommandTable, PackedGraph
from repro.telemetry import core as telemetry
from repro.telemetry import events
from repro.ts.system import CommandLabel, State, Transition, TransitionSystem


class ExplorationLimitError(RuntimeError):
    """Raised by :func:`explore` with ``strict=True`` when a bound is hit."""


class StopExploration(Exception):
    """Raised by an :class:`ExplorationObserver` callback to stop exploring.

    The explorer catches it, abandons the state whose expansion was in
    flight (it becomes frontier, so its partially-observed transitions are
    dropped exactly like a budget-truncated source) and returns the graph
    built so far.  In the sharded explorer the signal also cancels the
    round loop, so no further round is dispatched to the worker pool.
    Stopping never sets the ``strict`` truncation flag — it is a consumer
    verdict, not a bound.
    """


class ExplorationObserver:
    """Streaming hooks into exploration (serial and sharded).

    Subclass and override any of the callbacks; the default implementations
    do nothing.  The event stream is **bit-identical between the serial and
    sharded explorers** — the sharded coordinator replays the serial
    merge order — and follows the contract:

    * ``on_state`` fires once per state, at intern time, in index order
      (initial states first, at depth 0);
    * ``on_transition`` fires when a transition is *recorded*, in
      transition order.  A source's transitions are contiguous;
    * ``on_expanded`` fires after a source's expansion completed without
      truncation — exactly the sources whose transitions survive into the
      final graph.  A source that hit the state budget mid-expansion gets
      no ``on_expanded``; consumers buffering its transitions must discard
      them (they are dropped from the graph too).

    Any callback may raise :class:`StopExploration` to end exploration
    early.  Observer callbacks run in the coordinator process only — they
    never ship to pool workers.
    """

    __slots__ = ()

    def on_state(self, index: int, state: State, depth: int) -> None:
        """A state was discovered and interned at ``index``."""

    def on_transition(
        self, source: int, command: CommandLabel, target: int
    ) -> None:
        """A transition was recorded (both endpoints already interned)."""

    def on_expanded(self, index: int, enabled: frozenset) -> None:
        """``index`` finished expanding; ``enabled`` is its command set.

        Every ``on_transition`` with this source has already fired, and all
        of them are final (they will appear in the returned graph)."""


@dataclass(frozen=True)
class IndexedTransition:
    """A transition in index form: ``source``/``target`` are state indices."""

    source: int
    command: CommandLabel
    target: int


#: Graphs at or below this many states memoize the per-state transition
#: tuples handed out by ``outgoing``/``incoming`` (repeat callers get the
#: same tuple back, as the old eager representation did).  Above it the
#: tuples are rebuilt per call so object views never pin O(m) dataclasses
#: on a million-state graph.
VIEW_MEMO_LIMIT = 1 << 17


class TransitionView(Sequence):
    """Lazy sequence of :class:`IndexedTransition` over the packed columns.

    Supports ``len``/iteration/indexing/slicing like the tuple it replaces;
    each access materializes fresh dataclass views from the ``(src, cmd,
    dst)`` arrays instead of keeping ``m`` objects alive.  Graphs small
    enough to afford the objects (≤ :data:`VIEW_MEMO_LIMIT` transitions)
    memoize the materialized tuple on first full iteration, so consumers
    that re-scan the transition list repeatedly (the seed reference
    algorithms do) pay the object construction once, as they did when the
    graph stored a tuple; million-state graphs stay lazy.
    """

    __slots__ = ("_src", "_cmd", "_dst", "_labels", "_items")

    def __init__(
        self, src: array, cmd: array, dst: array, labels: Tuple[str, ...]
    ) -> None:
        self._src = src
        self._cmd = cmd
        self._dst = dst
        self._labels = labels
        self._items: Tuple[IndexedTransition, ...] | None = None

    def __len__(self) -> int:
        return len(self._src)

    def __getitem__(self, item):
        if self._items is not None:
            return self._items[item]
        if isinstance(item, slice):
            indices = range(len(self._src))[item]
            return tuple(self._make(eid) for eid in indices)
        # range() handles negative indices and raises IndexError uniformly.
        return self._make(range(len(self._src))[item])

    def _make(self, eid: int) -> IndexedTransition:
        return IndexedTransition(
            self._src[eid], self._labels[self._cmd[eid]], self._dst[eid]
        )

    def __iter__(self) -> Iterator[IndexedTransition]:
        if self._items is None and len(self._src) <= VIEW_MEMO_LIMIT:
            self._items = tuple(
                self._make(eid) for eid in range(len(self._src))
            )
        if self._items is not None:
            return iter(self._items)
        labels = self._labels
        return (
            IndexedTransition(s, labels[c], d)
            for s, c, d in zip(self._src, self._cmd, self._dst)
        )

    def __eq__(self, other) -> bool:
        if isinstance(other, TransitionView):
            if len(self) != len(other):
                return False
            return all(a == b for a, b in zip(self, other))
        if isinstance(other, (tuple, list)):
            if len(self) != len(other):
                return False
            return all(a == b for a, b in zip(self, other))
        return NotImplemented

    __hash__ = None  # mutable-adjacent view; compare by content only

    def __repr__(self) -> str:
        return f"<TransitionView of {len(self)} transitions>"


class ReachableGraph:
    """The explored region of a transition system.

    States are indexed ``0..n-1`` in discovery (BFS) order; index ``0..k-1``
    are the initial states.  The graph stores transitions as three parallel
    integer columns (CSR-indexed on demand) and per-state enabled-command
    bitmasks over an interned :class:`CommandTable`, plus:

    * :attr:`complete` — whether exploration exhausted all reachable states;
    * :attr:`frontier` — indices of states whose successors were *not*
      expanded (non-empty exactly when incomplete).

    All verification-condition checking, fair-cycle detection, SCC analysis
    and synthesis run over this structure.  Index-native callers should use
    :attr:`analyses` (which shares the graph's own packed arrays and masks
    — construction is O(1)) instead of round-tripping through
    :class:`State` objects.
    """

    def __init__(
        self,
        system: TransitionSystem,
        states: Sequence[State],
        transitions: Sequence[IndexedTransition],
        enabled: Sequence[frozenset],
        initial_count: int,
        frontier: Iterable[int],
        index: Dict[State, int] | None = None,
    ) -> None:
        # Object-level construction path (disk cache, hand-built graphs):
        # convert to the packed column form the graph actually stores.
        labels = list(system.commands())
        ids = {label: k for k, label in enumerate(labels)}
        src = array("q")
        cmd = array("q")
        dst = array("q")
        for t in transitions:
            k = ids.get(t.command)
            if k is None:
                k = len(labels)
                ids[t.command] = k
                labels.append(t.command)
            src.append(t.source)
            cmd.append(k)
            dst.append(t.target)
        masks: List[int] = []
        for commands in enabled:
            mask = 0
            for label in commands:
                k = ids.get(label)
                if k is None:
                    k = len(labels)
                    ids[label] = k
                    labels.append(label)
                mask |= 1 << k
            masks.append(mask)
        if index is None:
            index = {s: i for i, s in enumerate(states)}
            if len(index) != len(states):
                raise ValueError("duplicate states in exploration result")
        self._setup(
            system=system,
            states=tuple(states),
            labels=labels,
            src=src,
            cmd=cmd,
            dst=dst,
            enabled_masks=masks,
            initial_count=initial_count,
            frontier=frozenset(frontier),
            index=index,
        )

    @classmethod
    def from_arrays(
        cls,
        system: TransitionSystem,
        states: Sequence[State],
        labels: Sequence[str],
        src: array,
        cmd: array,
        dst: array,
        enabled_masks: Sequence[int],
        initial_count: int,
        frontier: Iterable[int],
        index: Dict[State, int] | None,
    ) -> "ReachableGraph":
        """Adopt already-packed exploration output.

        Used by the explorers (list-of-states + interner index) and by the
        graph store's mmap warm path, which hands in lazy mmap-backed
        sequences: a non-list/tuple ``states`` sequence is adopted as-is
        (states materialize on access), ``src``/``cmd``/``dst``/
        ``enabled_masks`` may be ``memoryview`` casts over a mapping, and
        ``index=None`` defers building the ``State → index`` map until an
        object-level lookup first needs it.
        """
        graph = cls.__new__(cls)
        graph._setup(
            system=system,
            states=tuple(states)
            if isinstance(states, (tuple, list))
            else states,
            labels=list(labels),
            src=src,
            cmd=cmd,
            dst=dst,
            enabled_masks=enabled_masks,
            initial_count=initial_count,
            frontier=frozenset(frontier),
            index=index,
        )
        return graph

    def _setup(
        self,
        system: TransitionSystem,
        states: Sequence[State],
        labels: List[str],
        src: array,
        cmd: array,
        dst: array,
        enabled_masks: Sequence[int],
        initial_count: int,
        frontier: frozenset,
        index: Dict[State, int] | None,
    ) -> None:
        self._system = system
        self._states = states
        self._index = index  # None until an object-level lookup needs it
        self._table = CommandTable(labels)
        self._src = src
        self._cmd = cmd
        self._dst = dst
        # ``array('Q')`` when every mask fits 64 bits (the common case);
        # already-packed masks (``array('Q')`` or an mmap-backed
        # ``memoryview`` cast) are adopted without copying; a plain list
        # of (big) ints otherwise.
        if isinstance(enabled_masks, memoryview) or (
            isinstance(enabled_masks, array)
            and enabled_masks.typecode == "Q"
        ):
            self._enabled_masks: Sequence[int] = enabled_masks
        elif len(labels) <= 64:
            self._enabled_masks = array("Q", enabled_masks)
        else:
            self._enabled_masks = list(enabled_masks)
        self._initial_count = initial_count
        self._frontier = frontier
        #: ``column key → (path, words, typecode)`` for columns whose bytes
        #: already live in a single on-disk chunk (filled by the graph
        #: store's mmap-warm loader).  Consumers that ship columns to
        #: workers — the verification plane — adopt these by path instead
        #: of copying them through shared memory.
        self.column_files: Dict[str, tuple] = {}
        self._packed: PackedGraph | None = None
        self._in_start: array | None = None
        self._in_eid: array | None = None
        memoize = len(states) <= VIEW_MEMO_LIMIT
        self._out_memo: Dict[int, tuple] | None = {} if memoize else None
        self._in_memo: Dict[int, tuple] | None = {} if memoize else None
        self._view: TransitionView | None = None
        self._analyses = None
        self._scc_cache = None  # full-graph SccDecomposition, set by decompose()

    # -- basic queries -------------------------------------------------

    @property
    def system(self) -> TransitionSystem:
        """The underlying transition system."""
        return self._system

    @property
    def states(self) -> Sequence[State]:
        """All explored states, in discovery order (a tuple for explorer
        output; a lazy mmap-backed column view for store-loaded graphs)."""
        return self._states

    @property
    def transitions(self) -> TransitionView:
        """All explored transitions (between expanded states), as a lazy
        sequence view over the packed columns.  The view instance is
        shared across accesses so its iteration memo survives."""
        if self._view is None:
            self._view = TransitionView(
                self._src, self._cmd, self._dst, self._table.labels
            )
        return self._view

    @property
    def initial_indices(self) -> range:
        """Indices of the initial states."""
        return range(self._initial_count)

    @property
    def frontier(self) -> frozenset:
        """Indices of discovered-but-unexpanded states."""
        return self._frontier

    @property
    def complete(self) -> bool:
        """Whether the whole reachable state space was explored."""
        return not self._frontier

    def __len__(self) -> int:
        return len(self._states)

    def _ensure_index(self) -> Dict[State, int]:
        """The ``State → index`` map, built on first object-level lookup.

        Graphs loaded from the mmap-backed store adopt their states as a
        lazy column view; materializing a million state objects to build
        this dict is deferred until something actually asks."""
        if self._index is None:
            index = {s: i for i, s in enumerate(self._states)}
            if len(index) != len(self._states):
                raise ValueError("duplicate states in exploration result")
            self._index = index
        return self._index

    def index_of(self, state: State) -> int:
        """The index of ``state``; raises ``KeyError`` if unexplored."""
        return self._ensure_index()[state]

    def state_of(self, index: int) -> State:
        """The state at ``index``."""
        return self._states[index]

    def contains(self, state: State) -> bool:
        """Whether ``state`` was discovered."""
        return state in self._ensure_index()

    def enabled_at(self, index: int) -> frozenset:
        """Enabled commands of the state at ``index`` (cached per mask)."""
        return self._table.labels_of_mask(self._enabled_masks[index])

    def outgoing(self, index: int) -> Sequence[IndexedTransition]:
        """Outgoing transitions of the state at ``index``."""
        memo = self._out_memo
        if memo is not None:
            cached = memo.get(index)
            if cached is not None:
                return cached
        packed = self.packed
        labels = self._table.labels
        cmd = self._cmd
        dst = self._dst
        result = tuple(
            IndexedTransition(index, labels[cmd[e]], dst[e])
            for e in packed.out_eids(index)
        )
        if memo is not None:
            memo[index] = result
        return result

    def incoming(self, index: int) -> Sequence[IndexedTransition]:
        """Incoming transitions of the state at ``index``."""
        memo = self._in_memo
        if memo is not None:
            cached = memo.get(index)
            if cached is not None:
                return cached
        if self._in_start is None:
            self._build_incoming_csr()
        labels = self._table.labels
        src = self._src
        cmd = self._cmd
        result = tuple(
            IndexedTransition(src[e], labels[cmd[e]], index)
            for e in self._in_eid[self._in_start[index] : self._in_start[index + 1]]
        )
        if memo is not None:
            memo[index] = result
        return result

    def _build_incoming_csr(self) -> None:
        n = len(self._states)
        dst = self._dst
        counts = [0] * (n + 1)
        for d in dst:
            counts[d + 1] += 1
        for i in range(n):
            counts[i + 1] += counts[i]
        in_start = array("q", counts)
        in_eid = array("q", bytes(8 * len(dst)))
        cursor = list(in_start[:n])
        for eid in range(len(dst)):
            d = dst[eid]
            in_eid[cursor[d]] = eid
            cursor[d] += 1
        self._in_start = in_start
        self._in_eid = in_eid

    def is_terminal(self, index: int) -> bool:
        """Whether the state at ``index`` enables no command."""
        return not self._enabled_masks[index]

    def terminal_indices(self) -> List[int]:
        """Indices of all terminal (no command enabled) states."""
        masks = self._enabled_masks
        return [i for i in range(len(self._states)) if not masks[i]]

    def to_transition(self, t: IndexedTransition) -> Transition:
        """Convert an indexed transition back to state form."""
        return Transition(self._states[t.source], t.command, self._states[t.target])

    # -- engine view -----------------------------------------------------

    @property
    def command_table(self) -> CommandTable:
        """The graph's interned command-label table."""
        return self._table

    @property
    def packed(self) -> PackedGraph:
        """The CSR adjacency over the graph's own transition columns.

        Indexed lazily on first use (a single counting sort); the columns
        themselves were filled during exploration, so no per-transition
        objects are ever rebuilt.
        """
        if self._packed is None:
            self._packed = PackedGraph.from_columns(
                len(self._states), self._src, self._cmd, self._dst
            )
        return self._packed

    @property
    def enabled_masks(self) -> Sequence[int]:
        """Per-state enabled-command bitmasks over :attr:`command_table`."""
        return self._enabled_masks

    @property
    def transition_columns(self) -> Tuple[array, array, array]:
        """The raw ``(src, cmd_id, dst)`` columns, in transition order."""
        return self._src, self._cmd, self._dst

    @property
    def analyses(self):
        """Cached :class:`repro.engine.analysis.GraphAnalyses` for this graph.

        Shares the graph's own command table, packed arrays and enabled
        bitmasks — construction does no per-transition work — and adds the
        memoized full-graph SCC decomposition plus region-query helpers.
        """
        if self._analyses is None:
            from repro.engine.analysis import GraphAnalyses

            self._analyses = GraphAnalyses(self)
        return self._analyses

    # -- derived facts ---------------------------------------------------

    def commands_executed_within(self, indices: Iterable[int]) -> frozenset:
        """Commands executed on transitions staying inside ``indices``.

        ``indices`` may be any iterable; passing a ``set``/``frozenset``
        skips re-materialisation, and the answer is assembled from cached
        bitmasks rather than per-call frozenset churn.
        """
        analyses = self.analyses
        return analyses.labels_of_mask(analyses.executed_mask_within(indices))

    def commands_enabled_within(self, indices: Iterable[int]) -> frozenset:
        """Commands enabled at some state of ``indices``."""
        analyses = self.analyses
        return analyses.labels_of_mask(analyses.enabled_mask_within(indices))

    def describe(self) -> str:
        """One-line summary used by reports."""
        status = "complete" if self.complete else f"bounded (frontier {len(self._frontier)})"
        return (
            f"{len(self._states)} states, {len(self._src)} transitions, "
            f"{status}"
        )


def explore(
    system: TransitionSystem,
    max_states: int | None = None,
    max_depth: int | None = None,
    strict: bool = False,
    n_jobs: int | None = None,
    observer: ExplorationObserver | None = None,
) -> ReachableGraph:
    """Breadth-first exploration of the reachable states of ``system``.

    Parameters
    ----------
    max_states:
        Stop expanding after this many states have been discovered.
    max_depth:
        Do not expand states deeper than this many transitions from the
        initial states.
    strict:
        If true, raise :class:`ExplorationLimitError` when a bound truncates
        exploration instead of returning an incomplete graph.
    n_jobs:
        With ``n_jobs > 1`` (or ``-1`` for all cores) and a system that can
        be shipped to workers (:meth:`TransitionSystem.shard_spec`),
        exploration is hash-sharded across the persistent worker pool; the
        result is bit-identical to the serial path.  Systems without a
        shard spec fall back to serial exploration.
    observer:
        An :class:`ExplorationObserver` receiving streaming callbacks on
        state discovery, transition emission and state completion, with
        :class:`StopExploration` as the early-exit control signal.  The
        event stream is identical under serial and sharded exploration.
    """
    system.validate_commands()
    if not telemetry.enabled():
        graph = _explore_dispatch(
            system, max_states, max_depth, strict, n_jobs, observer
        )
        _emit_explore_summary(system, graph)
        return graph
    # Telemetry wrapper: one span around the whole exploration, totals
    # counted once at the end (never inside the BFS loop), and the
    # system's successor-cache counters unified into the registry as the
    # delta this exploration contributed.
    cache_stats = getattr(system, "successor_cache_stats", None)
    before = cache_stats() if cache_stats is not None else None
    with telemetry.span(
        "explore", system=getattr(system, "name", type(system).__name__)
    ) as sp:
        try:
            graph = _explore_dispatch(
                system, max_states, max_depth, strict, n_jobs, observer
            )
        except ExplorationLimitError:
            telemetry.count("explore.strict_aborts")
            raise
        telemetry.count("explore.runs")
        telemetry.count("explore.states", len(graph))
        telemetry.count("explore.transitions", len(graph.transition_columns[0]))
        telemetry.count("explore.frontier_states", len(graph.frontier))
        if not graph.complete:
            telemetry.count("explore.truncated")
        if before is not None:
            hits, misses = cache_stats()
            telemetry.count("succache.hit", hits - before[0])
            telemetry.count("succache.miss", misses - before[1])
        sp.set("states", len(graph))
        sp.set("complete", graph.complete)
    _emit_explore_summary(system, graph)
    return graph


def _emit_explore_summary(system: TransitionSystem, graph: ReachableGraph) -> None:
    """One ``explore.summary`` event per finished exploration — a phase
    boundary, so it goes to the always-on flight recorder unconditionally."""
    events.emit(
        events.EXPLORE_SUMMARY,
        system=getattr(system, "name", type(system).__name__),
        states=len(graph),
        transitions=len(graph.transition_columns[0]),
        frontier=len(graph.frontier),
        complete=graph.complete,
    )


def _explore_dispatch(
    system: TransitionSystem,
    max_states: int | None,
    max_depth: int | None,
    strict: bool,
    n_jobs: int | None,
    observer: ExplorationObserver | None = None,
) -> ReachableGraph:
    """Serial-vs-sharded dispatch (the pre-telemetry body of ``explore``)."""
    if n_jobs is not None:
        from repro.engine.parallel import _FORCE_ENV, resolve_jobs

        jobs = resolve_jobs(n_jobs)
        # On a single core every round would be demoted to in-process
        # execution anyway, but the sharded coordinator's encode/merge
        # framing is not free — skip it entirely so ``--jobs N`` never
        # loses to serial (the force env keeps tests on the sharded path).
        # Value-plane systems are the exception: their round loop expands
        # through the batched kernels, which beat the serial per-state
        # path with or without a pool, so they always take the
        # coordinator when parallelism was requested.
        multicore = (os.cpu_count() or 1) > 1
        forced = os.environ.get(_FORCE_ENV) == "1"
        use_coordinator = multicore or forced
        if jobs > 1 and not use_coordinator:
            from repro.engine.shard import value_plane_of

            use_coordinator = value_plane_of(system) is not None
        if jobs > 1 and use_coordinator:
            spec = system.shard_spec()
            if spec is not None:
                from repro.engine.shard import explore_sharded

                return explore_sharded(
                    system,
                    spec,
                    max_states=max_states,
                    max_depth=max_depth,
                    strict=strict,
                    n_jobs=jobs,
                    observer=observer,
                )
    return _explore_serial(system, max_states, max_depth, strict, observer)


def _stop_counters(states_discovered: int) -> None:
    """Phase-boundary telemetry for one :class:`StopExploration` signal."""
    telemetry.count("stream.stops")
    telemetry.count("stream.states_at_stop", states_discovered)


def _explore_serial(
    system: TransitionSystem,
    max_states: int | None,
    max_depth: int | None,
    strict: bool,
    observer: ExplorationObserver | None = None,
    expand=None,
    enabled_fn=None,
) -> ReachableGraph:
    """The serial BFS.

    ``expand``/``enabled_fn`` override ``system.expand``/``system.enabled``
    per call — the graph store's incremental re-exploration substitutes a
    replaying expander here while keeping every other statement of the
    loop (interning, budgets, observer stream, frontier semantics)
    untouched, which is what makes its output bit-identical to a stock
    exploration.
    """
    expand_fn = system.expand if expand is None else expand
    interner = StateInterner()
    states = interner.states
    depth = array("q")

    for s in system.initial_states():
        _, is_new = interner.intern(s)
        if is_new:
            depth.append(0)
    initial_count = len(states)
    if initial_count == 0:
        raise ValueError("system has no initial states")

    labels: List[str] = list(system.commands())
    label_ids: Dict[str, int] = {label: k for k, label in enumerate(labels)}
    src = array("q")
    cmd = array("q")
    dst = array("q")
    # Parallel to ``states``: enabled mask (-1 = not yet computed) and an
    # expanded flag.  Flat arrays, not dicts/sets — a million-state run
    # must not allocate a million boxed ints of bookkeeping.
    emask_of = [-1] * initial_count
    expanded = bytearray(initial_count)
    frontier: Set[int] = set()
    queue = deque(range(initial_count))
    truncated = False
    # ``None`` unless live progress was opted into; the disabled-mode cost
    # of the display is the single ``is not None`` test per expansion.
    # Same deal for the event heartbeat: ``None`` unless an event consumer
    # (an NDJSON sink, the exposition server) is attached.  The stride
    # lives here, not inside the ticker: computing the tick arguments
    # (three ``len`` calls) per expansion costs several percent on a
    # million-state family, so only every stride-th expansion builds them.
    progress = telemetry.progress_reporter()
    ticker = events.exploration_ticker()
    tick_stride = events.PROGRESS_STRIDE
    ticks = 0

    i = -1
    finalized = -1
    try:
        if observer is not None:
            for idx in range(initial_count):
                observer.on_state(idx, states[idx], 0)
        while queue:
            i = queue.popleft()
            if expanded[i]:
                continue
            if max_depth is not None and depth[i] > max_depth:
                frontier.add(i)
                truncated = True
                continue
            if progress is not None:
                progress.maybe(len(states), len(queue), depth[i])
            if ticker is not None:
                ticks += 1
                if not ticks % tick_stride:
                    ticker.tick(len(states), len(queue), depth[i])
            expanded[i] = 1
            state = states[i]
            successor_depth = depth[i] + 1
            at_budget = max_states is not None and len(states) >= max_states
            # ``expand`` hands back enabledness and successors from one guard
            # pass (and lets compiled systems answer from their successor
            # cache); unexpanded states get a guards-only query at the end.
            enabled_set, posts = expand_fn(state)
            mask = 0
            for label in enabled_set:
                k = label_ids.get(label)
                if k is None:
                    k = len(labels)
                    label_ids[label] = k
                    labels.append(label)
                mask |= 1 << k
            emask_of[i] = mask
            for command, target in posts:
                if at_budget:
                    # At the state budget only already-interned successors may
                    # be recorded; a genuinely new one is lost, so the source
                    # becomes frontier.
                    j = interner.lookup(target)
                    if j is None:
                        frontier.add(i)
                        truncated = True
                        # The state stays expanded for the transitions already
                        # recorded; mark it frontier because this successor is
                        # lost.
                        break
                else:
                    j, is_new = interner.intern(target)
                    if is_new:
                        depth.append(successor_depth)
                        emask_of.append(-1)
                        expanded.append(0)
                        at_budget = max_states is not None and len(states) >= max_states
                        if observer is not None:
                            observer.on_state(j, target, successor_depth)
                k = label_ids.get(command)
                if k is None:
                    k = len(labels)
                    label_ids[command] = k
                    labels.append(command)
                src.append(i)
                cmd.append(k)
                dst.append(j)
                if not expanded[j]:
                    queue.append(j)
                if observer is not None:
                    observer.on_transition(i, command, j)
            else:
                # The posts loop completed without a budget break: the
                # state's recorded transitions are final.
                if observer is not None:
                    finalized = i
                    observer.on_expanded(i, enabled_set)
    except StopExploration:
        # A state whose expansion was still in flight reverts to frontier,
        # so its partially-observed transitions are dropped by
        # ``_finish_graph`` like any other truncated source; a stop raised
        # from ``on_expanded`` keeps the (final, already consumed)
        # transitions.  ``truncated`` is deliberately not set: stopping is
        # a consumer verdict, not a bound.
        if i >= 0 and i != finalized and expanded[i]:
            expanded[i] = 0
        _stop_counters(len(states))

    if progress is not None:
        progress.close()
    return _finish_graph(
        system=system,
        interner=interner,
        labels=labels,
        label_ids=label_ids,
        src=src,
        cmd=cmd,
        dst=dst,
        emask_of=emask_of,
        expanded=expanded,
        frontier=frontier,
        initial_count=initial_count,
        truncated=truncated,
        strict=strict,
        max_states=max_states,
        max_depth=max_depth,
        enabled_fn=enabled_fn,
    )


def _finish_graph(
    system: TransitionSystem,
    interner: StateInterner,
    labels: List[str],
    label_ids: Dict[str, int],
    src: array,
    cmd: array,
    dst: array,
    emask_of: List[int],
    expanded: bytearray,
    frontier: Set[int],
    initial_count: int,
    truncated: bool,
    strict: bool,
    max_states: int | None,
    max_depth: int | None,
    enabled_fn=None,
) -> ReachableGraph:
    """Shared tail of the serial and sharded explorers.

    Applies the strict-mode check, completes the frontier with never-expanded
    states, fills in guards-only enabled masks for them, drops transitions
    recorded from partially-expanded frontier sources, and assembles the
    compact graph.  Keeping this in one place is part of the bit-identity
    argument: both explorers feed it the same intermediate state.
    """
    states = interner.states

    if truncated and strict:
        raise ExplorationLimitError(
            f"exploration truncated at {len(states)} states "
            f"(max_states={max_states}, max_depth={max_depth})"
        )

    # States discovered but never expanded (depth cut or budget exhaustion).
    for i in range(len(states)):
        if not expanded[i]:
            frontier.add(i)

    query_enabled = system.enabled if enabled_fn is None else enabled_fn
    for i in range(len(states)):
        if emask_of[i] < 0:
            mask = 0
            for label in query_enabled(states[i]):
                k = label_ids.get(label)
                if k is None:
                    k = len(labels)
                    label_ids[label] = k
                    labels.append(label)
                mask |= 1 << k
            emask_of[i] = mask

    # Keep only transitions whose source was genuinely expanded; a partially
    # expanded frontier state may have recorded a prefix of its successors,
    # which would bias analyses that assume all-or-nothing expansion.
    if frontier:
        ksrc = array("q")
        kcmd = array("q")
        kdst = array("q")
        for eid in range(len(src)):
            s = src[eid]
            if s in frontier:
                continue
            ksrc.append(s)
            kcmd.append(cmd[eid])
            kdst.append(dst[eid])
        src, cmd, dst = ksrc, kcmd, kdst

    return ReachableGraph.from_arrays(
        system=system,
        states=states,
        labels=labels,
        src=src,
        cmd=cmd,
        dst=dst,
        enabled_masks=emask_of,
        initial_count=initial_count,
        frontier=frontier,
        index=interner.index,
    )
