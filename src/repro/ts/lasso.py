"""Paths and lassos — finite representations of infinite computations.

An ultimately periodic infinite computation ``stem · cycle^ω`` is the only
kind a finite-state system needs (if any fair infinite computation exists,
an ultimately periodic fair one does), and the only kind that can be handed
to code.  Fairness of a lasso is decidable by inspecting its cycle:
a command is *executed infinitely often* iff it labels a cycle transition,
and *enabled infinitely often* iff it is enabled at some cycle state.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, List, Sequence, Tuple

from repro.ts.explore import IndexedTransition, ReachableGraph
from repro.ts.system import CommandLabel, State, Transition


@dataclass(frozen=True)
class Path:
    """A finite path: ``states[i] --commands[i]--> states[i+1]``."""

    states: Tuple[State, ...]
    commands: Tuple[CommandLabel, ...]

    def __post_init__(self) -> None:
        if len(self.states) != len(self.commands) + 1:
            raise ValueError(
                f"a path over {len(self.commands)} transitions needs "
                f"{len(self.commands) + 1} states, got {len(self.states)}"
            )

    def __len__(self) -> int:
        return len(self.commands)

    @property
    def first(self) -> State:
        """The starting state."""
        return self.states[0]

    @property
    def last(self) -> State:
        """The final state."""
        return self.states[-1]

    def transitions(self) -> Iterator[Transition]:
        """The transitions along the path, in order."""
        for i, command in enumerate(self.commands):
            yield Transition(self.states[i], command, self.states[i + 1])

    def extend(self, command: CommandLabel, target: State) -> "Path":
        """The path with one more transition appended."""
        return Path(self.states + (target,), self.commands + (command,))

    @staticmethod
    def singleton(state: State) -> "Path":
        """The empty path sitting at ``state``."""
        return Path((state,), ())


@dataclass(frozen=True)
class Lasso:
    """An ultimately periodic computation ``stem · cycle^ω``.

    ``stem`` ends where ``cycle`` begins and ends (``cycle.first ==
    cycle.last == stem.last``); the cycle must contain at least one
    transition.
    """

    stem: Path
    cycle: Path

    def __post_init__(self) -> None:
        if len(self.cycle) == 0:
            raise ValueError("a lasso's cycle needs at least one transition")
        if self.cycle.first != self.cycle.last:
            raise ValueError("cycle must start and end at the same state")
        if self.stem.last != self.cycle.first:
            raise ValueError("stem must end where the cycle starts")

    @property
    def knot(self) -> State:
        """The state where the cycle is entered."""
        return self.cycle.first

    def cycle_states(self) -> Tuple[State, ...]:
        """The distinct positions of the cycle (without repeating the knot)."""
        return self.cycle.states[:-1]

    def executed_infinitely_often(self) -> frozenset:
        """Commands executed on the cycle — hence infinitely often."""
        return frozenset(self.cycle.commands)

    def prefix(self, length: int) -> Path:
        """The finite prefix of the induced infinite computation."""
        states: List[State] = list(self.stem.states)
        commands: List[CommandLabel] = list(self.stem.commands)
        while len(commands) < length:
            for i, command in enumerate(self.cycle.commands):
                if len(commands) >= length:
                    break
                commands.append(command)
                states.append(self.cycle.states[i + 1])
        return Path(tuple(states[: length + 1]), tuple(commands[:length]))

    def describe(self) -> str:
        """Short rendering ``s0 -a-> s1 ... (loop: ...)``."""
        stem_part = " ".join(
            f"{s!r} -{c}->" for s, c in zip(self.stem.states, self.stem.commands)
        )
        cycle_part = " ".join(
            f"{s!r} -{c}->" for s, c in zip(self.cycle.states, self.cycle.commands)
        )
        return f"{stem_part} [loop: {cycle_part} {self.cycle.last!r}]"


def lasso_from_indices(
    graph: ReachableGraph,
    stem_transitions: Sequence[IndexedTransition],
    cycle_transitions: Sequence[IndexedTransition],
) -> Lasso:
    """Build a :class:`Lasso` from indexed transitions of ``graph``.

    The stem may be empty, in which case it sits at the cycle's first state
    (which must then be initial for the lasso to be a computation — callers
    enforce that where it matters).
    """
    if not cycle_transitions:
        raise ValueError("cycle_transitions must be non-empty")

    def to_path(transitions: Sequence[IndexedTransition], at: int) -> Path:
        if not transitions:
            return Path.singleton(graph.state_of(at))
        states = [graph.state_of(transitions[0].source)]
        commands: List[CommandLabel] = []
        for t in transitions:
            if graph.state_of(t.source) != states[-1]:
                raise ValueError("transitions do not chain")
            commands.append(t.command)
            states.append(graph.state_of(t.target))
        return Path(tuple(states), tuple(commands))

    cycle = to_path(cycle_transitions, cycle_transitions[0].source)
    stem = to_path(stem_transitions, cycle_transitions[0].source)
    return Lasso(stem=stem, cycle=cycle)


def find_path_indices(
    graph: ReachableGraph,
    sources: Iterable[int],
    target: int,
    allowed: Iterable[int] | None = None,
) -> List[IndexedTransition]:
    """BFS a transition sequence from any of ``sources`` to ``target``.

    ``allowed`` optionally restricts intermediate states.  Raises
    ``ValueError`` when unreachable — callers use this for witness
    construction where reachability was already established.
    """
    allowed_set = None if allowed is None else set(allowed)
    from collections import deque

    parents: dict[int, IndexedTransition] = {}
    seen = set(sources)
    queue = deque(seen)
    if target in seen:
        return []
    while queue:
        node = queue.popleft()
        for t in graph.outgoing(node):
            if allowed_set is not None and t.target not in allowed_set:
                continue
            if t.target in seen:
                continue
            seen.add(t.target)
            parents[t.target] = t
            if t.target == target:
                chain: List[IndexedTransition] = []
                current = target
                while current in parents:
                    step = parents[current]
                    chain.append(step)
                    current = step.source
                chain.reverse()
                return chain
            queue.append(t.target)
    raise ValueError(f"state index {target} not reachable from {sorted(set(sources))}")


def cycle_through_all(
    graph: ReachableGraph,
    component: Sequence[int],
) -> List[IndexedTransition]:
    """A cycle inside ``component`` traversing *every* internal transition.

    Such a "grand tour" exists for any SCC with at least one internal
    transition: walk to each untaken transition in turn and finally walk
    back to the start.  The tour executes every command executed anywhere in
    the component — which is what makes it the canonical *fair* cycle when
    no command is enabled-but-never-executed there.
    """
    inside = set(component)
    internal = [
        t for i in component for t in graph.outgoing(i) if t.target in inside
    ]
    if not internal:
        raise ValueError("component has no internal transition")
    tour: List[IndexedTransition] = []
    position = internal[0].source
    remaining = list(internal)
    while remaining:
        # Pick any remaining transition; walk to its source, then take it.
        step = remaining.pop()
        walk = find_path_indices(graph, [position], step.source, allowed=inside)
        tour.extend(walk)
        tour.append(step)
        position = step.target
    tour.extend(find_path_indices(graph, [position], internal[0].source, allowed=inside))
    if not tour:
        raise ValueError("failed to build a tour")
    return tour
