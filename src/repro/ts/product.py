"""Composition of transition systems.

:class:`InterleavingComposition` is the distributed-systems construction the
paper's motivation is about: several processes, each a transition system
with its own commands, interleaved into one system whose command set is the
disjoint union.  Strong fairness over the composed command set then says
exactly "no process action that keeps being enabled is starved" — the
hypothesis the stack assertions reason under.
"""

from __future__ import annotations

from typing import Iterable, Sequence, Tuple

from repro.ts.system import CommandLabel, State, TransitionSystem


class InterleavingComposition(TransitionSystem):
    """Asynchronous (interleaving) parallel composition.

    The composite state is a tuple of component states.  Command labels are
    prefixed ``"{name}.{label}"`` to keep them disjoint; a composite
    transition moves exactly one component, which matches the paper's
    "execution of exactly one command" model.

    Optionally a ``shared_guard`` may veto component moves based on the full
    composite state (used to model shared resources, e.g. forks in the
    dining-philosophers workload): a command is enabled iff its component
    enables it *and* the guard admits it.
    """

    def __init__(
        self,
        processes: Sequence[Tuple[str, TransitionSystem]],
        shared_guard=None,
    ) -> None:
        if not processes:
            raise ValueError("composition needs at least one process")
        names = [name for name, _ in processes]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate process names: {names}")
        self._processes = tuple(processes)
        self._shared_guard = shared_guard
        self._commands: Tuple[CommandLabel, ...] = tuple(
            f"{name}.{label}"
            for name, system in self._processes
            for label in system.commands()
        )

    def commands(self) -> Tuple[CommandLabel, ...]:
        return self._commands

    def initial_states(self) -> Iterable[State]:
        def expand(position: int, prefix: tuple) -> Iterable[tuple]:
            if position == len(self._processes):
                yield prefix
                return
            _, system = self._processes[position]
            for s in system.initial_states():
                yield from expand(position + 1, prefix + (s,))

        return expand(0, ())

    def _admits(self, state: tuple, position: int, label: CommandLabel) -> bool:
        if self._shared_guard is None:
            return True
        name = self._processes[position][0]
        return self._shared_guard(state, name, label)

    def enabled(self, state: State) -> frozenset:
        result = []
        for position, (name, system) in enumerate(self._processes):
            for label in system.enabled(state[position]):
                if self._admits(state, position, label):
                    result.append(f"{name}.{label}")
        return frozenset(result)

    def post(self, state: State) -> Iterable[Tuple[CommandLabel, State]]:
        for position, (name, system) in enumerate(self._processes):
            for label, target in system.post(state[position]):
                if not self._admits(state, position, label):
                    continue
                composite = tuple(
                    target if k == position else state[k]
                    for k in range(len(self._processes))
                )
                yield f"{name}.{label}", composite


class GuardedOverlay(TransitionSystem):
    """A system with extra, state-global enabling restrictions.

    Wraps a base system; ``restriction(state, command)`` may disable
    commands.  Used by transformations (e.g. the explicit-scheduler
    baseline) that prune transitions without touching the base model.
    """

    def __init__(self, base: TransitionSystem, restriction) -> None:
        self._base = base
        self._restriction = restriction

    def commands(self) -> Tuple[CommandLabel, ...]:
        return self._base.commands()

    def initial_states(self) -> Iterable[State]:
        return self._base.initial_states()

    def enabled(self, state: State) -> frozenset:
        return frozenset(
            c for c in self._base.enabled(state) if self._restriction(state, c)
        )

    def post(self, state: State) -> Iterable[Tuple[CommandLabel, State]]:
        for command, target in self._base.post(state):
            if self._restriction(state, command):
                yield command, target
