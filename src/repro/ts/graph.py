"""Strongly connected components and condensation over explored graphs.

Fair-cycle detection, measure synthesis and the helpful-directions baseline
all decompose the reachable graph into SCCs.  Tarjan's algorithm is
implemented iteratively (explored graphs can be deep, and Python's recursion
limit is not a correctness budget).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence, Set, Tuple

from repro.ts.explore import IndexedTransition, ReachableGraph


@dataclass(frozen=True)
class SccDecomposition:
    """SCCs of a (sub)graph.

    ``components`` lists each SCC as a tuple of state indices, in *reverse
    topological order* of the condensation: component 0 has no outgoing
    edges to other components.  That order is exactly what rank-based
    measures need — ``μ^T`` can simply be the component's position.
    ``component_of`` maps a state index to its component's position.
    """

    components: Tuple[Tuple[int, ...], ...]
    component_of: Dict[int, int]

    def rank_of_state(self, index: int) -> int:
        """The reverse-topological rank of the component of ``index``."""
        return self.component_of[index]

    def is_trivial(self, component: int, edges_inside) -> bool:
        """Whether the component has no internal transition.

        A single state with no self-loop is trivial; any component hosting
        at least one internal transition is where fairness reasoning must
        happen.
        """
        return not edges_inside(component)


def tarjan_scc(
    nodes: Sequence[int],
    successors: Dict[int, List[int]],
) -> List[List[int]]:
    """Tarjan's SCC algorithm, iterative form.

    Returns the components in reverse topological order (sinks first), which
    is the order Tarjan emits them.
    """
    index_counter = 0
    stack: List[int] = []
    on_stack: Set[int] = set()
    indices: Dict[int, int] = {}
    lowlink: Dict[int, int] = {}
    result: List[List[int]] = []

    for root in nodes:
        if root in indices:
            continue
        work: List[Tuple[int, int]] = [(root, 0)]
        while work:
            node, child_pos = work[-1]
            if child_pos == 0:
                indices[node] = index_counter
                lowlink[node] = index_counter
                index_counter += 1
                stack.append(node)
                on_stack.add(node)
            advanced = False
            children = successors.get(node, [])
            while child_pos < len(children):
                child = children[child_pos]
                child_pos += 1
                if child not in indices:
                    work[-1] = (node, child_pos)
                    work.append((child, 0))
                    advanced = True
                    break
                if child in on_stack:
                    lowlink[node] = min(lowlink[node], indices[child])
            if advanced:
                continue
            work[-1] = (node, child_pos)
            if lowlink[node] == indices[node]:
                component: List[int] = []
                while True:
                    w = stack.pop()
                    on_stack.discard(w)
                    component.append(w)
                    if w == node:
                        break
                result.append(component)
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
    return result


def decompose(
    graph: ReachableGraph,
    restrict_to: Iterable[int] | None = None,
) -> SccDecomposition:
    """SCC-decompose ``graph`` (optionally the subgraph induced by
    ``restrict_to``).

    Transitions leaving the restriction set are ignored, so recursion into
    sub-regions — the heart of both Streett emptiness and measure synthesis —
    is a plain restricted call.
    """
    if restrict_to is None:
        members: Set[int] = set(range(len(graph)))
    else:
        members = set(restrict_to)
    successors: Dict[int, List[int]] = {i: [] for i in members}
    for t in graph.transitions:
        if t.source in members and t.target in members:
            successors[t.source].append(t.target)
    components = tarjan_scc(sorted(members), successors)
    component_of: Dict[int, int] = {}
    for position, component in enumerate(components):
        for node in component:
            component_of[node] = position
    return SccDecomposition(
        components=tuple(tuple(sorted(c)) for c in components),
        component_of=component_of,
    )


def internal_transitions(
    graph: ReachableGraph,
    members: Iterable[int],
) -> List[IndexedTransition]:
    """Transitions of ``graph`` with both endpoints in ``members``."""
    inside = set(members)
    return [
        t
        for i in inside
        for t in graph.outgoing(i)
        if t.target in inside
    ]


def is_nontrivial_scc(graph: ReachableGraph, component: Sequence[int]) -> bool:
    """Whether the SCC hosts at least one internal transition.

    For a singleton this means a self-loop; for larger components it is
    automatic, but checking uniformly keeps callers honest.
    """
    return bool(internal_transitions(graph, component))


def condensation_edges(
    graph: ReachableGraph,
    decomposition: SccDecomposition,
) -> Set[Tuple[int, int]]:
    """Edges between distinct components (by component position)."""
    edges: Set[Tuple[int, int]] = set()
    for t in graph.transitions:
        a = decomposition.component_of.get(t.source)
        b = decomposition.component_of.get(t.target)
        if a is not None and b is not None and a != b:
            edges.add((a, b))
    return edges
