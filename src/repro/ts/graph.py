"""Strongly connected components and condensation over explored graphs.

Fair-cycle detection, measure synthesis and the helpful-directions baseline
all decompose the reachable graph into SCCs.  Tarjan's algorithm is
implemented iteratively (explored graphs can be deep, and Python's recursion
limit is not a correctness budget).

:func:`decompose` runs on the graph's packed engine view
(:attr:`ReachableGraph.analyses`): the full-graph decomposition is computed
once and cached on the graph, and restricted decompositions walk only the
region's CSR slices instead of re-scanning every transition of the graph —
the seed behaviour, preserved verbatim in
:mod:`repro.engine.reference`, made synthesis quadratic in practice.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence, Set, Tuple

from repro.ts.explore import IndexedTransition, ReachableGraph


@dataclass(frozen=True)
class SccDecomposition:
    """SCCs of a (sub)graph.

    ``components`` lists each SCC as a tuple of state indices, in *reverse
    topological order* of the condensation: component 0 has no outgoing
    edges to other components.  That order is exactly what rank-based
    measures need — ``μ^T`` can simply be the component's position.
    ``component_of`` maps a state index to its component's position.
    """

    components: Tuple[Tuple[int, ...], ...]
    component_of: Dict[int, int]

    def rank_of_state(self, index: int) -> int:
        """The reverse-topological rank of the component of ``index``."""
        return self.component_of[index]

    def is_trivial(self, component: int, edges_inside) -> bool:
        """Whether the component has no internal transition.

        A single state with no self-loop is trivial; any component hosting
        at least one internal transition is where fairness reasoning must
        happen.
        """
        return not edges_inside(component)


def tarjan_scc(
    nodes: Sequence[int],
    successors: Dict[int, List[int]],
) -> List[List[int]]:
    """Tarjan's SCC algorithm, iterative form.

    Returns the components in reverse topological order (sinks first), which
    is the order Tarjan emits them.
    """
    index_counter = 0
    stack: List[int] = []
    on_stack: Set[int] = set()
    indices: Dict[int, int] = {}
    lowlink: Dict[int, int] = {}
    result: List[List[int]] = []

    for root in nodes:
        if root in indices:
            continue
        work: List[Tuple[int, int]] = [(root, 0)]
        while work:
            node, child_pos = work[-1]
            if child_pos == 0:
                indices[node] = index_counter
                lowlink[node] = index_counter
                index_counter += 1
                stack.append(node)
                on_stack.add(node)
            advanced = False
            children = successors.get(node, [])
            while child_pos < len(children):
                child = children[child_pos]
                child_pos += 1
                if child not in indices:
                    work[-1] = (node, child_pos)
                    work.append((child, 0))
                    advanced = True
                    break
                if child in on_stack:
                    lowlink[node] = min(lowlink[node], indices[child])
            if advanced:
                continue
            work[-1] = (node, child_pos)
            if lowlink[node] == indices[node]:
                component: List[int] = []
                while True:
                    w = stack.pop()
                    on_stack.discard(w)
                    component.append(w)
                    if w == node:
                        break
                result.append(component)
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
    return result


def decompose(
    graph: ReachableGraph,
    restrict_to: Iterable[int] | None = None,
) -> SccDecomposition:
    """SCC-decompose ``graph`` (optionally the subgraph induced by
    ``restrict_to``).

    Transitions leaving the restriction set are ignored, so recursion into
    sub-regions — the heart of both Streett emptiness and measure synthesis —
    is a plain restricted call.

    The unrestricted decomposition is computed once per graph and cached;
    component order (reverse topological) and membership are identical to
    the straightforward dict-based Tarjan (tested against
    :func:`repro.engine.reference.decompose_reference`).
    """
    if restrict_to is None and graph._scc_cache is not None:
        return graph._scc_cache
    components = graph.analyses.components(
        None if restrict_to is None else list(restrict_to)
    )
    component_of: Dict[int, int] = {}
    for position, component in enumerate(components):
        for node in component:
            component_of[node] = position
    result = SccDecomposition(
        components=tuple(tuple(sorted(c)) for c in components),
        component_of=component_of,
    )
    if restrict_to is None:
        graph._scc_cache = result
    return result


def internal_transitions(
    graph: ReachableGraph,
    members: Iterable[int],
) -> List[IndexedTransition]:
    """Transitions of ``graph`` with both endpoints in ``members``.

    ``members`` may be any iterable; sets/frozensets are used as-is.  The
    walk touches only the members' CSR slices and returns the transitions
    grouped by source in ascending index order.
    """
    transitions = graph.transitions
    return [
        transitions[eid] for eid in graph.analyses.internal_eids(members)
    ]


def is_nontrivial_scc(graph: ReachableGraph, component: Sequence[int]) -> bool:
    """Whether the SCC hosts at least one internal transition.

    For a singleton this means a self-loop; for larger components it is
    automatic, but checking uniformly keeps callers honest.
    """
    return bool(internal_transitions(graph, component))


def condensation_edges(
    graph: ReachableGraph,
    decomposition: SccDecomposition,
) -> Set[Tuple[int, int]]:
    """Edges between distinct components (by component position)."""
    edges: Set[Tuple[int, int]] = set()
    packed = graph.analyses.packed
    component_of = decomposition.component_of
    src, dst = packed.src, packed.dst
    for eid in range(len(packed)):
        a = component_of.get(src[eid])
        b = component_of.get(dst[eid])
        if a is not None and b is not None and a != b:
            edges.add((a, b))
    return edges
