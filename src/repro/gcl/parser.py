"""Recursive-descent parser for the guarded-command language.

Grammar (EBNF; newlines are not significant — command boundaries are marked
by labels or ``[]``):

.. code-block:: text

    program   ::= 'program' IDENT decls 'do' command (['[]'] command)* 'od'
    decls     ::= ('var' decl (',' decl)*)*
    decl      ::= IDENT ':=' expr | IDENT 'in' expr '..' expr
    command   ::= IDENT ':' expr '->' stmt
    stmt      ::= atom (';' atom)*
    atom      ::= 'skip'
                | IDENT (',' IDENT)* ':=' expr (',' expr)*
                | 'choose' IDENT 'in' expr '..' expr
                | 'if' expr 'then' stmt ['else' stmt] 'fi'
    expr      ::= disj
    disj      ::= conj ('or' conj)*
    conj      ::= cmp ('and' cmp)*
    cmp       ::= sum (('=='|'!='|'<'|'<='|'>'|'>=') sum)?
    sum       ::= term (('+'|'-') term)*
    term      ::= factor (('*'|'div'|'mod') factor)*
    factor    ::= INT | 'true' | 'false' | IDENT | IDENT '(' expr,* ')'
                | '-' factor | 'not' factor | '(' expr ')'
"""

from __future__ import annotations

from typing import List

from repro.gcl.ast import (
    Assign,
    Binary,
    BinaryOp,
    BoolLiteral,
    Call,
    Choose,
    Expr,
    GuardedCommand,
    If,
    IntLiteral,
    ProgramAst,
    Seq,
    Skip,
    Stmt,
    Unary,
    UnaryOp,
    VarDecl,
    VarRef,
)
from repro.gcl.errors import ParseError
from repro.gcl.lexer import tokenize
from repro.gcl.tokens import Token, TokenKind

_BUILTINS = {"min", "max", "abs"}

_COMPARE_OPS = {
    TokenKind.EQ: BinaryOp.EQ,
    TokenKind.NE: BinaryOp.NE,
    TokenKind.LT: BinaryOp.LT,
    TokenKind.LE: BinaryOp.LE,
    TokenKind.GT: BinaryOp.GT,
    TokenKind.GE: BinaryOp.GE,
}

_ADDITIVE_OPS = {TokenKind.PLUS: BinaryOp.ADD, TokenKind.MINUS: BinaryOp.SUB}
_MULTIPLICATIVE_OPS = {
    TokenKind.STAR: BinaryOp.MUL,
    TokenKind.DIV: BinaryOp.DIV,
    TokenKind.MOD: BinaryOp.MOD,
}


class Parser:
    """Parses one program or one standalone expression."""

    def __init__(self, tokens: List[Token]) -> None:
        self._tokens = tokens
        self._pos = 0

    # -- token helpers -------------------------------------------------

    def _peek(self) -> Token:
        return self._tokens[self._pos]

    def _at(self, kind: TokenKind) -> bool:
        return self._peek().kind is kind

    def _advance(self) -> Token:
        token = self._tokens[self._pos]
        if token.kind is not TokenKind.EOF:
            self._pos += 1
        return token

    def _expect(self, kind: TokenKind) -> Token:
        token = self._peek()
        if token.kind is not kind:
            raise ParseError(
                f"expected {kind.value}, found {token.kind.value} {token.text!r}",
                token.location,
            )
        return self._advance()

    def _accept(self, kind: TokenKind) -> Token | None:
        if self._at(kind):
            return self._advance()
        return None

    # -- program structure ----------------------------------------------

    def parse_program(self) -> ProgramAst:
        """Parse a full ``program ... do ... od`` unit."""
        self._expect(TokenKind.PROGRAM)
        name = self._expect(TokenKind.IDENT).text
        declarations: List[VarDecl] = []
        while self._accept(TokenKind.VAR):
            declarations.append(self._parse_decl())
            while self._accept(TokenKind.COMMA):
                declarations.append(self._parse_decl())
        self._expect(TokenKind.DO)
        commands = [self._parse_command()]
        while True:
            self._accept(TokenKind.BOX)
            if self._at(TokenKind.OD):
                break
            commands.append(self._parse_command())
        self._expect(TokenKind.OD)
        self._expect(TokenKind.EOF)
        return ProgramAst(
            name=name,
            declarations=tuple(declarations),
            commands=tuple(commands),
        )

    def _parse_decl(self) -> VarDecl:
        name_token = self._expect(TokenKind.IDENT)
        if self._accept(TokenKind.ASSIGN):
            value = self._parse_expr()
            return VarDecl(
                name=name_token.text,
                init_low=value,
                init_high=value,
                location=name_token.location,
            )
        self._expect(TokenKind.IN)
        low = self._parse_expr()
        self._expect(TokenKind.DOTDOT)
        high = self._parse_expr()
        return VarDecl(
            name=name_token.text,
            init_low=low,
            init_high=high,
            location=name_token.location,
        )

    def _parse_command(self) -> GuardedCommand:
        label_token = self._expect(TokenKind.IDENT)
        self._expect(TokenKind.COLON)
        guard = self._parse_expr()
        self._expect(TokenKind.ARROW)
        body = self._parse_stmt()
        return GuardedCommand(
            label=label_token.text,
            guard=guard,
            body=body,
            location=label_token.location,
        )

    # -- statements ------------------------------------------------------

    def _parse_stmt(self) -> Stmt:
        atoms = [self._parse_atom()]
        while self._accept(TokenKind.SEMI):
            atoms.append(self._parse_atom())
        if len(atoms) == 1:
            return atoms[0]
        return Seq(statements=tuple(atoms))

    def _parse_atom(self) -> Stmt:
        if self._accept(TokenKind.SKIP):
            return Skip()
        if self._accept(TokenKind.CHOOSE):
            target = self._expect(TokenKind.IDENT).text
            self._expect(TokenKind.IN)
            low = self._parse_expr()
            self._expect(TokenKind.DOTDOT)
            high = self._parse_expr()
            return Choose(target=target, low=low, high=high)
        if self._accept(TokenKind.IF):
            condition = self._parse_expr()
            self._expect(TokenKind.THEN)
            then_branch = self._parse_stmt()
            if self._accept(TokenKind.ELSE):
                else_branch = self._parse_stmt()
            else:
                else_branch = Skip()
            self._expect(TokenKind.FI)
            return If(
                condition=condition,
                then_branch=then_branch,
                else_branch=else_branch,
            )
        # Parallel assignment.
        targets = [self._expect(TokenKind.IDENT).text]
        while self._accept(TokenKind.COMMA):
            targets.append(self._expect(TokenKind.IDENT).text)
        assign = self._expect(TokenKind.ASSIGN)
        values = [self._parse_expr()]
        while self._accept(TokenKind.COMMA):
            values.append(self._parse_expr())
        if len(targets) != len(values):
            raise ParseError(
                f"assignment arity mismatch: {len(targets)} targets but "
                f"{len(values)} values",
                assign.location,
            )
        return Assign(targets=tuple(targets), values=tuple(values))

    # -- expressions ------------------------------------------------------

    def parse_standalone_expr(self) -> Expr:
        """Parse a single expression followed by end of input.

        Used by the stack-assertion front end, whose measure expressions are
        written in the same language as program guards.
        """
        expr = self._parse_expr()
        self._expect(TokenKind.EOF)
        return expr

    def _parse_expr(self) -> Expr:
        return self._parse_disjunction()

    def _parse_disjunction(self) -> Expr:
        left = self._parse_conjunction()
        while self._accept(TokenKind.OR):
            right = self._parse_conjunction()
            left = Binary(op=BinaryOp.OR, left=left, right=right)
        return left

    def _parse_conjunction(self) -> Expr:
        left = self._parse_comparison()
        while self._accept(TokenKind.AND):
            right = self._parse_comparison()
            left = Binary(op=BinaryOp.AND, left=left, right=right)
        return left

    def _parse_comparison(self) -> Expr:
        left = self._parse_sum()
        kind = self._peek().kind
        if kind in _COMPARE_OPS:
            self._advance()
            right = self._parse_sum()
            return Binary(op=_COMPARE_OPS[kind], left=left, right=right)
        return left

    def _parse_sum(self) -> Expr:
        left = self._parse_term()
        while self._peek().kind in _ADDITIVE_OPS:
            op = _ADDITIVE_OPS[self._advance().kind]
            right = self._parse_term()
            left = Binary(op=op, left=left, right=right)
        return left

    def _parse_term(self) -> Expr:
        left = self._parse_factor()
        while self._peek().kind in _MULTIPLICATIVE_OPS:
            op = _MULTIPLICATIVE_OPS[self._advance().kind]
            right = self._parse_factor()
            left = Binary(op=op, left=left, right=right)
        return left

    def _parse_factor(self) -> Expr:
        token = self._peek()
        if token.kind is TokenKind.INT:
            self._advance()
            return IntLiteral(value=int(token.text))
        if token.kind is TokenKind.TRUE:
            self._advance()
            return BoolLiteral(value=True)
        if token.kind is TokenKind.FALSE:
            self._advance()
            return BoolLiteral(value=False)
        if token.kind is TokenKind.MINUS:
            self._advance()
            return Unary(op=UnaryOp.NEG, operand=self._parse_factor())
        if token.kind is TokenKind.NOT:
            self._advance()
            return Unary(op=UnaryOp.NOT, operand=self._parse_factor())
        if token.kind is TokenKind.LPAREN:
            self._advance()
            inner = self._parse_expr()
            self._expect(TokenKind.RPAREN)
            return inner
        if token.kind is TokenKind.IDENT:
            self._advance()
            if self._at(TokenKind.LPAREN):
                if token.text not in _BUILTINS:
                    raise ParseError(
                        f"unknown function {token.text!r} "
                        f"(builtins: {sorted(_BUILTINS)})",
                        token.location,
                    )
                self._advance()
                args = [self._parse_expr()]
                while self._accept(TokenKind.COMMA):
                    args.append(self._parse_expr())
                self._expect(TokenKind.RPAREN)
                if token.text == "abs" and len(args) != 1:
                    raise ParseError("abs() takes exactly one argument", token.location)
                return Call(function=token.text, args=tuple(args))
            return VarRef(name=token.text)
        raise ParseError(
            f"expected an expression, found {token.kind.value} {token.text!r}",
            token.location,
        )


def parse_program_ast(source: str) -> ProgramAst:
    """Parse GCL source into a :class:`ProgramAst`."""
    return Parser(tokenize(source)).parse_program()


def parse_expression(source: str) -> Expr:
    """Parse a standalone GCL expression (for assertions and guards)."""
    return Parser(tokenize(source)).parse_standalone_expr()
