"""Evaluation of GCL expressions and atomic execution of statement bodies.

Expressions evaluate over a :class:`~repro.gcl.state.ProgramState` to ``int``
or ``bool``.  ``div``/``mod`` follow the mathematical convention (Python's
floor semantics) with division by zero an :class:`EvalError` — the paper's
``z mod 117`` then always lands in ``{0..116}``, as its ``P3'`` annotation
relies on.

Statement execution is *atomic and nondeterministic*: executing a command
body from a pre-state yields the finite set of possible post-states (more
than one only when ``choose`` occurs).
"""

from __future__ import annotations

from typing import Iterable, List, Mapping, Union

from repro.gcl.ast import (
    Assign,
    Binary,
    BinaryOp,
    BoolLiteral,
    Call,
    Choose,
    COMPARISONS,
    CONNECTIVES,
    Expr,
    If,
    IntLiteral,
    Seq,
    Skip,
    Stmt,
    Unary,
    UnaryOp,
    VarRef,
)
from repro.gcl.errors import EvalError
from repro.gcl.state import ProgramState

Value = Union[int, bool]


def evaluate(expr: Expr, state: Mapping[str, int]) -> Value:
    """Evaluate ``expr`` in ``state``; returns ``int`` or ``bool``."""
    if isinstance(expr, IntLiteral):
        return expr.value
    if isinstance(expr, BoolLiteral):
        return expr.value
    if isinstance(expr, VarRef):
        try:
            return state[expr.name]
        except KeyError:
            raise EvalError(f"unknown variable {expr.name!r}") from None
    if isinstance(expr, Unary):
        return _evaluate_unary(expr, state)
    if isinstance(expr, Binary):
        return _evaluate_binary(expr, state)
    if isinstance(expr, Call):
        return _evaluate_call(expr, state)
    raise EvalError(f"unhandled expression node {type(expr).__name__}")


def evaluate_int(expr: Expr, state: Mapping[str, int]) -> int:
    """Evaluate ``expr`` and require an integer result."""
    value = evaluate(expr, state)
    if isinstance(value, bool) or not isinstance(value, int):
        raise EvalError(f"expected an integer, got {value!r}")
    return value


def evaluate_bool(expr: Expr, state: Mapping[str, int]) -> bool:
    """Evaluate ``expr`` and require a boolean result (guards, conditions)."""
    value = evaluate(expr, state)
    if not isinstance(value, bool):
        raise EvalError(f"expected a boolean, got {value!r}")
    return value


def _evaluate_unary(expr: Unary, state: Mapping[str, int]) -> Value:
    if expr.op is UnaryOp.NEG:
        return -evaluate_int(expr.operand, state)
    if expr.op is UnaryOp.NOT:
        return not evaluate_bool(expr.operand, state)
    raise EvalError(f"unhandled unary operator {expr.op}")


def _evaluate_binary(expr: Binary, state: Mapping[str, int]) -> Value:
    op = expr.op
    if op in CONNECTIVES:
        left = evaluate_bool(expr.left, state)
        # Short-circuit: the right operand may be undefined when irrelevant.
        if op is BinaryOp.AND:
            return left and evaluate_bool(expr.right, state)
        return left or evaluate_bool(expr.right, state)
    left_int = evaluate_int(expr.left, state)
    right_int = evaluate_int(expr.right, state)
    if op in COMPARISONS:
        return {
            BinaryOp.EQ: left_int == right_int,
            BinaryOp.NE: left_int != right_int,
            BinaryOp.LT: left_int < right_int,
            BinaryOp.LE: left_int <= right_int,
            BinaryOp.GT: left_int > right_int,
            BinaryOp.GE: left_int >= right_int,
        }[op]
    if op is BinaryOp.ADD:
        return left_int + right_int
    if op is BinaryOp.SUB:
        return left_int - right_int
    if op is BinaryOp.MUL:
        return left_int * right_int
    if op is BinaryOp.DIV:
        if right_int == 0:
            raise EvalError("division by zero")
        return left_int // right_int
    if op is BinaryOp.MOD:
        if right_int == 0:
            raise EvalError("modulo by zero")
        return left_int % right_int
    raise EvalError(f"unhandled binary operator {op}")


def _evaluate_call(expr: Call, state: Mapping[str, int]) -> Value:
    args = [evaluate_int(a, state) for a in expr.args]
    if expr.function == "min":
        return min(args)
    if expr.function == "max":
        return max(args)
    if expr.function == "abs":
        return abs(args[0])
    raise EvalError(f"unknown builtin {expr.function!r}")


def execute(stmt: Stmt, state: ProgramState) -> List[ProgramState]:
    """Execute one command body atomically; return all possible post-states.

    The result list is non-empty and duplicate-free; most bodies are
    deterministic and yield exactly one state.
    """
    results = list(_execute(stmt, state))
    unique: List[ProgramState] = []
    seen = set()
    for post in results:
        if post not in seen:
            seen.add(post)
            unique.append(post)
    return unique


def _execute(stmt: Stmt, state: ProgramState) -> Iterable[ProgramState]:
    if isinstance(stmt, Skip):
        yield state
        return
    if isinstance(stmt, Assign):
        values = {
            target: evaluate_int(value, state)
            for target, value in zip(stmt.targets, stmt.values)
        }
        yield state.updated(values)
        return
    if isinstance(stmt, Choose):
        low = evaluate_int(stmt.low, state)
        high = evaluate_int(stmt.high, state)
        if low > high:
            raise EvalError(
                f"choose {stmt.target} in {low}..{high}: empty range"
            )
        for value in range(low, high + 1):
            yield state.updated({stmt.target: value})
        return
    if isinstance(stmt, If):
        branch = stmt.then_branch if evaluate_bool(stmt.condition, state) else stmt.else_branch
        yield from _execute(branch, state)
        return
    if isinstance(stmt, Seq):
        frontier = [state]
        for part in stmt.statements:
            frontier = [post for pre in frontier for post in _execute(part, pre)]
        yield from frontier
        return
    raise EvalError(f"unhandled statement node {type(stmt).__name__}")
