"""Pretty-printing of GCL syntax trees back to concrete syntax.

``parse_program(render_program(p.ast))`` round-trips (module layout), which
is what the parser/printer property tests check.
"""

from __future__ import annotations

from repro.gcl.ast import (
    Assign,
    Binary,
    BinaryOp,
    BoolLiteral,
    Call,
    Choose,
    Expr,
    GuardedCommand,
    If,
    IntLiteral,
    ProgramAst,
    Seq,
    Skip,
    Stmt,
    Unary,
    UnaryOp,
    VarRef,
)

# Binding strength; higher binds tighter.  Mirrors the parser's levels.
_PRECEDENCE = {
    BinaryOp.OR: 1,
    BinaryOp.AND: 2,
    BinaryOp.EQ: 3,
    BinaryOp.NE: 3,
    BinaryOp.LT: 3,
    BinaryOp.LE: 3,
    BinaryOp.GT: 3,
    BinaryOp.GE: 3,
    BinaryOp.ADD: 4,
    BinaryOp.SUB: 4,
    BinaryOp.MUL: 5,
    BinaryOp.DIV: 5,
    BinaryOp.MOD: 5,
}

_UNARY_PRECEDENCE = 6


def render_expr(expr: Expr, parent_precedence: int = 0) -> str:
    """Render an expression with minimal parentheses."""
    if isinstance(expr, IntLiteral):
        return str(expr.value)
    if isinstance(expr, BoolLiteral):
        return "true" if expr.value else "false"
    if isinstance(expr, VarRef):
        return expr.name
    if isinstance(expr, Call):
        inner = ", ".join(render_expr(a) for a in expr.args)
        return f"{expr.function}({inner})"
    if isinstance(expr, Unary):
        op = "-" if expr.op is UnaryOp.NEG else "not "
        text = f"{op}{render_expr(expr.operand, _UNARY_PRECEDENCE)}"
        if parent_precedence > _UNARY_PRECEDENCE:
            return f"({text})"
        return text
    if isinstance(expr, Binary):
        precedence = _PRECEDENCE[expr.op]
        # Left-associative: same precedence on the right needs parentheses
        # for the non-commutative operators; parenthesise uniformly for
        # simplicity and round-trip stability.
        left = render_expr(expr.left, precedence)
        right = render_expr(expr.right, precedence + 1)
        text = f"{left} {expr.op.value} {right}"
        if parent_precedence > precedence:
            return f"({text})"
        return text
    raise TypeError(f"unhandled expression node {type(expr).__name__}")


def render_stmt(stmt: Stmt) -> str:
    """Render a statement."""
    if isinstance(stmt, Skip):
        return "skip"
    if isinstance(stmt, Assign):
        targets = ", ".join(stmt.targets)
        values = ", ".join(render_expr(v) for v in stmt.values)
        return f"{targets} := {values}"
    if isinstance(stmt, Choose):
        return (
            f"choose {stmt.target} in {render_expr(stmt.low)} .. "
            f"{render_expr(stmt.high)}"
        )
    if isinstance(stmt, If):
        text = f"if {render_expr(stmt.condition)} then {render_stmt(stmt.then_branch)}"
        if not isinstance(stmt.else_branch, Skip):
            text += f" else {render_stmt(stmt.else_branch)}"
        return text + " fi"
    if isinstance(stmt, Seq):
        return "; ".join(render_stmt(s) for s in stmt.statements)
    raise TypeError(f"unhandled statement node {type(stmt).__name__}")


def render_command(command: GuardedCommand) -> str:
    """Render one guarded command."""
    return f"{command.label}: {render_expr(command.guard)} -> {render_stmt(command.body)}"


def render_program(ast: ProgramAst) -> str:
    """Render a whole program in canonical layout."""
    lines = [f"program {ast.name}"]
    for decl in ast.declarations:
        if decl.init_low == decl.init_high:
            lines.append(f"var {decl.name} := {render_expr(decl.init_low)}")
        else:
            lines.append(
                f"var {decl.name} in {render_expr(decl.init_low)} .. "
                f"{render_expr(decl.init_high)}"
            )
    lines.append("do")
    for i, command in enumerate(ast.commands):
        separator = "   " if i == 0 else "[] "
        lines.append(f"  {separator}{render_command(command)}")
    lines.append("od")
    return "\n".join(lines) + "\n"
