"""Abstract syntax for the guarded-command language.

All nodes are immutable dataclasses.  Expressions evaluate to Python ``int``
or ``bool`` over a variable valuation (:mod:`repro.gcl.eval`); statements
execute atomically as part of one guarded command, matching the paper's
model where one transition is the execution of exactly one command.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.gcl.errors import SourceLocation


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Expr:
    """Base class for expressions."""


@dataclass(frozen=True)
class IntLiteral(Expr):
    """An integer constant."""

    value: int


@dataclass(frozen=True)
class BoolLiteral(Expr):
    """``true`` or ``false``."""

    value: bool


@dataclass(frozen=True)
class VarRef(Expr):
    """A reference to a program variable."""

    name: str


class UnaryOp(enum.Enum):
    """Unary operators."""

    NEG = "-"
    NOT = "not"


@dataclass(frozen=True)
class Unary(Expr):
    """A unary operation."""

    op: UnaryOp
    operand: Expr


class BinaryOp(enum.Enum):
    """Binary operators; the value is the concrete syntax."""

    ADD = "+"
    SUB = "-"
    MUL = "*"
    DIV = "div"
    MOD = "mod"
    EQ = "=="
    NE = "!="
    LT = "<"
    LE = "<="
    GT = ">"
    GE = ">="
    AND = "and"
    OR = "or"


#: Operators producing booleans from two integers.
COMPARISONS = {
    BinaryOp.EQ,
    BinaryOp.NE,
    BinaryOp.LT,
    BinaryOp.LE,
    BinaryOp.GT,
    BinaryOp.GE,
}

#: Operators over booleans.
CONNECTIVES = {BinaryOp.AND, BinaryOp.OR}


@dataclass(frozen=True)
class Binary(Expr):
    """A binary operation."""

    op: BinaryOp
    left: Expr
    right: Expr


@dataclass(frozen=True)
class Call(Expr):
    """A builtin call: ``min``, ``max`` (arity ≥ 1) or ``abs`` (arity 1).

    ``max(y - x, 0)`` is the paper's ``max{y − x, 0}`` from ``P1'``.
    """

    function: str
    args: Tuple[Expr, ...]


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Stmt:
    """Base class for statements."""


@dataclass(frozen=True)
class Skip(Stmt):
    """The no-op statement."""


@dataclass(frozen=True)
class Assign(Stmt):
    """(Parallel) assignment ``x, y := e1, e2``.

    All right-hand sides are evaluated in the pre-state, then assigned —
    the usual simultaneous-assignment semantics.
    """

    targets: Tuple[str, ...]
    values: Tuple[Expr, ...]

    def __post_init__(self) -> None:
        if len(self.targets) != len(self.values):
            raise ValueError(
                f"assignment arity mismatch: {len(self.targets)} targets, "
                f"{len(self.values)} values"
            )
        if len(set(self.targets)) != len(self.targets):
            raise ValueError(f"duplicate assignment targets: {self.targets}")


@dataclass(frozen=True)
class Choose(Stmt):
    """Bounded nondeterministic assignment ``choose x in lo .. hi``.

    Introduces (bounded) nondeterminism *inside* a command: the command has
    one successor per value in the (pre-state-evaluated) range.  An empty
    range is an evaluation error — guards should exclude it.
    """

    target: str
    low: Expr
    high: Expr


@dataclass(frozen=True)
class If(Stmt):
    """Conditional ``if b then s1 else s2 fi`` (``else`` optional → skip)."""

    condition: Expr
    then_branch: Stmt
    else_branch: Stmt


@dataclass(frozen=True)
class Seq(Stmt):
    """Sequential composition inside a single atomic command body."""

    statements: Tuple[Stmt, ...]


# ---------------------------------------------------------------------------
# Commands and programs
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class GuardedCommand:
    """One labelled guarded command ``ℓ: g → body``."""

    label: str
    guard: Expr
    body: Stmt
    location: Optional[SourceLocation] = field(default=None, compare=False)


@dataclass(frozen=True)
class VarDecl:
    """A variable declaration with a single initial value or a range.

    ``var x := 3`` fixes the initial value; ``var x in 0..3`` declares a set
    of initial states (one per value), which is how parameter sweeps and
    multi-initial-state programs are written.
    """

    name: str
    init_low: Expr
    init_high: Expr  # equal to init_low for a fixed initialisation
    location: Optional[SourceLocation] = field(default=None, compare=False)


@dataclass(frozen=True)
class ProgramAst:
    """A whole program: name, declarations, loop of guarded commands."""

    name: str
    declarations: Tuple[VarDecl, ...]
    commands: Tuple[GuardedCommand, ...]

    def __post_init__(self) -> None:
        names = [d.name for d in self.declarations]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate variable declarations: {names}")
        labels = [c.label for c in self.commands]
        if len(set(labels)) != len(labels):
            raise ValueError(f"duplicate command labels: {labels}")
        if not self.commands:
            raise ValueError("a program needs at least one guarded command")

    def command_labels(self) -> Tuple[str, ...]:
        """The labels in declaration order."""
        return tuple(c.label for c in self.commands)

    def variables(self) -> Tuple[str, ...]:
        """The declared variable names in declaration order."""
        return tuple(d.name for d in self.declarations)
