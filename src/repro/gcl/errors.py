"""Source-located errors for the guarded-command language."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class SourceLocation:
    """A (line, column) position in GCL source text, 1-based."""

    line: int
    column: int

    def __str__(self) -> str:
        return f"line {self.line}, column {self.column}"


class GclError(Exception):
    """Base class for all GCL front-end errors."""

    def __init__(self, message: str, location: SourceLocation | None = None) -> None:
        self.location = location
        if location is not None:
            message = f"{message} (at {location})"
        super().__init__(message)


class LexError(GclError):
    """An unrecognised character or malformed token."""


class ParseError(GclError):
    """Input does not conform to the GCL grammar."""


class EvalError(GclError):
    """A run-time evaluation failure (unknown variable, division by zero...)."""
