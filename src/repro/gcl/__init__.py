"""The guarded-command language: lexer, parser, evaluator, compiler,
semantics."""

from repro.gcl.compile import (
    CompiledCommand,
    CompiledProgram,
    compile_bool,
    compile_int,
    compile_program,
    compile_stmt,
)

from repro.gcl.ast import (
    Assign,
    Binary,
    BinaryOp,
    BoolLiteral,
    Call,
    Choose,
    Expr,
    GuardedCommand,
    If,
    IntLiteral,
    ProgramAst,
    Seq,
    Skip,
    Stmt,
    Unary,
    UnaryOp,
    VarDecl,
    VarRef,
)
from repro.gcl.errors import (
    EvalError,
    GclError,
    LexError,
    ParseError,
    SourceLocation,
)
from repro.gcl.eval import evaluate, evaluate_bool, evaluate_int, execute
from repro.gcl.lexer import tokenize
from repro.gcl.parser import parse_expression, parse_program_ast
from repro.gcl.pretty import render_command, render_expr, render_program, render_stmt
from repro.gcl.program import Program, parse_program
from repro.gcl.state import ProgramState

__all__ = [
    "Assign",
    "Binary",
    "BinaryOp",
    "BoolLiteral",
    "Call",
    "Choose",
    "Expr",
    "GuardedCommand",
    "If",
    "IntLiteral",
    "ProgramAst",
    "Seq",
    "Skip",
    "Stmt",
    "Unary",
    "UnaryOp",
    "VarDecl",
    "VarRef",
    "EvalError",
    "GclError",
    "LexError",
    "ParseError",
    "SourceLocation",
    "evaluate",
    "evaluate_bool",
    "evaluate_int",
    "execute",
    "tokenize",
    "parse_expression",
    "parse_program_ast",
    "render_command",
    "render_expr",
    "render_program",
    "render_stmt",
    "Program",
    "parse_program",
    "ProgramState",
    "CompiledCommand",
    "CompiledProgram",
    "compile_bool",
    "compile_int",
    "compile_program",
    "compile_stmt",
]
