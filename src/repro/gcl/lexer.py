"""Hand-written lexer for the guarded-command language.

The surface syntax is ASCII-friendly; the paper's ``*[ ℓ: g → c □ ... ]``
loops are written

.. code-block:: text

    program P2
    var x := 0, y := 10
    do
      la: x < y -> x := x + 1
      lb: x < y -> skip
    od

Commands may also be separated with ``[]`` (the ASCII box).  Comments run
from ``#`` to end of line.
"""

from __future__ import annotations

from typing import Iterator, List

from repro.gcl.errors import LexError, SourceLocation
from repro.gcl.tokens import KEYWORDS, Token, TokenKind

_SIMPLE = {
    "+": TokenKind.PLUS,
    "-": TokenKind.MINUS,
    "*": TokenKind.STAR,
    "(": TokenKind.LPAREN,
    ")": TokenKind.RPAREN,
    ",": TokenKind.COMMA,
    ";": TokenKind.SEMI,
}


class Lexer:
    """Turns GCL source text into a token stream."""

    def __init__(self, source: str) -> None:
        self._source = source
        self._pos = 0
        self._line = 1
        self._column = 1

    def _location(self) -> SourceLocation:
        return SourceLocation(self._line, self._column)

    def _peek(self, ahead: int = 0) -> str:
        index = self._pos + ahead
        return self._source[index] if index < len(self._source) else ""

    def _advance(self, count: int = 1) -> None:
        for _ in range(count):
            if self._pos < len(self._source):
                if self._source[self._pos] == "\n":
                    self._line += 1
                    self._column = 1
                else:
                    self._column += 1
                self._pos += 1

    def tokens(self) -> List[Token]:
        """Lex the whole input, ending with an EOF token."""
        return list(self._iter_tokens())

    def _iter_tokens(self) -> Iterator[Token]:
        while True:
            self._skip_trivia()
            location = self._location()
            char = self._peek()
            if not char:
                yield Token(TokenKind.EOF, "", location)
                return
            if char.isdigit():
                yield self._lex_number(location)
            elif char.isalpha() or char == "_":
                yield self._lex_word(location)
            else:
                yield self._lex_operator(location)

    def _skip_trivia(self) -> None:
        while True:
            char = self._peek()
            if char and char in " \t\r\n":
                self._advance()
            elif char == "#":
                while self._peek() and self._peek() != "\n":
                    self._advance()
            else:
                return

    def _lex_number(self, location: SourceLocation) -> Token:
        start = self._pos
        while self._peek().isdigit():
            self._advance()
        text = self._source[start : self._pos]
        if self._peek().isalpha() or self._peek() == "_":
            raise LexError(f"malformed number {text + self._peek()!r}", location)
        return Token(TokenKind.INT, text, location)

    def _lex_word(self, location: SourceLocation) -> Token:
        start = self._pos
        while self._peek().isalnum() or self._peek() == "_":
            self._advance()
        text = self._source[start : self._pos]
        kind = KEYWORDS.get(text, TokenKind.IDENT)
        return Token(kind, text, location)

    def _lex_operator(self, location: SourceLocation) -> Token:
        char = self._peek()
        pair = char + self._peek(1)
        if pair == "->":
            self._advance(2)
            return Token(TokenKind.ARROW, pair, location)
        if pair == ":=":
            self._advance(2)
            return Token(TokenKind.ASSIGN, pair, location)
        if pair == "[]":
            self._advance(2)
            return Token(TokenKind.BOX, pair, location)
        if pair == "==":
            self._advance(2)
            return Token(TokenKind.EQ, pair, location)
        if pair == "!=":
            self._advance(2)
            return Token(TokenKind.NE, pair, location)
        if pair == "<=":
            self._advance(2)
            return Token(TokenKind.LE, pair, location)
        if pair == ">=":
            self._advance(2)
            return Token(TokenKind.GE, pair, location)
        if pair == "..":
            self._advance(2)
            return Token(TokenKind.DOTDOT, pair, location)
        if char == "<":
            self._advance()
            return Token(TokenKind.LT, char, location)
        if char == ">":
            self._advance()
            return Token(TokenKind.GT, char, location)
        if char == ":":
            self._advance()
            return Token(TokenKind.COLON, char, location)
        if char in _SIMPLE:
            self._advance()
            return Token(_SIMPLE[char], char, location)
        raise LexError(f"unexpected character {char!r}", location)


def tokenize(source: str) -> List[Token]:
    """Convenience wrapper: lex ``source`` into a token list."""
    return Lexer(source).tokens()
