"""Token definitions for the guarded-command language."""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.gcl.errors import SourceLocation


class TokenKind(enum.Enum):
    """Lexical categories of the GCL front end."""

    # Literals and names
    INT = "integer literal"
    IDENT = "identifier"
    # Keywords
    PROGRAM = "'program'"
    VAR = "'var'"
    DO = "'do'"
    OD = "'od'"
    SKIP = "'skip'"
    TRUE = "'true'"
    FALSE = "'false'"
    AND = "'and'"
    OR = "'or'"
    NOT = "'not'"
    MOD = "'mod'"
    DIV = "'div'"
    IN = "'in'"
    CHOOSE = "'choose'"
    IF = "'if'"
    THEN = "'then'"
    ELSE = "'else'"
    FI = "'fi'"
    # Punctuation / operators
    ARROW = "'->'"
    ASSIGN = "':='"
    BOX = "'[]'"
    COLON = "':'"
    COMMA = "','"
    SEMI = "';'"
    LPAREN = "'('"
    RPAREN = "')'"
    PLUS = "'+'"
    MINUS = "'-'"
    STAR = "'*'"
    EQ = "'=='"
    NE = "'!='"
    LT = "'<'"
    LE = "'<='"
    GT = "'>'"
    GE = "'>='"
    DOTDOT = "'..'"
    EOF = "end of input"


#: Reserved words mapped to their token kinds.
KEYWORDS = {
    "program": TokenKind.PROGRAM,
    "var": TokenKind.VAR,
    "do": TokenKind.DO,
    "od": TokenKind.OD,
    "skip": TokenKind.SKIP,
    "true": TokenKind.TRUE,
    "false": TokenKind.FALSE,
    "and": TokenKind.AND,
    "or": TokenKind.OR,
    "not": TokenKind.NOT,
    "mod": TokenKind.MOD,
    "div": TokenKind.DIV,
    "in": TokenKind.IN,
    "choose": TokenKind.CHOOSE,
    "if": TokenKind.IF,
    "then": TokenKind.THEN,
    "else": TokenKind.ELSE,
    "fi": TokenKind.FI,
}


@dataclass(frozen=True)
class Token:
    """One lexeme with its source location."""

    kind: TokenKind
    text: str
    location: SourceLocation

    def __str__(self) -> str:
        return f"{self.kind.name}({self.text!r})@{self.location}"
