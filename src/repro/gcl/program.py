"""Program semantics: a parsed GCL program as a transition system.

A :class:`Program` is the paper's ``*[ ℓ₁: g₁ → c₁ □ ... □ ℓ_N: g_N → c_N ]``
loop.  Its states are variable valuations; command ``ℓᵢ`` is *enabled* in a
state iff its guard holds there; a transition executes one enabled command's
body atomically.  The loop terminates in states where no guard holds.

Two execution engines implement those semantics:

* the **interpreter** (:mod:`repro.gcl.eval`) walks the syntax tree on every
  evaluation — the reference semantics, kept deliberately simple;
* the **compiled** forms (:mod:`repro.gcl.compile`) lower each guard and
  body once into closures over the value tuple, and a per-program
  *successor cache* memoizes ``(enabled, post)`` per visited state so
  revisited states never re-evaluate guards or re-execute bodies.

``compiled=True`` (the default) uses the fast path; the two are kept in
exact semantic parity by differential tests (``tests/gcl/test_compile.py``),
and exploration results are bit-identical either way.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.gcl.ast import GuardedCommand, ProgramAst
from repro.gcl.compile import CompiledProgram, Values
from repro.gcl.errors import EvalError
from repro.gcl.eval import evaluate_bool, evaluate_int, execute
from repro.gcl.parser import parse_program_ast
from repro.gcl.state import ProgramState
from repro.ts.system import CommandLabel, State, TransitionSystem

#: One memoized expansion: (enabled labels, ((label, post-state), ...)).
_Expansion = Tuple[frozenset, Tuple[Tuple[CommandLabel, ProgramState], ...]]

#: Hard cap on the number of states the successor cache may hold.  Each
#: entry pins a state, its post-states and a frozenset (~1 KB on a typical
#: grid program), so an uncapped cache would rival the graph itself on a
#: million-state exploration.  The cap comfortably covers every workload
#: that *benefits* from revisits (products, simulations, warm re-explores of
#: benchmark-sized programs); beyond it, expansion simply recomputes.
SUCCESSOR_CACHE_LIMIT = 1 << 16


class ProgramValuePlane:
    """A compiled program's states as flat int64 rows, expanded in batches.

    This is the GCL implementation of
    :meth:`~repro.ts.system.TransitionSystem.value_plane`: canonical
    :class:`ProgramState` objects are just ``(names, values)`` with the
    names fixed by the program, so a state round-trips through its bare
    value tuple.  The sharded explorer stores those tuples in flat
    ``array('q')`` columns (published over shared memory to pool workers)
    and calls :meth:`expand_batch` on whole BFS rounds — one batched guard
    kernel per guard per round instead of one closure call per guard per
    state.

    Command indices in the batch results are positions in :attr:`labels`,
    which is the program's declaration order — the same order
    :meth:`~repro.gcl.program.Program.commands` reports, so the explorer's
    label table aligns bit-for-bit.
    """

    __slots__ = ("_compiled", "names", "labels", "width")

    def __init__(self, compiled: CompiledProgram) -> None:
        self._compiled = compiled
        self.names: Tuple[str, ...] = compiled.names
        self.labels: Tuple[str, ...] = tuple(
            command.label for command in compiled.commands
        )
        self.width = len(self.names)

    def __reduce__(self):
        # Travels as the AST (CompiledProgram recompiles on arrival).
        return (ProgramValuePlane, (self._compiled,))

    def encode(self, state: ProgramState) -> Values:
        """The flat row of a canonical state."""
        return state.values

    def make_state(self, values: Values) -> ProgramState:
        """The canonical state of a flat row."""
        return ProgramState(self.names, values)

    def expand_batch(
        self, rows: Sequence[Values]
    ) -> List[Tuple[int, List[Tuple[int, Values]]]]:
        """Per row: ``(enabled bitmask over labels, [(cmd index, post)])``."""
        return self._compiled.expand_batch(rows)

    def enabled_batch(self, rows: Sequence[Values]) -> Optional[List[int]]:
        """Guards-only masks per row; ``None`` if a guard raises.

        The streaming checker's per-round enabled-mask deltas: the
        explorer batches the masks of freshly discovered successors here
        (workers do it shard-side over shm) so the verifier never has to
        re-derive enabledness one state at a time.  A ``None`` simply
        skips the priming — the serial fallback recomputes, and any guard
        error keeps its serial-path surfacing point.
        """
        return self._compiled.enabled_masks_batch(rows)

    def spec(self) -> Optional[bytes]:
        """Pickled self for shipping to pool workers (``None`` if stuck)."""
        import pickle

        try:
            return pickle.dumps(self, protocol=pickle.HIGHEST_PROTOCOL)
        except Exception:
            return None


class Program(TransitionSystem):
    """Executable semantics of a :class:`~repro.gcl.ast.ProgramAst`.

    ``compiled=False`` forces the tree-walking interpreter for every guard
    and body — used by the reference column of the exploration benchmarks
    and by the differential parity tests; behaviour is identical.
    """

    def __init__(self, ast: ProgramAst, compiled: bool = True) -> None:
        self._ast = ast
        self._names: Tuple[str, ...] = ast.variables()
        self._commands: Dict[str, GuardedCommand] = {
            c.label: c for c in ast.commands
        }
        self._labels: Tuple[str, ...] = ast.command_labels()
        self._compiled: Optional[CompiledProgram] = (
            CompiledProgram(ast) if compiled else None
        )
        self._plane: Optional[ProgramValuePlane] = None
        self._command_digests: Optional[Dict[str, str]] = None
        # Successor cache.  Exploration visits each state once, but
        # products, simulations, lasso replays and repeated explorations of
        # the same Program revisit states heavily; entries are plain tuples
        # over already-interned states, so the cache costs one dict slot per
        # distinct state actually expanded.  ``_enabled`` is filled by
        # guard-only queries too (bounded exploration asks for enabledness
        # of frontier states it never expands — that must not run bodies).
        self._enabled_cache: Dict[ProgramState, frozenset] = {}
        self._posts_cache: Dict[
            ProgramState, Tuple[Tuple[CommandLabel, ProgramState], ...]
        ] = {}
        self._cache_hits = 0
        self._cache_misses = 0

    # -- pickling / sharding ----------------------------------------------

    def __getstate__(self):
        # Compiled closures and the successor cache do not travel; the
        # syntax tree does.  The receiving side re-runs ``__init__`` so a
        # worker-side Program is a fresh, semantically identical instance.
        return {"ast": self._ast, "compiled": self._compiled is not None}

    def __setstate__(self, state) -> None:
        self.__init__(state["ast"], compiled=state["compiled"])

    def shard_spec(self) -> bytes | None:
        """Programs ship as their pickled AST (closures are recompiled
        worker-side); see :meth:`TransitionSystem.shard_spec`."""
        import pickle

        try:
            return pickle.dumps(self, protocol=pickle.HIGHEST_PROTOCOL)
        except Exception:
            return None

    def value_plane(self) -> Optional[ProgramValuePlane]:
        """The packed value plane of a compiled program.

        ``None`` for interpreted programs (no closures to batch), for
        programs without variables (no rows to pack) and for programs
        with more than 64 commands (enabled masks must fit one machine
        word on the shared-memory plane) — those take the object-level
        exploration paths unchanged.
        """
        if (
            self._compiled is None
            or not self._names
            or len(self._labels) > 64
        ):
            return None
        if self._plane is None:
            self._plane = ProgramValuePlane(self._compiled)
        return self._plane

    # -- metadata ----------------------------------------------------------

    @property
    def ast(self) -> ProgramAst:
        """The underlying syntax tree."""
        return self._ast

    @property
    def name(self) -> str:
        """The program's declared name."""
        return self._ast.name

    @property
    def variable_names(self) -> Tuple[str, ...]:
        """Declared variables, in declaration order."""
        return self._names

    @property
    def uses_compiled_evaluation(self) -> bool:
        """Whether guards/bodies run as compiled closures."""
        return self._compiled is not None

    def command_digests(self) -> Dict[str, str]:
        """Per-command canonical digests: ``label → sha256 hex`` (cached).

        The digest of a command (:func:`repro.gcl.compile.command_digest`)
        identifies its guard/body semantics up to pretty-printer
        canonicalisation; the graph store compares these across program
        versions to decide which commands a stored graph can replay during
        incremental re-exploration.
        """
        if self._command_digests is None:
            from repro.gcl.compile import command_digest

            self._command_digests = {
                c.label: command_digest(c) for c in self._ast.commands
            }
        return dict(self._command_digests)

    def command(self, label: str) -> GuardedCommand:
        """The guarded command with the given label."""
        try:
            return self._commands[label]
        except KeyError:
            raise KeyError(
                f"program {self.name!r} has no command {label!r} "
                f"(has {list(self._labels)})"
            ) from None

    # -- successor cache ---------------------------------------------------

    def successor_cache_stats(self) -> Tuple[int, int]:
        """``(hits, misses)`` of the per-state expansion cache."""
        return self._cache_hits, self._cache_misses

    def clear_successor_cache(self) -> None:
        """Drop all memoized expansions (frees the per-state tuples)."""
        self._enabled_cache.clear()
        self._posts_cache.clear()
        self._cache_hits = 0
        self._cache_misses = 0

    def _is_canonical(self, state: ProgramState) -> bool:
        # Compiled slots assume declaration order; a state built with a
        # different name ordering (``ProgramState.from_dict`` sorts) must
        # take the interpreter path so its post-states preserve *its*
        # ordering, exactly as ``ProgramState.updated`` would.
        return self._compiled is not None and state.names == self._names

    def _compute_enabled(self, state: ProgramState) -> frozenset:
        """Guards only — never executes a body (frontier states rely on
        this: bounded exploration asks for their enabledness without
        expanding them, and a body error there must not surface)."""
        if self._is_canonical(state):
            return self._compiled.enabled_labels(state.values)
        return frozenset(
            label
            for label in self._labels
            if evaluate_bool(self._commands[label].guard, state)
        )

    def _compute_expansion(self, state: ProgramState) -> _Expansion:
        """Guards and bodies interleaved in label order — the interpreter's
        evaluation (and therefore error) order, one guard pass for both."""
        enabled: List[CommandLabel] = []
        posts: List[Tuple[CommandLabel, ProgramState]] = []
        if self._is_canonical(state):
            values = state.values
            names = self._names
            for command in self._compiled.commands:
                if command.guard(values):
                    enabled.append(command.label)
                    for post in command.execute(values):
                        posts.append((command.label, ProgramState(names, post)))
        else:
            for label in self._labels:
                command = self._commands[label]
                if evaluate_bool(command.guard, state):
                    enabled.append(label)
                    for target in execute(command.body, state):
                        posts.append((label, target))
        return frozenset(enabled), tuple(posts)

    def expand(self, state: State) -> _Expansion:
        """``(enabled, posts)`` computed together and memoized per state.

        Guards are evaluated once per distinct expanded state *ever*:
        exploration, products, simulation and lasso replay all share the
        cache.
        """
        assert isinstance(state, ProgramState)
        posts = self._posts_cache.get(state)
        if posts is not None:
            self._cache_hits += 1
            return self._enabled_cache[state], posts
        self._cache_misses += 1
        enabled, posts = self._compute_expansion(state)
        if len(self._posts_cache) < SUCCESSOR_CACHE_LIMIT:
            self._enabled_cache[state] = enabled
            self._posts_cache[state] = posts
        return enabled, posts

    # -- TransitionSystem ----------------------------------------------------

    def commands(self) -> Tuple[CommandLabel, ...]:
        return self._labels

    def initial_states(self) -> Iterable[State]:
        """All combinations of declared initial values/ranges.

        Range declarations are evaluated left to right; a later range bound
        may mention earlier variables (e.g. ``var n := 5, x in 0..n``).
        """

        def expand(position: int, partial: Dict[str, int]) -> Iterable[ProgramState]:
            if position == len(self._ast.declarations):
                yield ProgramState(
                    self._names, tuple(partial[n] for n in self._names)
                )
                return
            decl = self._ast.declarations[position]
            low = evaluate_int(decl.init_low, partial)
            high = evaluate_int(decl.init_high, partial)
            if low > high:
                raise EvalError(
                    f"variable {decl.name!r}: empty initial range {low}..{high}",
                    decl.location,
                )
            for value in range(low, high + 1):
                partial[decl.name] = value
                yield from expand(position + 1, partial)
            del partial[decl.name]

        return expand(0, {})

    def enabled(self, state: State) -> frozenset:
        assert isinstance(state, ProgramState)
        cached = self._enabled_cache.get(state)
        if cached is not None:
            self._cache_hits += 1
            return cached
        self._cache_misses += 1
        enabled = self._compute_enabled(state)
        if len(self._enabled_cache) < SUCCESSOR_CACHE_LIMIT:
            self._enabled_cache[state] = enabled
        return enabled

    def post(self, state: State) -> Iterable[Tuple[CommandLabel, State]]:
        assert isinstance(state, ProgramState)
        return self.expand(state)[1]

    # -- conveniences ----------------------------------------------------------

    def state(self, **valuation: int) -> ProgramState:
        """Build a state of this program from keyword arguments."""
        missing = set(self._names) - set(valuation)
        extra = set(valuation) - set(self._names)
        if missing or extra:
            raise ValueError(
                f"state for {self.name!r} needs exactly {self._names}; "
                f"missing {sorted(missing)}, extra {sorted(extra)}"
            )
        return ProgramState(
            self._names, tuple(int(valuation[n]) for n in self._names)
        )

    def guard_holds(self, label: str, state: ProgramState) -> bool:
        """Whether command ``label``'s guard holds in ``state``."""
        command = self.command(label)  # validates the label either way
        if self._is_canonical(state):
            return self._compiled.by_label[label].guard(state.values)
        return evaluate_bool(command.guard, state)


def parse_program(source: str, compiled: bool = True) -> Program:
    """Parse GCL source text into an executable :class:`Program`."""
    return Program(parse_program_ast(source), compiled=compiled)
