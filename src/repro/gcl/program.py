"""Program semantics: a parsed GCL program as a transition system.

A :class:`Program` is the paper's ``*[ ℓ₁: g₁ → c₁ □ ... □ ℓ_N: g_N → c_N ]``
loop.  Its states are variable valuations; command ``ℓᵢ`` is *enabled* in a
state iff its guard holds there; a transition executes one enabled command's
body atomically.  The loop terminates in states where no guard holds.
"""

from __future__ import annotations

from typing import Dict, Iterable, Tuple

from repro.gcl.ast import GuardedCommand, ProgramAst
from repro.gcl.errors import EvalError
from repro.gcl.eval import evaluate_bool, evaluate_int, execute
from repro.gcl.parser import parse_program_ast
from repro.gcl.state import ProgramState
from repro.ts.system import CommandLabel, State, TransitionSystem


class Program(TransitionSystem):
    """Executable semantics of a :class:`~repro.gcl.ast.ProgramAst`."""

    def __init__(self, ast: ProgramAst) -> None:
        self._ast = ast
        self._names: Tuple[str, ...] = ast.variables()
        self._commands: Dict[str, GuardedCommand] = {
            c.label: c for c in ast.commands
        }
        self._labels: Tuple[str, ...] = ast.command_labels()

    # -- metadata ----------------------------------------------------------

    @property
    def ast(self) -> ProgramAst:
        """The underlying syntax tree."""
        return self._ast

    @property
    def name(self) -> str:
        """The program's declared name."""
        return self._ast.name

    @property
    def variable_names(self) -> Tuple[str, ...]:
        """Declared variables, in declaration order."""
        return self._names

    def command(self, label: str) -> GuardedCommand:
        """The guarded command with the given label."""
        try:
            return self._commands[label]
        except KeyError:
            raise KeyError(
                f"program {self.name!r} has no command {label!r} "
                f"(has {list(self._labels)})"
            ) from None

    # -- TransitionSystem ----------------------------------------------------

    def commands(self) -> Tuple[CommandLabel, ...]:
        return self._labels

    def initial_states(self) -> Iterable[State]:
        """All combinations of declared initial values/ranges.

        Range declarations are evaluated left to right; a later range bound
        may mention earlier variables (e.g. ``var n := 5, x in 0..n``).
        """

        def expand(position: int, partial: Dict[str, int]) -> Iterable[ProgramState]:
            if position == len(self._ast.declarations):
                yield ProgramState(
                    self._names, tuple(partial[n] for n in self._names)
                )
                return
            decl = self._ast.declarations[position]
            low = evaluate_int(decl.init_low, partial)
            high = evaluate_int(decl.init_high, partial)
            if low > high:
                raise EvalError(
                    f"variable {decl.name!r}: empty initial range {low}..{high}",
                    decl.location,
                )
            for value in range(low, high + 1):
                partial[decl.name] = value
                yield from expand(position + 1, partial)
            del partial[decl.name]

        return expand(0, {})

    def enabled(self, state: State) -> frozenset:
        assert isinstance(state, ProgramState)
        return frozenset(
            label
            for label in self._labels
            if evaluate_bool(self._commands[label].guard, state)
        )

    def post(self, state: State) -> Iterable[Tuple[CommandLabel, State]]:
        assert isinstance(state, ProgramState)
        for label in self._labels:
            command = self._commands[label]
            if not evaluate_bool(command.guard, state):
                continue
            for target in execute(command.body, state):
                yield label, target

    # -- conveniences ----------------------------------------------------------

    def state(self, **valuation: int) -> ProgramState:
        """Build a state of this program from keyword arguments."""
        missing = set(self._names) - set(valuation)
        extra = set(valuation) - set(self._names)
        if missing or extra:
            raise ValueError(
                f"state for {self.name!r} needs exactly {self._names}; "
                f"missing {sorted(missing)}, extra {sorted(extra)}"
            )
        return ProgramState(
            self._names, tuple(int(valuation[n]) for n in self._names)
        )

    def guard_holds(self, label: str, state: ProgramState) -> bool:
        """Whether command ``label``'s guard holds in ``state``."""
        return evaluate_bool(self.command(label).guard, state)


def parse_program(source: str) -> Program:
    """Parse GCL source text into an executable :class:`Program`."""
    return Program(parse_program_ast(source))
