"""Program states: immutable integer valuations of the declared variables."""

from __future__ import annotations

from typing import Dict, Iterator, Mapping, Tuple


class ProgramState(Mapping[str, int]):
    """An immutable variable valuation.

    The variable-name tuple is shared between all states of a program, so a
    state is essentially a tuple of ints — compact and hashable, as required
    of transition-system states.
    """

    __slots__ = ("_names", "_values", "_hash")

    def __init__(self, names: Tuple[str, ...], values: Tuple[int, ...]) -> None:
        if len(names) != len(values):
            raise ValueError(
                f"{len(names)} variable names but {len(values)} values"
            )
        self._names = names
        self._values = values
        self._hash = hash(values)

    @staticmethod
    def from_dict(valuation: Mapping[str, int]) -> "ProgramState":
        """Build a state from a plain mapping (names sorted for determinism)."""
        names = tuple(sorted(valuation))
        return ProgramState(names, tuple(int(valuation[n]) for n in names))

    # -- Mapping interface -------------------------------------------------

    def __getitem__(self, name: str) -> int:
        try:
            index = self._names.index(name)
        except ValueError:
            raise KeyError(name) from None
        return self._values[index]

    def __iter__(self) -> Iterator[str]:
        return iter(self._names)

    def __len__(self) -> int:
        return len(self._names)

    # -- identity ----------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ProgramState):
            return NotImplemented
        return self._names == other._names and self._values == other._values

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        inner = ", ".join(f"{n}={v}" for n, v in zip(self._names, self._values))
        return f"⟨{inner}⟩"

    # -- functional update ---------------------------------------------------

    @property
    def names(self) -> Tuple[str, ...]:
        """The variable names (shared schema)."""
        return self._names

    @property
    def values(self) -> Tuple[int, ...]:
        """The values, aligned with :attr:`names`."""
        return self._values

    def updated(self, changes: Mapping[str, int]) -> "ProgramState":
        """A new state with ``changes`` applied; unknown names are rejected."""
        unknown = set(changes) - set(self._names)
        if unknown:
            raise KeyError(f"unknown variables {sorted(unknown)}")
        values = tuple(
            int(changes.get(name, value))
            for name, value in zip(self._names, self._values)
        )
        return ProgramState(self._names, values)

    def as_dict(self) -> Dict[str, int]:
        """A plain-dict copy of the valuation."""
        return dict(zip(self._names, self._values))
