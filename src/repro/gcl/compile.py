"""Compilation of GCL guards and command bodies to Python closures.

:mod:`repro.gcl.eval` walks the syntax tree on *every* evaluation — an
``isinstance`` chain plus a ``names.index`` scan per variable reference,
paid once per guard per state during exploration.  This module lowers each
expression and statement once, at program-construction time, into nested
closures over the program's *value tuple* (variables resolved to tuple
slots), so the per-state cost is a few indexed loads and arithmetic ops.

The contract is **exact semantic parity** with the interpreter, enforced by
the differential tests in ``tests/gcl/test_compile.py``:

* ``and``/``or`` short-circuit (the right operand may be undefined when
  irrelevant);
* ``div``/``mod`` follow the mathematical (floor) convention and raise
  :class:`EvalError` on a zero divisor, with the interpreter's messages;
* an empty ``choose`` range raises :class:`EvalError`;
* unknown variables raise :class:`EvalError` (expressions) or ``KeyError``
  (assignment targets) exactly when — and in the order that — the
  interpreter would, *after* evaluating whatever the interpreter evaluates
  first;
* type mismatches ("expected an integer/boolean, got …") surface with the
  evaluated value in the message, like the interpreter's post-evaluation
  checks;
* post-state lists are deduplicated preserving first-occurrence order.

Compilation itself never raises on semantically-broken programs: errors are
lowered to closures that raise at execution time, so a compiled program
fails exactly where an interpreted one would.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.gcl.ast import (
    Assign,
    Binary,
    BinaryOp,
    BoolLiteral,
    Call,
    Choose,
    COMPARISONS,
    CONNECTIVES,
    Expr,
    GuardedCommand,
    If,
    IntLiteral,
    ProgramAst,
    Seq,
    Skip,
    Stmt,
    Unary,
    UnaryOp,
    VarRef,
)
from repro.gcl.errors import EvalError
from repro.gcl.state import ProgramState

Values = Tuple[int, ...]
IntFn = Callable[[Values], int]
BoolFn = Callable[[Values], bool]
BodyFn = Callable[[Values], List[Values]]


# ---------------------------------------------------------------------------
# Shared runtime helpers (the closures close over these, keeping each
# compiled node tiny)
# ---------------------------------------------------------------------------


def _div(left: int, right: int) -> int:
    if right == 0:
        raise EvalError("division by zero")
    return left // right


def _mod(left: int, right: int) -> int:
    if right == 0:
        raise EvalError("modulo by zero")
    return left % right


def _call_builtin(function: str, args: Sequence[int]) -> int:
    # Mirrors the interpreter's ``_evaluate_call`` — including evaluating
    # the arguments *before* rejecting an unknown builtin.
    if function == "min":
        return min(args)
    if function == "max":
        return max(args)
    if function == "abs":
        return abs(args[0])
    raise EvalError(f"unknown builtin {function!r}")


def _raise_expected_int(value: object) -> int:
    raise EvalError(f"expected an integer, got {value!r}")


def _raise_expected_bool(value: object) -> bool:
    raise EvalError(f"expected a boolean, got {value!r}")


def _raise_unknown_variable(name: str) -> int:
    raise EvalError(f"unknown variable {name!r}")


# ---------------------------------------------------------------------------
# Expression compilation
# ---------------------------------------------------------------------------

# Static result type of a node: GCL's expression language is simply typed —
# every node's result type is known from its constructor alone, so context
# mismatches can be resolved at compile time (into closures that evaluate
# the operand and then raise the interpreter's message).

_INT_BINARY = {
    BinaryOp.ADD,
    BinaryOp.SUB,
    BinaryOp.MUL,
    BinaryOp.DIV,
    BinaryOp.MOD,
}


def _is_bool_typed(expr: Expr) -> bool:
    if isinstance(expr, BoolLiteral):
        return True
    if isinstance(expr, Unary):
        return expr.op is UnaryOp.NOT
    if isinstance(expr, Binary):
        return expr.op in COMPARISONS or expr.op in CONNECTIVES
    return False


def compile_int(expr: Expr, slots: Dict[str, int]) -> IntFn:
    """Compile ``expr`` for an integer context (``evaluate_int`` parity)."""
    if _is_bool_typed(expr):
        # The interpreter evaluates first, then rejects the boolean with
        # the value in the message; inner EvalErrors win, as they do there.
        fn = compile_bool(expr, slots)
        return lambda values: _raise_expected_int(fn(values))
    if isinstance(expr, IntLiteral):
        constant = expr.value
        return lambda values: constant
    if isinstance(expr, VarRef):
        slot = slots.get(expr.name)
        if slot is None:
            name = expr.name
            return lambda values: _raise_unknown_variable(name)
        return lambda values, slot=slot: values[slot]
    if isinstance(expr, Unary) and expr.op is UnaryOp.NEG:
        operand = compile_int(expr.operand, slots)
        return lambda values: -operand(values)
    if isinstance(expr, Binary) and expr.op in _INT_BINARY:
        left = compile_int(expr.left, slots)
        right = compile_int(expr.right, slots)
        op = expr.op
        if op is BinaryOp.ADD:
            return lambda values: left(values) + right(values)
        if op is BinaryOp.SUB:
            return lambda values: left(values) - right(values)
        if op is BinaryOp.MUL:
            return lambda values: left(values) * right(values)
        if op is BinaryOp.DIV:
            return lambda values: _div(left(values), right(values))
        return lambda values: _mod(left(values), right(values))
    if isinstance(expr, Call):
        args = tuple(compile_int(a, slots) for a in expr.args)
        function = expr.function
        if function == "abs" and len(args) == 1:
            arg = args[0]
            return lambda values: abs(arg(values))
        if function == "min" and len(args) == 2:
            a, b = args
            return lambda values: min(a(values), b(values))
        if function == "max" and len(args) == 2:
            a, b = args
            return lambda values: max(a(values), b(values))
        return lambda values: _call_builtin(
            function, [a(values) for a in args]
        )
    return _compile_unhandled_expr(expr)


def compile_bool(expr: Expr, slots: Dict[str, int]) -> BoolFn:
    """Compile ``expr`` for a boolean context (``evaluate_bool`` parity)."""
    if isinstance(expr, BoolLiteral):
        constant = expr.value
        return lambda values: constant
    if isinstance(expr, Unary) and expr.op is UnaryOp.NOT:
        operand = compile_bool(expr.operand, slots)
        return lambda values: not operand(values)
    if isinstance(expr, Binary):
        op = expr.op
        if op in CONNECTIVES:
            left = compile_bool(expr.left, slots)
            right = compile_bool(expr.right, slots)
            if op is BinaryOp.AND:
                # ``left and right``: short-circuits, and both operands are
                # bool-compiled, so the result is a genuine bool.
                return lambda values: left(values) and right(values)
            return lambda values: left(values) or right(values)
        if op in COMPARISONS:
            left = compile_int(expr.left, slots)
            right = compile_int(expr.right, slots)
            if op is BinaryOp.EQ:
                return lambda values: left(values) == right(values)
            if op is BinaryOp.NE:
                return lambda values: left(values) != right(values)
            if op is BinaryOp.LT:
                return lambda values: left(values) < right(values)
            if op is BinaryOp.LE:
                return lambda values: left(values) <= right(values)
            if op is BinaryOp.GT:
                return lambda values: left(values) > right(values)
            return lambda values: left(values) >= right(values)
    if isinstance(
        expr, (IntLiteral, VarRef, Call)
    ) or (isinstance(expr, Unary) and expr.op is UnaryOp.NEG) or (
        isinstance(expr, Binary) and expr.op in _INT_BINARY
    ):
        fn = compile_int(expr, slots)
        return lambda values: _raise_expected_bool(fn(values))
    return _compile_unhandled_expr(expr)


def _compile_unhandled_expr(expr: Expr):
    # The interpreter raises on *evaluation* of a node it does not know;
    # lowering to a raising closure keeps program construction total.
    message = f"unhandled expression node {type(expr).__name__}"
    def fail(values):
        raise EvalError(message)
    return fail


# ---------------------------------------------------------------------------
# Batched guard kernels
# ---------------------------------------------------------------------------
#
# The closure tree above costs one Python call per *node per state*.  For
# exploration that price is paid once per guard per expanded state — the
# dominant cost on million-state families.  A guard is a pure expression
# over the value tuple, so it can instead be emitted as a single Python
# expression string and compiled once into one code object evaluated over a
# whole batch of states per call:
#
#     lambda rows: [ <guard expr over _v> for _v in rows ]
#
# One bytecode loop replaces len(rows) × tree-size closure calls.  Parity
# with the closure path is exact for *successful* evaluations: the emitted
# expression uses the same runtime helpers (``_div``/``_mod``/builtins) and
# Python's own short-circuiting ``and``/``or``.  Error parity is handled by
# the caller (:meth:`CompiledProgram.expand_batch`): a batch that raises
# anywhere is re-run state-major through the closures so the interpreter's
# error — and error *order* — surfaces unchanged.


class _Unsupported(Exception):
    """An expression node the batch emitter does not handle."""


_BATCH_GLOBALS = {
    "__builtins__": {},
    "_div": _div,
    "_mod": _mod,
    "_uv": _raise_unknown_variable,
    "_xi": _raise_expected_int,
    "_xb": _raise_expected_bool,
    "_cb": _call_builtin,
    "abs": abs,
    "min": min,
    "max": max,
}


def _emit_int(expr: Expr, slots: Dict[str, int]) -> str:
    """Emit ``expr`` as a Python source fragment in an integer context."""
    if _is_bool_typed(expr):
        return f"_xi({_emit_bool(expr, slots)})"
    if isinstance(expr, IntLiteral):
        return repr(expr.value)
    if isinstance(expr, VarRef):
        slot = slots.get(expr.name)
        if slot is None:
            return f"_uv({expr.name!r})"
        return f"_v[{slot}]"
    if isinstance(expr, Unary) and expr.op is UnaryOp.NEG:
        return f"(-{_emit_int(expr.operand, slots)})"
    if isinstance(expr, Binary) and expr.op in _INT_BINARY:
        left = _emit_int(expr.left, slots)
        right = _emit_int(expr.right, slots)
        op = expr.op
        if op is BinaryOp.ADD:
            return f"({left} + {right})"
        if op is BinaryOp.SUB:
            return f"({left} - {right})"
        if op is BinaryOp.MUL:
            return f"({left} * {right})"
        if op is BinaryOp.DIV:
            return f"_div({left}, {right})"
        return f"_mod({left}, {right})"
    if isinstance(expr, Call):
        args = [_emit_int(a, slots) for a in expr.args]
        function = expr.function
        if function == "abs" and len(args) == 1:
            return f"abs({args[0]})"
        if function == "min" and len(args) == 2:
            return f"min({args[0]}, {args[1]})"
        if function == "max" and len(args) == 2:
            return f"max({args[0]}, {args[1]})"
        return f"_cb({function!r}, [{', '.join(args)}])"
    raise _Unsupported(type(expr).__name__)


def _emit_bool(expr: Expr, slots: Dict[str, int]) -> str:
    """Emit ``expr`` as a Python source fragment in a boolean context."""
    if isinstance(expr, BoolLiteral):
        return repr(expr.value)
    if isinstance(expr, Unary) and expr.op is UnaryOp.NOT:
        return f"(not {_emit_bool(expr.operand, slots)})"
    if isinstance(expr, Binary):
        op = expr.op
        if op in CONNECTIVES:
            left = _emit_bool(expr.left, slots)
            right = _emit_bool(expr.right, slots)
            # Python's ``and``/``or`` short-circuit exactly like the
            # closures, and both operands are bool-emitted.
            joiner = "and" if op is BinaryOp.AND else "or"
            return f"({left} {joiner} {right})"
        if op in COMPARISONS:
            left = _emit_int(expr.left, slots)
            right = _emit_int(expr.right, slots)
            symbol = {
                BinaryOp.EQ: "==",
                BinaryOp.NE: "!=",
                BinaryOp.LT: "<",
                BinaryOp.LE: "<=",
                BinaryOp.GT: ">",
                BinaryOp.GE: ">=",
            }[op]
            return f"({left} {symbol} {right})"
    if isinstance(
        expr, (IntLiteral, VarRef, Call)
    ) or (isinstance(expr, Unary) and expr.op is UnaryOp.NEG) or (
        isinstance(expr, Binary) and expr.op in _INT_BINARY
    ):
        return f"_xb({_emit_int(expr, slots)})"
    raise _Unsupported(type(expr).__name__)


def compile_guard_batch(
    expr: Expr, slots: Dict[str, int], guard: BoolFn
) -> Callable[[Sequence[Values]], List[bool]]:
    """``rows → [guard(row) for row in rows]`` as one code object.

    Falls back to mapping the closure ``guard`` when the expression uses a
    node the emitter does not know — semantics are identical either way,
    only the per-row call overhead differs.
    """
    try:
        source = f"lambda rows: [{_emit_bool(expr, slots)} for _v in rows]"
    except _Unsupported:
        return lambda rows: [guard(values) for values in rows]
    return eval(source, dict(_BATCH_GLOBALS))  # noqa: S307 - trusted emitter


def _emit_post_tuple(stmt: Stmt, slots: Dict[str, int], width: int) -> str:
    """Emit a *single-post* body as one post-tuple expression over ``_v``.

    Only bodies that deterministically produce exactly one successor
    qualify: ``skip``, simultaneous assignment, and ``if`` over such
    bodies.  Everything else (``choose``, sequencing) raises
    :class:`_Unsupported` so the caller keeps the closure path.

    The tuple elements evaluate in slot order rather than the
    interpreter's target order; both read only the pre-state ``_v``, so
    successful evaluations are identical and a raising one differs only
    in *which* error surfaces first — which the batch caller already
    repairs by re-running state-major.
    """
    if isinstance(stmt, Skip):
        return "_v"
    if isinstance(stmt, Assign):
        if set(stmt.targets) - set(slots):
            raise _Unsupported("Assign(unknown target)")
        if len(set(stmt.targets)) != len(stmt.targets):
            raise _Unsupported("Assign(duplicate target)")
        by_slot = {
            slots[t]: _emit_int(v, slots)
            for t, v in zip(stmt.targets, stmt.values)
        }
        elements = [by_slot.get(j, f"_v[{j}]") for j in range(width)]
        trailer = "," if width == 1 else ""
        return f"({', '.join(elements)}{trailer})"
    if isinstance(stmt, If):
        then_src = _emit_post_tuple(stmt.then_branch, slots, width)
        else_src = _emit_post_tuple(stmt.else_branch, slots, width)
        condition = _emit_bool(stmt.condition, slots)
        return f"({then_src} if {condition} else {else_src})"
    raise _Unsupported(type(stmt).__name__)


def compile_body_batch_single(
    stmt: Stmt, slots: Dict[str, int]
) -> Optional[Callable[[Sequence[Values]], List[Values]]]:
    """``rows → [the one post of row for row in rows]`` as one code object.

    Returns ``None`` when the body can yield multiple (or zero) posts or
    uses a node the emitter does not know; the caller then loops the
    deduplicating :meth:`CompiledCommand.execute` closure instead.
    """
    try:
        post = _emit_post_tuple(stmt, slots, len(slots))
    except _Unsupported:
        return None
    source = f"lambda rows: [{post} for _v in rows]"
    return eval(source, dict(_BATCH_GLOBALS))  # noqa: S307 - trusted emitter


# ---------------------------------------------------------------------------
# Statement compilation
# ---------------------------------------------------------------------------


def compile_stmt(stmt: Stmt, slots: Dict[str, int]) -> BodyFn:
    """Compile a statement into ``values → [post-values]`` (no dedup)."""
    if isinstance(stmt, Skip):
        return lambda values: [values]
    if isinstance(stmt, Assign):
        value_fns = tuple(compile_int(v, slots) for v in stmt.values)
        unknown = sorted(set(stmt.targets) - set(slots))
        if unknown:
            # Interpreter order: all right-hand sides evaluate first, then
            # ``ProgramState.updated`` raises KeyError on unknown targets.
            def fail_assign(values):
                for fn in value_fns:
                    fn(values)
                raise KeyError(f"unknown variables {unknown}")
            return fail_assign
        indices = tuple(slots[t] for t in stmt.targets)
        if len(indices) == 1:
            index = indices[0]
            value_fn = value_fns[0]
            def run_single(values):
                out = list(values)
                out[index] = value_fn(values)
                return [tuple(out)]
            return run_single
        def run_assign(values):
            out = list(values)
            # Right-hand sides all read the pre-state tuple: simultaneous
            # assignment, in the interpreter's left-to-right order.
            for index, fn in zip(indices, value_fns):
                out[index] = fn(values)
            return [tuple(out)]
        return run_assign
    if isinstance(stmt, Choose):
        low_fn = compile_int(stmt.low, slots)
        high_fn = compile_int(stmt.high, slots)
        target = stmt.target
        slot = slots.get(target)
        if slot is None:
            def fail_choose(values):
                low, high = low_fn(values), high_fn(values)
                if low > high:
                    raise EvalError(
                        f"choose {target} in {low}..{high}: empty range"
                    )
                raise KeyError(f"unknown variables {[target]}")
            return fail_choose
        def run_choose(values):
            low, high = low_fn(values), high_fn(values)
            if low > high:
                raise EvalError(
                    f"choose {target} in {low}..{high}: empty range"
                )
            out = []
            scratch = list(values)
            for value in range(low, high + 1):
                scratch[slot] = value
                out.append(tuple(scratch))
            return out
        return run_choose
    if isinstance(stmt, If):
        condition = compile_bool(stmt.condition, slots)
        then_fn = compile_stmt(stmt.then_branch, slots)
        else_fn = compile_stmt(stmt.else_branch, slots)
        return lambda values: (
            then_fn(values) if condition(values) else else_fn(values)
        )
    if isinstance(stmt, Seq):
        parts = tuple(compile_stmt(part, slots) for part in stmt.statements)
        def run_seq(values):
            frontier = [values]
            for part in parts:
                frontier = [post for pre in frontier for post in part(pre)]
            return frontier
        return run_seq
    message = f"unhandled statement node {type(stmt).__name__}"
    def fail(values):
        raise EvalError(message)
    return fail


# ---------------------------------------------------------------------------
# Commands and programs
# ---------------------------------------------------------------------------


class CompiledCommand:
    """One guarded command lowered to closures over the value tuple."""

    __slots__ = (
        "label",
        "guard",
        "guard_batch",
        "body",
        "body_batch_single",
        "_deterministic",
    )

    def __init__(
        self, command: GuardedCommand, slots: Dict[str, int]
    ) -> None:
        self.label = command.label
        self.guard: BoolFn = compile_bool(command.guard, slots)
        self.guard_batch = compile_guard_batch(
            command.guard, slots, self.guard
        )
        self.body: BodyFn = compile_stmt(command.body, slots)
        self.body_batch_single = compile_body_batch_single(
            command.body, slots
        )
        # A body without ``choose`` yields exactly one post-state, so the
        # dedup pass (and its set allocation) can be skipped entirely.
        self._deterministic = not _contains_choose(command.body)

    def execute(self, values: Values) -> List[Values]:
        """All post-value tuples, deduplicated preserving order."""
        results = self.body(values)
        if self._deterministic or len(results) < 2:
            return results
        unique: List[Values] = []
        seen = set()
        for post in results:
            if post not in seen:
                seen.add(post)
                unique.append(post)
        return unique


def _contains_choose(stmt: Stmt) -> bool:
    if isinstance(stmt, Choose):
        return True
    if isinstance(stmt, If):
        return _contains_choose(stmt.then_branch) or _contains_choose(
            stmt.else_branch
        )
    if isinstance(stmt, Seq):
        return any(_contains_choose(part) for part in stmt.statements)
    return False


class CompiledProgram:
    """All of a program's commands, compiled against its variable layout.

    The slot map is the declaration order of
    :meth:`~repro.gcl.ast.ProgramAst.variables` — the same order
    :class:`~repro.gcl.state.ProgramState` tuples produced by
    :class:`~repro.gcl.program.Program` use, so value tuples move between
    the two without translation.
    """

    __slots__ = ("ast", "names", "slots", "commands", "by_label")

    def __init__(self, ast: ProgramAst) -> None:
        self.ast: ProgramAst = ast
        self.names: Tuple[str, ...] = ast.variables()
        self.slots: Dict[str, int] = {
            name: index for index, name in enumerate(self.names)
        }
        self.commands: Tuple[CompiledCommand, ...] = tuple(
            CompiledCommand(command, self.slots) for command in ast.commands
        )
        self.by_label: Dict[str, CompiledCommand] = {
            compiled.label: compiled for compiled in self.commands
        }

    def __reduce__(self):
        # Closures cannot be pickled, but the syntax tree they were lowered
        # from can: workers recompile from the AST, which is deterministic,
        # so a round-tripped CompiledProgram is semantically identical.
        return (CompiledProgram, (self.ast,))

    def expand_values(
        self, values: Values
    ) -> Tuple[int, List[Tuple[int, Values]]]:
        """One state's ``(enabled bitmask, [(command index, post-values)])``.

        Guards and bodies interleave in declaration order — the serial
        explorer's evaluation (and error) order; the bitmask is over
        :attr:`commands` positions.
        """
        mask = 0
        posts: List[Tuple[int, Values]] = []
        for k, command in enumerate(self.commands):
            if command.guard(values):
                mask |= 1 << k
                for post in command.execute(values):
                    posts.append((k, post))
        return mask, posts

    def expand_batch(
        self, rows: Sequence[Values]
    ) -> List[Tuple[int, List[Tuple[int, Values]]]]:
        """:meth:`expand_values` of every row, batched per guard.

        The fast path runs command-major: each guard's batch kernel over
        all rows (one code-object call per *guard*, not per guard per
        state), then — where the body is a single deterministic post —
        the fused post-tuple kernel over the enabled rows in one more
        code-object call.  Posts still land state-major (command index
        ascending within each state), identical to
        :meth:`expand_values`.  Guards and bodies are pure, so the
        reordering cannot change results — but it can change which error
        surfaces first, so any exception sends the whole batch down the
        state-major reference path where the serial order's error
        re-raises unchanged.
        """
        commands = self.commands
        try:
            n = len(rows)
            masks = [0] * n
            posts_per: List[List[Tuple[int, Values]]] = [[] for _ in range(n)]
            for k, command in enumerate(commands):
                flags = command.guard_batch(rows)
                enabled = [i for i, flag in enumerate(flags) if flag]
                if not enabled:
                    continue
                bit = 1 << k
                single = command.body_batch_single
                if single is not None:
                    posts = single([rows[i] for i in enabled])
                    for i, post in zip(enabled, posts):
                        masks[i] |= bit
                        posts_per[i].append((k, post))
                else:
                    execute = command.execute
                    for i in enabled:
                        masks[i] |= bit
                        row_posts = posts_per[i]
                        for post in execute(rows[i]):
                            row_posts.append((k, post))
            return list(zip(masks, posts_per))
        except Exception:
            return [self.expand_values(values) for values in rows]

    def enabled_labels(self, values: Values) -> frozenset:
        """Labels whose guards hold on ``values`` (declaration order)."""
        return frozenset(
            compiled.label
            for compiled in self.commands
            if compiled.guard(values)
        )

    def enabled_masks_batch(
        self, rows: Sequence[Values]
    ) -> Optional[List[int]]:
        """Guards-only :meth:`expand_batch`: the enabled bitmask per row.

        One batched guard kernel per *command* over the whole batch — no
        bodies run, so this is what the streaming checker's enabled-mask
        deltas cost per exploration round.  Returns ``None`` if any guard
        raises: callers use these masks *speculatively* (priming caches
        ahead of expansion), and an error must surface where the serial
        path would raise it — at expansion or flush time — not here.
        """
        try:
            masks = [0] * len(rows)
            for k, command in enumerate(self.commands):
                flags = command.guard_batch(rows)
                bit = 1 << k
                for i, flag in enumerate(flags):
                    if flag:
                        masks[i] |= bit
            return masks
        except Exception:
            return None

    def execute_command(
        self, label: str, state: ProgramState
    ) -> List[ProgramState]:
        """Run one command's body from ``state`` (for tests and tools)."""
        names = self.names
        return [
            ProgramState(names, post)
            for post in self.by_label[label].execute(state.values)
        ]


def compile_program(ast: ProgramAst) -> CompiledProgram:
    """Lower every guard and body of ``ast`` into closures, once."""
    return CompiledProgram(ast)


def command_digest(command) -> str:
    """Canonical SHA-256 of one guarded command.

    Hashes the pretty-printed rendering (``label: guard -> body``) — the
    same canonicalisation the whole-program cache key uses, so the digest
    is insensitive to source whitespace/comments and sensitive to every
    semantic ingredient of the command.  Two commands with equal digests
    have identical guard and body closures at every state, which is what
    lets the graph store replay a stored graph's per-state results for
    digest-unchanged commands during incremental re-exploration.
    """
    import hashlib

    from repro.gcl.pretty import render_command

    return hashlib.sha256(
        render_command(command).encode("utf-8")
    ).hexdigest()
