"""Rabin-style progress measures and the §5 comparison with stack assertions.

[KK91]'s Rabin measures map program states into a coloured tree; §5 lists
three technical differences that make stack assertions the more convenient
annotation device:

1. "Two stacks may contain the same progress values, but be colored
   differently.  In a Rabin progress measure the coloring is a function of
   the progress values."  Here: in a :class:`RabinStyleMeasure` each measure
   *value* belongs to exactly one hypothesis subject (colour); a stack
   assignment reusing a value under two subjects cannot be translated.
2. "For a Rabin progress measure, satisfaction of an enabling condition is
   expressed in terms of the new state."  Here: activity by enabledness
   consults only the *target* state.
3. "There may be several choices for an active hypothesis ... For Rabin
   progress measures the active hypothesis is uniquely determined."  Here:
   the active level is *defined* as the lowest level whose entry changed or
   whose command is enabled in the new state, and the conditions must hold
   at that level — no search.

:func:`check_rabin_style` verifies a stack-shaped assignment under these
stricter rules; :func:`classify_stack_as_rabin` reports which of the three
differences (if any) blocks a direct translation of a given fair
termination measure, making the §5 discussion executable (experiment E11).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.measures.assignment import StackAssignment
from repro.measures.hypotheses import TERMINATION
from repro.measures.stack import Stack
from repro.ts.explore import ReachableGraph
from repro.ts.system import Transition


@dataclass(frozen=True)
class RabinRuleViolation:
    """A transition failing the stricter Rabin-style rules."""

    transition: Transition
    detail: str

    def __str__(self) -> str:
        return f"{self.detail} on {self.transition}"


@dataclass
class RabinStyleReport:
    """Outcome of the Rabin-style check plus colouring diagnostics."""

    violations: List[RabinRuleViolation]
    colour_clashes: List[str]
    transitions_checked: int

    @property
    def ok(self) -> bool:
        """Valid as a Rabin-style measure (all three §5 restrictions met)."""
        return not self.violations and not self.colour_clashes

    def summary(self) -> str:
        """One-line summary for reports."""
        if self.ok:
            return f"PASS: {self.transitions_checked} transitions (Rabin rules)"
        return (
            f"FAIL: {len(self.violations)} rule violations, "
            f"{len(self.colour_clashes)} colour clashes over "
            f"{self.transitions_checked} transitions"
        )


def _unique_active_level(
    source: Stack, target: Stack, enabled_new: frozenset
) -> Optional[int]:
    """Difference 3: the Rabin active level is *determined*, not chosen —
    the lowest level whose entry changed or whose command is enabled in the
    new state."""
    limit = min(source.height, target.height)
    for level in range(limit):
        before, after = source.level(level), target.level(level)
        if before != after:
            return level
        subject = before.subject
        if subject != TERMINATION and subject in enabled_new:
            return level
    if source.height != target.height:
        return limit
    return None


def check_rabin_style(
    graph: ReachableGraph,
    assignment: StackAssignment,
) -> RabinStyleReport:
    """Check a stack-shaped assignment under the three Rabin restrictions."""
    order = assignment.order
    stacks = [assignment(graph.state_of(i)) for i in range(len(graph))]

    # Difference 1: colouring must be a function of the progress values.
    colour_of: Dict[object, str] = {}
    clashes: List[str] = []
    for stack in stacks:
        for hypothesis in stack:
            if hypothesis.value is None:
                continue
            previous = colour_of.get(hypothesis.value)
            if previous is None:
                colour_of[hypothesis.value] = hypothesis.subject
            elif previous != hypothesis.subject:
                clashes.append(
                    f"value {hypothesis.value!r} coloured both {previous!r} "
                    f"and {hypothesis.subject!r}"
                )

    violations: List[RabinRuleViolation] = []
    for t in graph.transitions:
        source, target = stacks[t.source], stacks[t.target]
        enabled_new = graph.enabled_at(t.target)  # difference 2: new state only
        level = _unique_active_level(source, target, enabled_new)
        plain = graph.to_transition(t)
        if level is None:
            violations.append(
                RabinRuleViolation(plain, "no determined active level")
            )
            continue
        if level >= min(source.height, target.height):
            violations.append(
                RabinRuleViolation(
                    plain, "stacks differ only in height; no common active level"
                )
            )
            continue
        before, after = source.level(level), target.level(level)
        if before.subject != after.subject:
            violations.append(
                RabinRuleViolation(
                    plain,
                    f"active level {level} changes colour "
                    f"({before.subject!r} → {after.subject!r})",
                )
            )
            continue
        subject = before.subject
        # Non-invalidation at and below the determined level.
        if any(h.subject == t.command for h in source.take(level + 1)):
            violations.append(
                RabinRuleViolation(
                    plain,
                    f"executed command {t.command!r} at or below determined "
                    f"active level {level}",
                )
            )
            continue
        # Activity at exactly the determined level.
        enabled_ok = subject != TERMINATION and subject in enabled_new
        decrease_ok = (
            before.value is not None
            and after.value is not None
            and order.gt(before.value, after.value)
        )
        if not (enabled_ok or decrease_ok):
            violations.append(
                RabinRuleViolation(
                    plain,
                    f"determined active level {level} ({subject!r}) is not "
                    "active: not enabled in the new state and no measure "
                    "decrease",
                )
            )
    return RabinStyleReport(
        violations=violations,
        colour_clashes=clashes,
        transitions_checked=len(graph.transitions),
    )


@dataclass(frozen=True)
class TranslationVerdict:
    """Which §5 differences block translating a stack measure to Rabin form."""

    translatable: bool
    blocked_by_colouring: bool
    blocked_by_enabling: int  # transitions relying on the *old* state
    blocked_by_choice: int  # transitions whose determined level is not active

    def __str__(self) -> str:
        if self.translatable:
            return "directly translatable to a Rabin measure"
        reasons = []
        if self.blocked_by_colouring:
            reasons.append("value colouring is not functional (difference 1)")
        if self.blocked_by_enabling:
            reasons.append(
                f"{self.blocked_by_enabling} transitions need old-state "
                "enabledness (difference 2)"
            )
        if self.blocked_by_choice:
            reasons.append(
                f"{self.blocked_by_choice} transitions need a non-determined "
                "active choice (difference 3)"
            )
        return "not directly translatable: " + "; ".join(reasons)


def classify_stack_as_rabin(
    graph: ReachableGraph,
    assignment: StackAssignment,
) -> TranslationVerdict:
    """Diagnose a (valid) fair termination measure against the Rabin rules.

    "Thus it is not possible to translate directly a fair termination
    measure into a Rabin progress measure" — this function says, for a
    concrete measure, *why*.
    """
    report = check_rabin_style(graph, assignment)
    stacks = [assignment(graph.state_of(i)) for i in range(len(graph))]
    order = assignment.order
    old_state_needed = 0
    for t in graph.transitions:
        source, target = stacks[t.source], stacks[t.target]
        enabled_old = graph.enabled_at(t.source)
        enabled_new = graph.enabled_at(t.target)
        level = _unique_active_level(source, target, enabled_new)
        if level is None or level >= min(source.height, target.height):
            continue
        subject = source.level(level).subject
        if (
            subject != TERMINATION
            and subject in enabled_old
            and subject not in enabled_new
        ):
            before, after = source.level(level), target.level(level)
            decrease_ok = (
                before.value is not None
                and after.value is not None
                and order.gt(before.value, after.value)
            )
            if not decrease_ok:
                old_state_needed += 1
    return TranslationVerdict(
        translatable=report.ok,
        blocked_by_colouring=bool(report.colour_clashes),
        blocked_by_enabling=old_state_needed,
        blocked_by_choice=max(0, len(report.violations) - old_state_needed),
    )
