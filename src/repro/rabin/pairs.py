"""Rabin pairs conditions (§2).

"The condition of fair termination is but an instance of a *Rabin pairs
condition*, see [KK91], which is a requirement in a special disjunctive
normal form about the infinite occurrence of states."

A Rabin pair ``(L, U)`` over (annotated) states is satisfied by an infinite
computation iff ``L`` is visited infinitely often while ``U`` is visited
only finitely often; a Rabin condition — a disjunction of pairs — is
satisfied iff some pair is.  To express command executions as state
occurrences we annotate each state with the last executed command
(:class:`CommandHistorySystem`), exactly the paper's remark that "the
program state space and transition relation can always be extended to
contain this information".

*Unfairness* is then the Rabin condition with one pair per command ``ℓ``:
``L_ℓ`` = states where ``ℓ`` is enabled, ``U_ℓ`` = states whose last
executed command is ``ℓ``.  A program fairly terminates iff every infinite
computation satisfies this condition.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Optional, Sequence, Tuple

from repro.ts.lasso import Lasso
from repro.ts.system import CommandLabel, State, TransitionSystem

#: An annotated state: (base state, last executed command or None).
AnnotatedState = Tuple[State, Optional[CommandLabel]]


class CommandHistorySystem(TransitionSystem):
    """The base system with states extended by the last executed command.

    This is the function ``𝓛`` of the Theorem 2 proof, realised as a state
    component; the transformation is deterministic and adds no behaviour.
    """

    def __init__(self, base: TransitionSystem) -> None:
        self._base = base

    @property
    def base(self) -> TransitionSystem:
        """The unannotated system."""
        return self._base

    def commands(self) -> Tuple[CommandLabel, ...]:
        return self._base.commands()

    def initial_states(self) -> Iterable[State]:
        for state in self._base.initial_states():
            yield (state, None)

    def enabled(self, state: State) -> frozenset:
        base_state, _ = state
        return self._base.enabled(base_state)

    def post(self, state: State) -> Iterable[Tuple[CommandLabel, State]]:
        base_state, _ = state
        for command, target in self._base.post(base_state):
            yield command, (target, command)


@dataclass(frozen=True)
class RabinPair:
    """One pair ``(L, U)``: hit ``L`` infinitely often, ``U`` finitely often."""

    name: str
    inf_target: Callable[[AnnotatedState], bool]
    fin_avoid: Callable[[AnnotatedState], bool]

    def satisfied_on_cycle(self, cycle_states: Sequence[AnnotatedState]) -> bool:
        """Whether the pair holds for the computation looping on this cycle."""
        hits_l = any(self.inf_target(s) for s in cycle_states)
        hits_u = any(self.fin_avoid(s) for s in cycle_states)
        return hits_l and not hits_u


@dataclass(frozen=True)
class RabinCondition:
    """A disjunction of Rabin pairs."""

    pairs: Tuple[RabinPair, ...]

    def satisfied_on_lasso(self, lasso: Lasso) -> bool:
        """Whether the lasso's infinite computation satisfies some pair.

        The lasso must run over :class:`CommandHistorySystem` states (or
        any states the pair predicates understand).
        """
        cycle_states = lasso.cycle_states()
        return any(pair.satisfied_on_cycle(cycle_states) for pair in self.pairs)

    def witnessing_pair(self, lasso: Lasso) -> Optional[RabinPair]:
        """The first satisfied pair, or ``None``."""
        cycle_states = lasso.cycle_states()
        for pair in self.pairs:
            if pair.satisfied_on_cycle(cycle_states):
                return pair
        return None


def fair_termination_rabin_condition(
    system: TransitionSystem,
) -> RabinCondition:
    """Unfairness as a Rabin condition over command-annotated states.

    An infinite computation of ``system`` is *unfair* iff the annotated
    computation satisfies the returned condition; hence the program fairly
    terminates iff all its infinite computations do.
    """
    pairs = []
    for command in system.commands():
        def inf_target(state: AnnotatedState, _c=command) -> bool:
            base_state, _last = state
            return _c in system.enabled(base_state)

        def fin_avoid(state: AnnotatedState, _c=command) -> bool:
            _base_state, last = state
            return last == _c

        pairs.append(
            RabinPair(
                name=f"unfair({command})",
                inf_target=inf_target,
                fin_avoid=fin_avoid,
            )
        )
    return RabinCondition(pairs=tuple(pairs))
