"""Rabin pairs conditions and Rabin-style measures (§2, §5, [KK91])."""

from repro.rabin.measure import (
    RabinRuleViolation,
    RabinStyleReport,
    TranslationVerdict,
    check_rabin_style,
    classify_stack_as_rabin,
)
from repro.rabin.trees import (
    ColouredTree,
    TreeVertex,
    description_sizes,
)
from repro.rabin.pairs import (
    AnnotatedState,
    CommandHistorySystem,
    RabinCondition,
    RabinPair,
    fair_termination_rabin_condition,
)

__all__ = [
    "ColouredTree",
    "TreeVertex",
    "description_sizes",
    "RabinRuleViolation",
    "RabinStyleReport",
    "TranslationVerdict",
    "check_rabin_style",
    "classify_stack_as_rabin",
    "AnnotatedState",
    "CommandHistorySystem",
    "RabinCondition",
    "RabinPair",
    "fair_termination_rabin_condition",
]
