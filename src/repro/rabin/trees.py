"""Coloured trees: the explicit object behind a family of stacks.

§5: "A Rabin progress measure is defined as a mapping from the program
states into a colored tree.  This mapping can be described in program
assertions by specifying the progress values for each program state.  The
problem is that the colored tree has to be explicitly described (as it was
done in an example given in [KK91]).  In contrast, the stack assertions
given in this paper are self-contained."

This module constructs that explicit object from any stack assignment: the
**prefix tree** of all stacks, vertices coloured by hypothesis subject and
labelled by measure value.  A state's measure is then "its stack read as a
root path" — which is exactly the tree-shaped view [KK91] works with.  The
point of building it is quantitative (experiment E11c): the explicit tree
grows with the state space, while the stack assertion that denotes it is a
few lines of program text.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.measures.assignment import StackAssignment
from repro.measures.stack import Stack
from repro.ts.explore import ReachableGraph

#: A tree edge key: (colour, value) — one hypothesis of a stack.
EdgeKey = Tuple[str, Optional[Any]]


@dataclass
class TreeVertex:
    """One vertex: its colour (hypothesis subject), value, and children."""

    colour: str
    value: Optional[Any]
    children: Dict[EdgeKey, "TreeVertex"] = field(default_factory=dict)
    #: How many states' stacks end at this vertex.
    states_here: int = 0

    def child(self, colour: str, value: Optional[Any]) -> "TreeVertex":
        """The (created-on-demand) child along ``(colour, value)``."""
        key = (colour, value)
        node = self.children.get(key)
        if node is None:
            node = TreeVertex(colour=colour, value=value)
            self.children[key] = node
        return node


@dataclass
class ColouredTree:
    """The prefix tree of a family of stacks."""

    root: TreeVertex

    @staticmethod
    def from_assignment(
        graph: ReachableGraph, assignment: StackAssignment
    ) -> "ColouredTree":
        """Build the explicit tree a Rabin-style description would need."""
        root = TreeVertex(colour="⊥", value=None)
        for index in range(len(graph)):
            stack: Stack = assignment(graph.state_of(index))
            node = root
            for hypothesis in stack:
                node = node.child(hypothesis.subject, hypothesis.value)
            node.states_here += 1
        return ColouredTree(root=root)

    # -- statistics ---------------------------------------------------------

    def vertex_count(self) -> int:
        """Vertices of the explicit description (root excluded)."""
        count = 0
        work = [self.root]
        while work:
            node = work.pop()
            for child in node.children.values():
                count += 1
                work.append(child)
        return count

    def depth(self) -> int:
        """Longest root path (= tallest stack)."""

        def descend(node: TreeVertex) -> int:
            if not node.children:
                return 0
            return 1 + max(descend(child) for child in node.children.values())

        return descend(self.root)

    def leaf_count(self) -> int:
        """Leaves — the distinct complete stacks."""
        count = 0
        work = [self.root]
        while work:
            node = work.pop()
            if not node.children:
                count += 1
            else:
                work.extend(node.children.values())
        return count

    def colours(self) -> frozenset:
        """All colours used (hypothesis subjects)."""
        seen = set()
        work = list(self.root.children.values())
        while work:
            node = work.pop()
            seen.add(node.colour)
            work.extend(node.children.values())
        return frozenset(seen)

    def render(self, max_lines: int = 40) -> str:
        """An indented listing — the "explicit description" itself."""
        lines: List[str] = []

        def walk(node: TreeVertex, indent: str) -> None:
            for (colour, value), child in sorted(
                node.children.items(), key=lambda item: repr(item[0])
            ):
                if len(lines) >= max_lines:
                    return
                label = colour if value is None else f"{colour}: {value}"
                suffix = (
                    f"   ← {child.states_here} state(s)" if child.states_here else ""
                )
                lines.append(f"{indent}{label}{suffix}")
                walk(child, indent + "  ")

        walk(self.root, "")
        if len(lines) >= max_lines:
            lines.append("...")
        return "\n".join(lines)


def description_sizes(
    graph: ReachableGraph,
    assignment: StackAssignment,
    assertion_text: str,
) -> Tuple[int, int]:
    """(explicit tree vertices, assertion characters) — the §5 comparison.

    The explicit description a Rabin measure needs grows with the reachable
    states; the self-contained assertion is constant program text.
    """
    tree = ColouredTree.from_assignment(graph, assignment)
    return tree.vertex_count(), len(assertion_text)
