"""Earlier methods the paper compares against, as executable baselines."""

from repro.baselines.compare import MethodComparison, compare_methods
from repro.baselines.explicit_scheduler import (
    ScheduledSystem,
    SchedulerReport,
    explicit_scheduler_report,
)
from repro.baselines.floyd import (
    FloydCheckResult,
    FloydViolation,
    NotTerminatingError,
    TerminationMeasure,
    check_termination_measure,
    synthesize_floyd,
)
from repro.baselines.helpful_directions import (
    DerivedProgram,
    HelpfulDirectionsFailure,
    HelpfulDirectionsProof,
    helpful_directions_proof,
)

__all__ = [
    "MethodComparison",
    "compare_methods",
    "ScheduledSystem",
    "SchedulerReport",
    "explicit_scheduler_report",
    "FloydCheckResult",
    "FloydViolation",
    "NotTerminatingError",
    "TerminationMeasure",
    "check_termination_measure",
    "synthesize_floyd",
    "DerivedProgram",
    "HelpfulDirectionsFailure",
    "HelpfulDirectionsProof",
    "helpful_directions_proof",
]
