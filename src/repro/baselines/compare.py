"""Side-by-side proof-object metrics: stack assertions vs earlier methods.

The qualitative claim of the paper — stack assertions "summarize in a single
data structure the information obtained by the program transformations of
previous methods" — becomes a table here (experiments E9/E10).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.baselines.explicit_scheduler import SchedulerReport, explicit_scheduler_report
from repro.baselines.helpful_directions import (
    HelpfulDirectionsProof,
    helpful_directions_proof,
)
from repro.completeness.synthesis import SynthesisResult, synthesize_measure
from repro.measures.verification import check_measure
from repro.ts.explore import ReachableGraph


@dataclass(frozen=True)
class MethodComparison:
    """One row per method for one program."""

    program: str
    states: int
    #: stack assertions: always exactly one program reasoned about.
    stack_programs: int
    stack_height: int
    stack_states_reasoned: int
    hd_programs: int
    hd_depth: int
    hd_states_reasoned: int
    scheduler: Optional[SchedulerReport]

    def rows(self):
        """(method, programs reasoned about, states reasoned, extra) rows."""
        yield ("stack assertions", self.stack_programs, self.stack_states_reasoned,
               f"stack height {self.stack_height}")
        yield ("helpful directions", self.hd_programs, self.hd_states_reasoned,
               f"nesting depth {self.hd_depth}")
        if self.scheduler is not None:
            yield (
                f"explicit scheduler (K={self.scheduler.credit})",
                1,
                self.scheduler.scheduled_states,
                f"state blowup ×{self.scheduler.blowup:.1f}",
            )


def compare_methods(
    name: str,
    graph: ReachableGraph,
    scheduler_credit: Optional[int] = 2,
) -> MethodComparison:
    """Prove fair termination of ``graph`` three ways and collect metrics.

    The synthesised stack measure is verified before being reported — a
    comparison of an unsound proof object would be worthless.
    """
    synthesis: SynthesisResult = synthesize_measure(graph)
    check = check_measure(graph, synthesis.assignment())
    check.raise_if_failed()
    hd: HelpfulDirectionsProof = helpful_directions_proof(graph)
    scheduler = (
        explicit_scheduler_report(graph, scheduler_credit)
        if scheduler_credit is not None
        else None
    )
    return MethodComparison(
        program=name,
        states=len(graph),
        stack_programs=1,
        stack_height=synthesis.max_stack_height(),
        stack_states_reasoned=len(graph),
        hd_programs=hd.derived_program_count,
        hd_depth=hd.nesting_depth,
        hd_states_reasoned=hd.states_reasoned_about,
        scheduler=scheduler,
    )
