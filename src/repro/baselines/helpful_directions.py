"""The helpful-directions method ([LPS81, GFMdRv85]) as a baseline.

"Formulated in our terminology, the method of helpful directions is used to
identify one level of the fair termination measure at a time.  For example,
one first identifies subsets of program states corresponding to a constant
μ^T measure.  Then the program is transformed into several new programs,
each corresponding to a subset.  The states of each derived program are then
further partitioned according to unfairness hypothesis (helpful directions)
of the first level to yield more subsets, which are expressed as more
derived programs." (§5)

This module is that recursion, executably: each recursive application of
the proof rule produces a :class:`DerivedProgram` — a restriction of the
program to a state region, with a ranking and a chosen helpful direction.
The *proof object* is the tree of derived programs.  The point of the
comparison (experiment E9) is the paper's §3.4 remark: proving ``P4`` this
way means reasoning about "three different programs" (nesting depth 3: the
original plus two derived), whereas the stack assertion is a single
annotation of the unaltered program.  Metrics:

* ``derived_program_count`` — nodes of the proof tree (the paper's count
  corresponds to ``nesting_depth`` when regions are treated syntactically);
* ``nesting_depth`` — the deepest chain of derived programs (= the stack
  height the equivalent stack assertion needs);
* ``states_reasoned_about`` — total states across all derived programs
  (states are re-visited once per enclosing derived program, measuring the
  duplication the transformations cause).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.fairness.checker import find_fair_cycle
from repro.ts.explore import ReachableGraph
from repro.ts.graph import decompose, internal_transitions


class HelpfulDirectionsFailure(ValueError):
    """No helpful direction exists for some derived program — the program
    does not fairly terminate."""


@dataclass
class DerivedProgram:
    """One node of the helpful-directions proof tree.

    ``region`` is the state set of this derived program; ``ranking`` maps
    each state to its rank (constant-rank classes are where the recursion
    descends); ``helpful`` is the direction chosen for this region (``None``
    for the root, whose ranking alone handles inter-region transitions).
    """

    region: Tuple[int, ...]
    ranking: Dict[int, int]
    helpful: Optional[str]
    depth: int
    children: List["DerivedProgram"] = field(default_factory=list)

    def count(self) -> int:
        """Number of derived programs in this subtree."""
        return 1 + sum(child.count() for child in self.children)

    def max_depth(self) -> int:
        """Deepest nesting below (and including) this node."""
        return max((child.max_depth() for child in self.children), default=self.depth)

    def states_reasoned(self) -> int:
        """Σ |region| over the subtree."""
        return len(self.region) + sum(c.states_reasoned() for c in self.children)


@dataclass
class HelpfulDirectionsProof:
    """The full proof object, with comparison metrics."""

    root: DerivedProgram

    @property
    def derived_program_count(self) -> int:
        """All derived programs, root included."""
        return self.root.count()

    @property
    def nesting_depth(self) -> int:
        """The paper's "how many different programs" count: the longest
        chain of nested derived programs (root at depth 1)."""
        return self.root.max_depth()

    @property
    def states_reasoned_about(self) -> int:
        """Total state occurrences across derived programs."""
        return self.root.states_reasoned()


def helpful_directions_proof(graph: ReachableGraph) -> HelpfulDirectionsProof:
    """Run the recursive helpful-directions rule over a complete graph.

    Raises :class:`HelpfulDirectionsFailure` when some region has no
    helpful direction (i.e. the program admits a fair infinite
    computation).
    """
    if not graph.complete:
        raise ValueError(
            "the helpful-directions rule needs the complete reachable graph"
        )
    top = decompose(graph)
    root = DerivedProgram(
        region=tuple(range(len(graph))),
        ranking={i: top.component_of[i] for i in range(len(graph))},
        helpful=None,
        depth=1,
    )
    for component in top.components:
        if internal_transitions(graph, component):
            root.children.append(_derive(graph, list(component), depth=2))
    return HelpfulDirectionsProof(root=root)


def _derive(graph: ReachableGraph, region: List[int], depth: int) -> DerivedProgram:
    members = set(region)
    internal = internal_transitions(graph, region)
    executed = frozenset(t.command for t in internal)
    enabled = graph.commands_enabled_within(region)
    candidates = sorted(enabled - executed)
    if not candidates:
        witness = find_fair_cycle(graph, restrict_to=region)
        raise HelpfulDirectionsFailure(
            f"derived program over {len(region)} states has no helpful "
            f"direction (fair cycle: "
            f"{witness.lasso.cycle.commands if witness else 'n/a'})"
        )
    command_order = {c: i for i, c in enumerate(graph.system.commands())}
    helpful = min(candidates, key=lambda c: command_order[c])
    without_helpful = sorted(
        i for i in members if helpful not in graph.enabled_at(i)
    )
    sub = decompose(graph, restrict_to=without_helpful)
    ranking = {i: 0 for i in region}
    for i in without_helpful:
        ranking[i] = 1 + sub.component_of[i]
    node = DerivedProgram(
        region=tuple(region),
        ranking=ranking,
        helpful=helpful,
        depth=depth,
    )
    for component in sub.components:
        if internal_transitions(graph, component):
            node.children.append(_derive(graph, list(component), depth + 1))
    return node
