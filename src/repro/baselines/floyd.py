"""Floyd's method (§3.1): plain termination measures.

"For programs occurring in practice it is usually straightforward to
quantify progress towards termination ... in terms of well-founded sets as
first advocated by Floyd."  A termination measure must *strictly decrease on
every transition* — no fairness, no hypotheses, the degenerate stack of
height 1.  It exists iff the program terminates along **all** computations,
which is exactly why ``P2`` (add one ``skip`` branch to ``P1``) escapes it
and needs the paper's machinery.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, List

from repro.ts.explore import ReachableGraph
from repro.ts.graph import decompose, internal_transitions
from repro.ts.lasso import Lasso, cycle_through_all, find_path_indices, lasso_from_indices
from repro.ts.system import State, Transition
from repro.wf.base import WellFoundedOrder
from repro.wf.naturals import NATURALS


class NotTerminatingError(ValueError):
    """The program has an infinite computation, so no termination measure
    exists; carries a lasso witness."""

    def __init__(self, message: str, witness: Lasso) -> None:
        super().__init__(message)
        self.witness = witness


@dataclass(frozen=True)
class FloydViolation:
    """A transition on which the claimed measure fails to decrease."""

    transition: Transition
    before: Any
    after: Any

    def __str__(self) -> str:
        return (
            f"termination measure does not decrease on {self.transition}: "
            f"{self.before} ⊁ {self.after}"
        )


@dataclass
class FloydCheckResult:
    """Outcome of checking a termination measure."""

    violations: List[FloydViolation]
    transitions_checked: int
    complete: bool

    @property
    def ok(self) -> bool:
        """Whether the measure decreased on every checked transition."""
        return not self.violations

    def summary(self) -> str:
        """One-line summary for reports."""
        status = "PASS" if self.ok else f"FAIL ({len(self.violations)} violations)"
        scope = "complete" if self.complete else "explored region only"
        return f"{status}: {self.transitions_checked} transitions ({scope})"


class TerminationMeasure:
    """A Floyd measure: ``state ↦ W`` with strict descent required."""

    def __init__(
        self,
        mapping: Callable[[State], Any],
        order: WellFoundedOrder = NATURALS,
        description: str = "",
    ) -> None:
        self._mapping = mapping
        self._order = order
        self._description = description

    @property
    def order(self) -> WellFoundedOrder:
        """The measure's well-founded order."""
        return self._order

    @property
    def description(self) -> str:
        """Human-readable provenance."""
        return self._description

    def __call__(self, state: State) -> Any:
        return self._mapping(state)


def check_termination_measure(
    graph: ReachableGraph,
    measure: TerminationMeasure,
) -> FloydCheckResult:
    """Floyd's verification condition: strict descent on every transition."""
    order = measure.order
    values = [measure(graph.state_of(i)) for i in range(len(graph))]
    for value in values:
        order.check_member(value)
    violations: List[FloydViolation] = []
    for t in graph.transitions:
        before, after = values[t.source], values[t.target]
        if not order.gt(before, after):
            violations.append(
                FloydViolation(
                    transition=graph.to_transition(t),
                    before=before,
                    after=after,
                )
            )
    return FloydCheckResult(
        violations=violations,
        transitions_checked=len(graph.transitions),
        complete=graph.complete,
    )


def synthesize_floyd(graph: ReachableGraph) -> TerminationMeasure:
    """A termination measure for a complete, acyclic reachable graph.

    The measure is the state's reverse-topological SCC rank (all SCCs must
    be trivial).  Raises :class:`NotTerminatingError` with a lasso witness
    when the graph has a cycle — the program then has an infinite
    computation and Floyd's method cannot apply.
    """
    if not graph.complete:
        raise ValueError("Floyd synthesis needs the complete reachable graph")
    decomposition = decompose(graph)
    for component in decomposition.components:
        internal = internal_transitions(graph, component)
        if internal:
            cycle = cycle_through_all(graph, component)
            stem = find_path_indices(graph, graph.initial_indices, cycle[0].source)
            raise NotTerminatingError(
                "program has an infinite computation; Floyd's method needs "
                "fair-termination machinery instead",
                lasso_from_indices(graph, stem, cycle),
            )
    ranks = {
        graph.state_of(i): decomposition.component_of[i] for i in range(len(graph))
    }
    return TerminationMeasure(
        lambda state: ranks[state],
        NATURALS,
        description="synthesised Floyd measure (topological rank)",
    )
