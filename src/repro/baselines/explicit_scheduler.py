"""The explicit-scheduler transformation ([AO83, APS84, DH86]) as a baseline.

These methods "involve transforming programs by adding auxiliary variables
that are nondeterministically assigned values determining fair
computations" — reducing fair termination to plain termination at the price
of "rather drastic — even 'cruel' [DH86] — program transformations."

We implement the bounded variant: each command ``ℓ`` carries a *credit*
``z_ℓ ∈ {0..K}``.  Executing ``ℓ`` resets ``z_ℓ`` to ``K``; every other
command that was enabled but not executed loses one credit; a transition is
disallowed if it would drive an enabled command's credit below zero, so a
zero-credit enabled command *must* be executed next.  The scheduled system's
runs are exactly the K-bounded-fair runs of the original:

* if the scheduled system (for some ``K``) has an infinite run, that run is
  fair in the original system, so the original does **not** fairly
  terminate;
* conversely any ultimately periodic fair run of a finite-state program is
  K-bounded-fair for ``K`` at least its cycle length, so choosing ``K ≥``
  the reachable transition count makes plain termination of the scheduled
  system *equivalent* to fair termination of the original.

The cost — the point of experiment E10 — is the state-space product with
``{0..K}^N``, versus the unmodified program plus one stack annotation.  Two
zero-credit enabled commands can deadlock the scheduler; such *artificial
deadlocks* are counted and reported (they are terminal for the scheduled
system but not for the program — one face of the transformation's
"cruelty").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Tuple

from repro.baselines.floyd import NotTerminatingError, synthesize_floyd
from repro.ts.explore import ReachableGraph, explore
from repro.ts.system import CommandLabel, State, TransitionSystem


class ScheduledSystem(TransitionSystem):
    """The base system extended with per-command fairness credits."""

    def __init__(self, base: TransitionSystem, credit: int) -> None:
        if credit < 1:
            raise ValueError(f"credit bound must be ≥ 1, got {credit}")
        base.validate_commands()
        self._base = base
        self._credit = credit
        self._commands = base.commands()

    @property
    def base(self) -> TransitionSystem:
        """The untransformed system."""
        return self._base

    @property
    def credit(self) -> int:
        """The bound ``K``."""
        return self._credit

    def commands(self) -> Tuple[CommandLabel, ...]:
        return self._commands

    def initial_states(self) -> Iterable[State]:
        credits = tuple(self._credit for _ in self._commands)
        for state in self._base.initial_states():
            yield (state, credits)

    def _admissible(self, state: State, executed: CommandLabel) -> bool:
        base_state, credits = state
        enabled = self._base.enabled(base_state)
        for position, command in enumerate(self._commands):
            if command == executed or command not in enabled:
                continue
            if credits[position] == 0:
                return False
        return True

    def enabled(self, state: State) -> frozenset:
        base_state, _ = state
        return frozenset(
            c
            for c in self._base.enabled(base_state)
            if self._admissible(state, c)
        )

    def post(self, state: State) -> Iterable[Tuple[CommandLabel, State]]:
        base_state, credits = state
        enabled = self._base.enabled(base_state)
        for command, target in self._base.post(base_state):
            if not self._admissible(state, command):
                continue
            new_credits = tuple(
                self._credit
                if c == command
                else (credits[i] - 1 if c in enabled else credits[i])
                for i, c in enumerate(self._commands)
            )
            yield command, (target, new_credits)


@dataclass(frozen=True)
class SchedulerReport:
    """Measurements of the transformation (experiment E10)."""

    credit: int
    base_states: int
    scheduled_states: int
    artificial_deadlocks: int
    terminates: bool
    blowup: float

    def __str__(self) -> str:
        return (
            f"K={self.credit}: {self.base_states} → {self.scheduled_states} "
            f"states (×{self.blowup:.1f}), "
            f"{self.artificial_deadlocks} artificial deadlocks, "
            f"{'terminates' if self.terminates else 'does not terminate'}"
        )


def explicit_scheduler_report(
    base_graph: ReachableGraph,
    credit: int,
    max_states: int | None = None,
) -> SchedulerReport:
    """Transform, explore, and decide plain termination of the result."""
    scheduled = ScheduledSystem(base_graph.system, credit)
    graph = explore(scheduled, max_states=max_states)
    artificial = 0
    for index in graph.terminal_indices():
        base_state, _ = graph.state_of(index)
        if base_graph.system.enabled(base_state):
            artificial += 1
    try:
        synthesize_floyd(graph)
        terminates = True
    except NotTerminatingError:
        terminates = False
    return SchedulerReport(
        credit=credit,
        base_states=len(base_graph),
        scheduled_states=len(graph),
        artificial_deadlocks=artificial,
        terminates=terminates,
        blowup=len(graph) / max(1, len(base_graph)),
    )
