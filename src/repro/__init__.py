"""repro — stack assertions and progress measures for fair termination.

A full reproduction of Nils Klarlund, *Progress Measures and Stack
Assertions for Fair Termination*, PODC 1992:

* a guarded-command language whose loops are the paper's
  ``*[ ℓ: g → c □ ... ]`` programs (:mod:`repro.gcl`);
* transition systems, exploration, SCCs, lassos (:mod:`repro.ts`);
* well-founded orders up to ordinals below ε₀ (:mod:`repro.wf`);
* strong fairness, the fair-termination decision and schedulers
  (:mod:`repro.fairness`);
* **stack assertions** and the verification conditions (V_A), (V_NonI),
  (V_NoC), with Theorem 1 as an executable witness extractor
  (:mod:`repro.measures`);
* the completeness constructions: history variables, Theorem 3's tree
  construction, Theorem 2's quotient, Theorem 4's recursive semi-measure,
  and automatic measure synthesis for finite-state programs
  (:mod:`repro.completeness`);
* the earlier methods as baselines: Floyd, helpful directions, explicit
  schedulers (:mod:`repro.baselines`);
* Rabin pairs conditions and the §5 comparison with Rabin measures
  (:mod:`repro.rabin`);
* workloads and reporting (:mod:`repro.workloads`, :mod:`repro.analysis`).

Quickstart::

    from repro import parse_program, StackAssertion, annotate

    program = parse_program('''
        program P2
        var x := 0, y := 10
        do
             la: x < y -> x := x + 1
          [] lb: x < y -> skip
        od
    ''')
    proof = annotate(program, StackAssertion.parse(
        ["la", "T: max(y - x, 0)"]))
    result = proof.check()
    result.raise_if_failed()   # P2 fairly terminates.
"""

from repro.completeness import (
    add_history_variable,
    semi_measure,
    synthesize_measure,
    theorem2_quotient,
    theorem3_construction,
)
from repro.fairness import (
    FairnessRequirement,
    check_fair_termination,
    check_fair_termination_streaming,
    command_requirements,
    find_fair_cycle,
    find_impartial_cycle,
    find_weakly_fair_cycle,
    group_requirement,
    predicate_requirement,
    simulate,
)
from repro.response import ResponseProperty, check_fair_response
from repro.gcl import parse_program
from repro.measures import (
    Hypothesis,
    Stack,
    StackAssertion,
    StackAssignment,
    annotate,
    check_measure,
    check_measure_streaming,
    unfairness_witness,
)
from repro.ts import ExplicitSystem, TransitionSystem, explore

__version__ = "1.0.0"

__all__ = [
    "add_history_variable",
    "semi_measure",
    "synthesize_measure",
    "theorem2_quotient",
    "theorem3_construction",
    "FairnessRequirement",
    "check_fair_termination",
    "check_fair_termination_streaming",
    "command_requirements",
    "find_fair_cycle",
    "find_impartial_cycle",
    "find_weakly_fair_cycle",
    "group_requirement",
    "predicate_requirement",
    "simulate",
    "ResponseProperty",
    "check_fair_response",
    "parse_program",
    "Hypothesis",
    "Stack",
    "StackAssertion",
    "StackAssignment",
    "annotate",
    "check_measure",
    "check_measure_streaming",
    "unfairness_witness",
    "ExplicitSystem",
    "TransitionSystem",
    "explore",
    "__version__",
]
