"""Theorem 2: quotienting the tree measure back onto the original program.

The proof of Theorem 2 totalises ``(W, ≻)`` into a well-ordering, orders the
measure-value vectors ``θ̄(σ) = ⟨w₀, ..., w_N⟩`` lexicographically, and
defines for each original state ``p``

    ``θ(p) = θ̄(σ)`` for a history ``σ`` with ``pσ = p`` and ``θ̄(σ)``
    minimal; ``α(p) = ᾱ(σ)`` for the same ``σ``.

We totalise by *descent height*: ``h(w)`` is the length of the longest
recorded descent from ``w``; ``w ≻ w'`` implies ``h(w) > h(w')``, so
ordering by ``(h, allocation index)`` linearly extends ``≻`` — and
``(ℕ × ℕ, <lex)`` is a genuine well-ordering, unlike raw allocation order.

On an infinite computation tree the minimum ranges over infinitely many
histories; a bounded reproduction can only minimise over the explored ones.
Two approximations interact:

* the *candidate set* — we minimise over histories of depth at most
  ``candidate_depth``;
* the *heights* — ``h`` is computed from the full ``max_depth`` exploration.

A value freshly allocated near the exploration frontier always has apparent
height 0 (its descents lie beyond the bound), so minimising over frontier
nodes chases phantom minima and never converges.  Keeping the candidates
well inside the explored region (default: half the depth) lets the heights
of their values materialise, and the quotient stabilises — experiment E7
measures exactly this.  For programs whose computation tree is finite (all
runs terminate) the quotient is *exact* and the verification conditions
provably hold; tests pin that case down.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.completeness.construction import TreeMeasure, theorem3_construction
from repro.completeness.history import HistorySystem, add_history_variable
from repro.measures.assignment import StackAssignment
from repro.measures.hypotheses import Hypothesis
from repro.measures.stack import Stack
from repro.measures.verification import MeasureCheckResult, check_measure
from repro.ts.explore import ReachableGraph, explore
from repro.ts.system import State, TransitionSystem
from repro.wf.base import WellFoundedOrder


class HeightTotalOrder(WellFoundedOrder):
    """A well-order on allocated values extending the recorded ``≻``.

    ``gt(a, b)`` iff ``(h(a), index(a)) > (h(b), index(b))`` — descent
    height first (which makes it a linear extension: ``a ≻ b`` implies
    ``h(a) > h(b)``), allocation index breaking ties.  Under this order the
    lexicographic minimisation prefers *earliest-allocated* values, so the
    minimising history for a state is found near the root and stabilises as
    exploration deepens — the property a bounded reproduction of the
    Theorem 2 minimum needs.
    """

    def __init__(self, heights: Dict[int, int]) -> None:
        self._heights = dict(heights)

    def contains(self, value: Any) -> bool:
        return value in self._heights

    def gt(self, left: Any, right: Any) -> bool:
        self.check_member(left)
        self.check_member(right)
        if left == right:
            return False
        left_key = (self._heights[left], left)
        right_key = (self._heights[right], right)
        return left_key > right_key

    def height(self, value: int) -> int:
        """``h(value)`` — longest recorded descent from ``value``."""
        return self._heights[value]

    def describe(self) -> str:
        return f"height-totalised order ({len(self._heights)} values)"


def _descent_heights(measure: TreeMeasure) -> Dict[int, int]:
    successors: Dict[int, List[int]] = {}
    for greater, lesser in measure.relation.edges:
        successors.setdefault(greater, []).append(lesser)
    heights: Dict[int, int] = {}
    # Allocation order is topological (edges point old → new).
    for value in range(measure.relation.size - 1, -1, -1):
        heights[value] = max(
            (1 + heights[child] for child in successors.get(value, ())),
            default=0,
        )
    return heights


@dataclass
class QuotientResult:
    """The Theorem 2 quotient measure and its provenance.

    ``minimiser_depth[state index]`` is the tree depth of the history whose
    vector realised the minimum — small, stable values across increasing
    exploration depths indicate convergence.
    """

    base_graph: ReachableGraph
    tree_graph: ReachableGraph
    tree_measure: TreeMeasure
    order: HeightTotalOrder
    stacks: Dict[State, Stack]
    minimiser_depth: Dict[int, int]
    exact: bool

    def assignment(self) -> StackAssignment:
        """``p ↦ (α(p), θ(p))`` as a checkable stack assignment."""
        return StackAssignment.from_dict(
            self.stacks, self.order, description="Theorem 2 quotient"
        )

    def verify(self) -> MeasureCheckResult:
        """Check the verification conditions on the original program."""
        return check_measure(self.base_graph, self.assignment())


def _vector_less(
    order: HeightTotalOrder,
    left: Tuple[int, ...],
    right: Tuple[int, ...],
) -> bool:
    """Lexicographic ``left ≺ right`` over the totalised order."""
    for a, b in zip(left, right):
        if a != b:
            return order.gt(b, a)
    return False


def theorem2_quotient(
    base: TransitionSystem,
    max_depth: int = 12,
    base_graph: Optional[ReachableGraph] = None,
    candidate_depth: Optional[int] = None,
) -> QuotientResult:
    """Build the Theorem 2 measure for ``base`` from its history tree.

    ``max_depth`` bounds the history-tree unwinding; ``candidate_depth``
    (default ``max_depth // 2``; ignored when the tree is finite) bounds the
    histories the per-state minimum ranges over — see the module docstring
    for why the two must be separated.  The result is exact
    (``exact=True``) iff the tree was explored completely — i.e. every
    computation of the program terminates within the bound.
    """
    if base_graph is None:
        base_graph = explore(base)
    history: HistorySystem = add_history_variable(base)
    tree_graph = explore(history, max_depth=max_depth)
    tree_measure = theorem3_construction(tree_graph)
    heights = _descent_heights(tree_measure)
    order = HeightTotalOrder(heights)
    if tree_graph.complete:
        depth_bound = max_depth
    elif candidate_depth is not None:
        depth_bound = candidate_depth
    else:
        depth_bound = max(1, max_depth // 2)

    best_vector: Dict[State, Tuple[int, ...]] = {}
    best_subjects: Dict[State, Tuple[str, ...]] = {}
    best_depth: Dict[State, int] = {}
    for index in range(len(tree_graph)):
        sigma: Tuple[State, ...] = tree_graph.state_of(index)  # a history
        if len(sigma) - 1 > depth_bound:
            continue
        state = HistorySystem.current(sigma)
        vector = tree_measure.value_vector(index)
        if state not in best_vector or _vector_less(
            order, vector, best_vector[state]
        ):
            best_vector[state] = vector
            best_subjects[state] = tree_measure.subject_vector(index)
            best_depth[state] = len(sigma) - 1

    stacks: Dict[State, Stack] = {}
    minimiser_depth: Dict[int, int] = {}
    for index in range(len(base_graph)):
        state = base_graph.state_of(index)
        if state not in best_vector:
            raise ValueError(
                f"base state {state!r} was not reached within the quotient's "
                f"candidate depth {depth_bound}; increase max_depth"
            )
        entries = [
            Hypothesis(subject, value)
            for subject, value in zip(best_subjects[state], best_vector[state])
        ]
        stacks[state] = Stack(entries)
        minimiser_depth[index] = best_depth[state]

    return QuotientResult(
        base_graph=base_graph,
        tree_graph=tree_graph,
        tree_measure=tree_measure,
        order=order,
        stacks=stacks,
        minimiser_depth=minimiser_depth,
        exact=tree_graph.complete,
    )
