"""The history-variable transformation: making a program tree-like.

"Any program can be made tree-like by adding a history variable recording
the past sequence of program states."  :class:`HistorySystem` is that
transformation: its states are the non-empty finite runs of the base
system, recorded as ``σ = ⟨(∅, p₀), (ℓ₁, p₁), ..., (ℓₙ, pₙ)⟩`` — each entry
pairs the executed command with the state reached.  Commands are part of
the history because the Theorem 2 proof "assume[s] that there is a function
ℒ such that on any transition p → p', the value ℒ(p') denotes the command
executed" — without it, two commands with the same effect (think two
processes both idling) would merge histories and break tree-likeness.  The
transformation is *benign* (§1): it adds no nondeterminism and does not
change the transitional structure — every history transition projects to
exactly one base transition.
"""

from __future__ import annotations

from typing import Iterable, Optional, Tuple

from repro.ts.explore import ReachableGraph
from repro.ts.system import CommandLabel, State, TransitionSystem

#: A history state: ((None, p0), (cmd1, p1), ..., (cmdN, pN)).
History = Tuple[Tuple[Optional[CommandLabel], State], ...]


class HistorySystem(TransitionSystem):
    """The tree-like program ``P̄`` obtained from ``P`` by adding a history
    variable."""

    def __init__(self, base: TransitionSystem) -> None:
        self._base = base

    @property
    def base(self) -> TransitionSystem:
        """The original program ``P``."""
        return self._base

    @staticmethod
    def current(history: History) -> State:
        """``pσ`` — the base state a history ends in."""
        if not history:
            raise ValueError("histories are non-empty")
        return history[-1][1]

    @staticmethod
    def executed(history: History) -> Optional[CommandLabel]:
        """``ℒ(pσ)`` — the command that produced the last state (``None``
        at the root)."""
        if not history:
            raise ValueError("histories are non-empty")
        return history[-1][0]

    def commands(self) -> Tuple[CommandLabel, ...]:
        return self._base.commands()

    def initial_states(self) -> Iterable[State]:
        return (((None, p),) for p in self._base.initial_states())

    def enabled(self, state: State) -> frozenset:
        return self._base.enabled(self.current(state))

    def post(self, state: State) -> Iterable[Tuple[CommandLabel, State]]:
        for command, target in self._base.post(self.current(state)):
            yield command, state + ((command, target),)


def add_history_variable(base: TransitionSystem) -> HistorySystem:
    """The paper's transformation ``P ↦ P̄``."""
    return HistorySystem(base)


def is_tree_like(graph: ReachableGraph) -> bool:
    """Whether the explored graph is tree-like.

    "A program is tree-like if it has a single initial state p⁰ and if every
    state p', except p⁰, has exactly one predecessor."  We additionally
    accept a *forest* (several initial states, each rooting its own tree),
    which is what a multi-initial-state program becomes under the history
    transformation; the constructions handle each root independently.
    """
    for index in range(len(graph)):
        incoming = graph.incoming(index)
        if index in graph.initial_indices:
            if incoming:
                return False
        elif len(incoming) != 1:
            return False
    return True
