"""Automatic synthesis of fair termination measures for finite-state
programs.

The paper proves a measure *exists* for every fairly terminating program;
for finite-state programs we can actually *compute* one, by running the
completeness argument on the reachable graph instead of the infinite tree:

* ``μ^T`` is the reverse-topological rank of a state's SCC — every
  inter-SCC transition strictly decreases it, so the T-hypothesis is active
  there.
* Inside a non-trivial SCC ``S`` no fair cycle exists (else the program
  would not fairly terminate), so some command ``ℓ`` is enabled somewhere in
  ``S`` yet executed on no transition inside ``S``.  That ``ℓ`` becomes the
  unfairness hypothesis at the next stack level: on transitions touching a
  state where ``ℓ`` is enabled it is active by enabledness, and on the rest
  its measure — the reverse-topological rank over the sub-SCCs of
  ``S − {ℓ enabled}`` — strictly decreases or the transition stays inside a
  sub-SCC, where the construction recurses with a fresh hypothesis.

The recursion mirrors the *helpful directions* decomposition ([LPS81,
GFMdRv85]) — but the output is a single stack assignment over the unaltered
program, exactly the paper's point: the stack summarises "in a single data
structure the information obtained by the program transformations of
previous methods".  Stack heights are bounded by ``N + 1``: each nested
region disables all enclosing helpful commands, so the commands along a
nesting chain are distinct.

Synthesised measures are returned *unverified*; callers (and every test)
push them through :func:`repro.measures.verification.check_measure`, which
re-derives the verification conditions independently.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.fairness.generalized import (
    FairnessRequirement,
    GeneralFairCycle,
    command_requirements,
    find_generally_fair_cycle,
)
from repro.measures.assignment import StackAssignment
from repro.measures.hypotheses import TERMINATION, Hypothesis
from repro.measures.stack import Stack
from repro.ts.explore import IndexedTransition, ReachableGraph
from repro.ts.graph import decompose, internal_transitions
from repro.wf.naturals import NATURALS


class NotFairlyTerminatingError(ValueError):
    """Synthesis found a region admitting a fair cycle; the program does not
    fairly terminate, so no measure exists (contrapositive of Theorem 2)."""

    def __init__(self, message: str, witness: Optional[GeneralFairCycle]) -> None:
        super().__init__(message)
        self.witness = witness


@dataclass
class RegionInfo:
    """One node of the decomposition tree, for reporting and the baselines.

    ``helpful`` is the command chosen as the region's unfairness
    hypothesis; ``level`` its stack level; ``states`` the region.
    """

    level: int
    helpful: str
    states: Tuple[int, ...]
    enabled_here: Tuple[int, ...]
    children: List["RegionInfo"] = field(default_factory=list)

    def total_regions(self) -> int:
        """Number of regions in this subtree (including itself)."""
        return 1 + sum(child.total_regions() for child in self.children)


@dataclass
class SynthesisResult:
    """A synthesised measure plus the decomposition it came from."""

    graph: ReachableGraph
    stacks: Dict[int, Stack]
    regions: List[RegionInfo]

    def assignment(self) -> StackAssignment:
        """The measure as a checkable stack assignment (values in ℕ)."""
        table = {
            self.graph.state_of(index): stack
            for index, stack in self.stacks.items()
        }
        return StackAssignment.from_dict(
            table, NATURALS, description="synthesised fair termination measure"
        )

    def max_stack_height(self) -> int:
        """The tallest stack used (≤ N + 1)."""
        return max(stack.height for stack in self.stacks.values())

    def region_count(self) -> int:
        """Total regions across the decomposition forest."""
        return sum(region.total_regions() for region in self.regions)


def synthesize_measure(
    graph: ReachableGraph,
    requirements: Optional[Sequence[FairnessRequirement]] = None,
) -> SynthesisResult:
    """Synthesise a fair termination measure over a complete finite graph.

    ``requirements`` switches to generalized fairness ([FK84]): hypotheses
    then name requirements instead of commands, helpful choices are
    demanded-but-unfulfilled requirements, and the result must be verified
    with ``check_measure(..., requirements=requirements)``.  Omitted, the
    paper's per-command strong fairness is used.

    Raises :class:`NotFairlyTerminatingError` (with a fair-cycle witness)
    when none exists, and ``ValueError`` on incomplete graphs — a measure
    synthesised from a truncated graph would certify nothing.
    """
    if not graph.complete:
        raise ValueError(
            "synthesis needs the complete reachable graph; "
            f"exploration left {len(graph.frontier)} frontier states"
        )
    if requirements is None:
        requirements = command_requirements(graph.system)
    top = decompose(graph)
    # Reverse-topological component position: every inter-SCC transition
    # strictly decreases it.
    base_entries: Dict[int, List[Hypothesis]] = {
        index: [Hypothesis(TERMINATION, top.component_of[index])]
        for index in range(len(graph))
    }

    regions: List[RegionInfo] = []
    for component in top.components:
        if not internal_transitions(graph, component):
            continue
        region = _process_region(
            graph,
            list(component),
            level=1,
            requirements=tuple(requirements),
            entries=base_entries,
        )
        regions.append(region)

    stacks = {
        index: Stack(entries) for index, entries in base_entries.items()
    }
    return SynthesisResult(graph=graph, stacks=stacks, regions=regions)


def _demanded_within(
    graph: ReachableGraph,
    region: Sequence[int],
    requirement: FairnessRequirement,
) -> List[int]:
    return [
        index
        for index in region
        if requirement.enabled_at(graph.state_of(index))
    ]


def _fulfilled_within(
    graph: ReachableGraph,
    internal: Sequence[IndexedTransition],
    requirement: FairnessRequirement,
) -> bool:
    return any(
        requirement.fulfilled_by(
            graph.state_of(t.source), t.command, graph.state_of(t.target)
        )
        for t in internal
    )


def _process_region(
    graph: ReachableGraph,
    region: List[int],
    level: int,
    requirements: Sequence[FairnessRequirement],
    entries: Dict[int, List[Hypothesis]],
) -> RegionInfo:
    """Assign level-``level`` hypotheses inside one strongly connected
    region and recurse into its sub-SCCs."""
    members = set(region)
    internal = internal_transitions(graph, region)
    helpful: Optional[FairnessRequirement] = None
    enabled_here: List[int] = []
    for requirement in requirements:
        demanded = _demanded_within(graph, region, requirement)
        if demanded and not _fulfilled_within(graph, internal, requirement):
            helpful = requirement
            enabled_here = demanded
            break
    if helpful is None:
        witness = find_generally_fair_cycle(graph, requirements)
        raise NotFairlyTerminatingError(
            f"region of {len(region)} states fulfils every demanded "
            "requirement internally — it hosts a fair cycle, so the program "
            "does not fairly terminate",
            witness,
        )

    rest = sorted(members - set(enabled_here))
    sub = decompose(graph, restrict_to=rest)

    # Measure for the helpful hypothesis: 0 on states where it demands
    # service (activity there is by demand; the value is immaterial), and
    # 1 + sub-SCC rank elsewhere, so transitions between different sub-SCCs
    # strictly decrease it.
    for index in enabled_here:
        entries[index].append(Hypothesis(helpful.name, 0))
    for index in rest:
        entries[index].append(
            Hypothesis(helpful.name, 1 + sub.component_of[index])
        )

    info = RegionInfo(
        level=level,
        helpful=helpful.name,
        states=tuple(region),
        enabled_here=tuple(sorted(enabled_here)),
    )
    for component in sub.components:
        if not internal_transitions(graph, component):
            continue
        child = _process_region(
            graph,
            list(component),
            level=level + 1,
            requirements=requirements,
            entries=entries,
        )
        info.children.append(child)
    return info
