"""Automatic synthesis of fair termination measures for finite-state
programs.

The paper proves a measure *exists* for every fairly terminating program;
for finite-state programs we can actually *compute* one, by running the
completeness argument on the reachable graph instead of the infinite tree:

* ``μ^T`` is the reverse-topological rank of a state's SCC — every
  inter-SCC transition strictly decreases it, so the T-hypothesis is active
  there.
* Inside a non-trivial SCC ``S`` no fair cycle exists (else the program
  would not fairly terminate), so some command ``ℓ`` is enabled somewhere in
  ``S`` yet executed on no transition inside ``S``.  That ``ℓ`` becomes the
  unfairness hypothesis at the next stack level: on transitions touching a
  state where ``ℓ`` is enabled it is active by enabledness, and on the rest
  its measure — the reverse-topological rank over the sub-SCCs of
  ``S − {ℓ enabled}`` — strictly decreases or the transition stays inside a
  sub-SCC, where the construction recurses with a fresh hypothesis.

The recursion mirrors the *helpful directions* decomposition ([LPS81,
GFMdRv85]) — but the output is a single stack assignment over the unaltered
program, exactly the paper's point: the stack summarises "in a single data
structure the information obtained by the program transformations of
previous methods".  Stack heights are bounded by ``N + 1``: each nested
region disables all enclosing helpful commands, so the commands along a
nesting chain are distinct.

Synthesised measures are returned *unverified*; callers (and every test)
push them through :func:`repro.measures.verification.check_measure`, which
re-derives the verification conditions independently.

Engine notes: requirement predicates (arbitrary Python callables) are
evaluated exactly once per state and once per transition, up front; the
recursive decomposition then runs purely on integer indices and interned
requirement names over the graph's packed CSR arrays.  Because the
precomputed context is plain picklable data, the per-top-SCC work — regions
are independent: they touch disjoint states — can fan out over a process
pool (``n_jobs``), with results merged in component order so stacks,
regions and error behaviour are identical to the serial run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.engine.analysis import tarjan_scc_csr
from repro.engine.packed import PackedGraph
from repro.engine.parallel import chunk_items, effective_jobs, parallel_map
from repro.fairness.generalized import (
    FairnessRequirement,
    GeneralFairCycle,
    command_requirements,
    find_generally_fair_cycle,
)
from repro.measures.assignment import StackAssignment
from repro.measures.hypotheses import TERMINATION, Hypothesis
from repro.measures.stack import Stack
from repro.telemetry import core as telemetry
from repro.ts.explore import ReachableGraph
from repro.ts.graph import decompose
from repro.wf.naturals import NATURALS


class NotFairlyTerminatingError(ValueError):
    """Synthesis found a region admitting a fair cycle; the program does not
    fairly terminate, so no measure exists (contrapositive of Theorem 2)."""

    def __init__(self, message: str, witness: Optional[GeneralFairCycle]) -> None:
        super().__init__(message)
        self.witness = witness


@dataclass
class RegionInfo:
    """One node of the decomposition tree, for reporting and the baselines.

    ``helpful`` is the command chosen as the region's unfairness
    hypothesis; ``level`` its stack level; ``states`` the region.
    """

    level: int
    helpful: str
    states: Tuple[int, ...]
    enabled_here: Tuple[int, ...]
    children: List["RegionInfo"] = field(default_factory=list)

    def total_regions(self) -> int:
        """Number of regions in this subtree (including itself)."""
        return 1 + sum(child.total_regions() for child in self.children)


@dataclass
class SynthesisResult:
    """A synthesised measure plus the decomposition it came from."""

    graph: ReachableGraph
    stacks: Dict[int, Stack]
    regions: List[RegionInfo]

    def assignment(self) -> StackAssignment:
        """The measure as a checkable stack assignment (values in ℕ)."""
        table = {
            self.graph.state_of(index): stack
            for index, stack in self.stacks.items()
        }
        return StackAssignment.from_dict(
            table, NATURALS, description="synthesised fair termination measure"
        )

    def max_stack_height(self) -> int:
        """The tallest stack used (≤ N + 1)."""
        return max(stack.height for stack in self.stacks.values())

    def region_count(self) -> int:
        """Total regions across the decomposition forest."""
        return sum(region.total_regions() for region in self.regions)


@dataclass(frozen=True)
class _SynthesisContext:
    """Plain-data view of one synthesis problem.

    Everything a region processor needs, free of transition systems,
    assignments and requirement callables — so it pickles, and so the
    recursion never calls back into Python predicates:

    * ``packed`` — the graph's CSR arrays;
    * ``demanded`` — per state, the frozenset of requirement names
      demanding service there (each ``enabled_at`` evaluated once);
    * ``fulfilled`` — per transition id, the frozenset of requirement
      names that transition fulfils (each ``fulfilled_by`` evaluated once);
    * ``names`` — requirement names in declaration order (the helpful
      choice scans them in this order, matching the seed exactly).
    """

    packed: PackedGraph
    demanded: Tuple[frozenset, ...]
    fulfilled: Tuple[frozenset, ...]
    names: Tuple[str, ...]


class _RegionUnfair(Exception):
    """Internal: a (sub)region fulfils every demanded requirement, i.e. it
    hosts a fair cycle.  Carries the region size for the error message; the
    caller attaches the (expensively computed) witness."""

    def __init__(self, region_size: int) -> None:
        super().__init__(region_size)
        self.region_size = region_size


def _build_context(
    graph: ReachableGraph,
    requirements: Sequence[FairnessRequirement],
) -> _SynthesisContext:
    names = tuple(r.name for r in requirements)
    if all(r.kind == "command" for r in requirements):
        # Command fairness: "demanded" is enabledness and "fulfilled" is
        # execution of the named command, both already cached on the graph —
        # no predicate calls (and no per-state GCL guard re-evaluation).
        analyses = graph.analyses
        name_set = frozenset(names)
        demanded = tuple(
            enabled if enabled <= name_set else enabled & name_set
            for enabled in (
                graph.enabled_at(i) for i in range(len(graph))
            )
        )
        commands = analyses.commands
        empty: frozenset = frozenset()
        fulfilled = tuple(
            commands.singleton(cmd_id)
            if commands.label_of(cmd_id) in name_set
            else empty
            for cmd_id in analyses.packed.cmd
        )
    else:
        demanded = tuple(
            frozenset(
                r.name for r in requirements if r.enabled_at(graph.state_of(i))
            )
            for i in range(len(graph))
        )
        fulfilled = tuple(
            frozenset(
                r.name
                for r in requirements
                if r.fulfilled_by(
                    graph.state_of(t.source), t.command, graph.state_of(t.target)
                )
            )
            for t in graph.transitions
        )
    return _SynthesisContext(
        packed=graph.analyses.packed,
        demanded=demanded,
        fulfilled=fulfilled,
        names=names,
    )


def _internal_eids(ctx: _SynthesisContext, members: set) -> List[int]:
    packed = ctx.packed
    out_start, out_eid, dst = packed.out_start, packed.out_eid, packed.dst
    result: List[int] = []
    for i in sorted(members):
        for pos in range(out_start[i], out_start[i + 1]):
            eid = out_eid[pos]
            if dst[eid] in members:
                result.append(eid)
    return result


def _process_region_indexed(
    region: List[int],
    level: int,
    ctx: _SynthesisContext,
    entries: Dict[int, List[Hypothesis]],
) -> RegionInfo:
    """Assign level-``level`` hypotheses inside one strongly connected
    region and recurse into its sub-SCCs, index-natively.

    Appends to ``entries[index]`` (creating the list if absent) and returns
    the region's :class:`RegionInfo`; raises :class:`_RegionUnfair` when the
    region starves nothing.
    """
    members = set(region)
    internal = _internal_eids(ctx, members)
    demanded = ctx.demanded
    fulfilled = ctx.fulfilled
    helpful: Optional[str] = None
    enabled_here: List[int] = []
    for name in ctx.names:
        candidates = [i for i in region if name in demanded[i]]
        if candidates and not any(name in fulfilled[e] for e in internal):
            helpful = name
            enabled_here = candidates
            break
    if helpful is None:
        raise _RegionUnfair(len(region))

    rest = sorted(members - set(enabled_here))
    sub_components = tarjan_scc_csr(ctx.packed, rest)
    sub_rank: Dict[int, int] = {}
    for position, component in enumerate(sub_components):
        for node in component:
            sub_rank[node] = position

    # Measure for the helpful hypothesis: 0 on states where it demands
    # service (activity there is by demand; the value is immaterial), and
    # 1 + sub-SCC rank elsewhere, so transitions between different sub-SCCs
    # strictly decrease it.
    for index in enabled_here:
        entries.setdefault(index, []).append(Hypothesis(helpful, 0))
    for index in rest:
        entries.setdefault(index, []).append(
            Hypothesis(helpful, 1 + sub_rank[index])
        )

    info = RegionInfo(
        level=level,
        helpful=helpful,
        states=tuple(region),
        enabled_here=tuple(sorted(enabled_here)),
    )
    for component in sub_components:
        sub_members = set(component)
        if not _internal_eids(ctx, sub_members):
            continue
        info.children.append(
            _process_region_indexed(
                sorted(sub_members), level + 1, ctx, entries
            )
        )
    return info


def _synthesis_chunk_worker(
    payload: Tuple[_SynthesisContext, Sequence[Sequence[int]]],
):
    """Worker: process a chunk of independent top-level SCC regions.

    Returns one entry per region, in order: ``("ok", extra, info)`` with
    the hypotheses appended above the base stacks, or
    ``("unfair", region_size)``.  Module level for picklability; also the
    serial path's engine.
    """
    ctx, regions = payload
    results = []
    traced = telemetry.enabled()
    for region in regions:
        extra: Dict[int, List[Hypothesis]] = {}
        try:
            info = _process_region_indexed(list(region), 1, ctx, extra)
        except _RegionUnfair as unfair:
            results.append(("unfair", unfair.region_size))
            if traced:
                telemetry.count("synthesize.unfair_regions")
        else:
            results.append(("ok", extra, info))
            if traced:
                # Counted in the chunk engine (serial path == pool worker),
                # so parent totals are exact for any job count.
                telemetry.count("synthesize.regions", info.total_regions())
                telemetry.count(
                    "synthesize.hypotheses",
                    sum(len(appended) for appended in extra.values()),
                )
    return results


def synthesize_measure(
    graph: ReachableGraph,
    requirements: Optional[Sequence[FairnessRequirement]] = None,
    n_jobs: int | None = None,
) -> SynthesisResult:
    """Synthesise a fair termination measure over a complete finite graph.

    ``requirements`` switches to generalized fairness ([FK84]): hypotheses
    then name requirements instead of commands, helpful choices are
    demanded-but-unfulfilled requirements, and the result must be verified
    with ``check_measure(..., requirements=requirements)``.  Omitted, the
    paper's per-command strong fairness is used.

    ``n_jobs`` distributes the top-level SCC regions — independent
    sub-problems touching disjoint states — over a process pool; results
    merge in component order, so stacks, regions and failure behaviour are
    identical to the serial run (``None``/``0``/``1``, or whenever the pool
    is unavailable).

    Raises :class:`NotFairlyTerminatingError` (with a fair-cycle witness)
    when none exists, and ``ValueError`` on incomplete graphs — a measure
    synthesised from a truncated graph would certify nothing.
    """
    if not graph.complete:
        raise ValueError(
            "synthesis needs the complete reachable graph; "
            f"exploration left {len(graph.frontier)} frontier states"
        )
    if requirements is None:
        requirements = command_requirements(graph.system)
    with telemetry.span("synthesize", states=len(graph), jobs=n_jobs) as sp:
        result = _synthesize_inner(graph, requirements, n_jobs)
        telemetry.count("synthesize.runs")
        telemetry.gauge("synthesize.max_stack_height", result.max_stack_height())
        sp.set("regions", result.region_count())
        sp.set("max_stack_height", result.max_stack_height())
        return result


def _synthesize_inner(
    graph: ReachableGraph,
    requirements: Sequence[FairnessRequirement],
    n_jobs: int | None,
) -> SynthesisResult:
    top = decompose(graph)
    ctx = _build_context(graph, requirements)
    # Reverse-topological component position: every inter-SCC transition
    # strictly decreases it.
    base_entries: Dict[int, List[Hypothesis]] = {
        index: [Hypothesis(TERMINATION, top.component_of[index])]
        for index in range(len(graph))
    }

    nontrivial = [
        component
        for component in top.components
        if _internal_eids(ctx, set(component))
    ]
    telemetry.count("synthesize.top_sccs", len(nontrivial))

    regions: List[RegionInfo] = []
    # Adaptive dispatch: the recursion's work scales with the transitions
    # inside the candidate regions; below the cutoff the pool's fixed costs
    # dominate and the request is demoted to serial (never-slower rule).
    jobs = effective_jobs(n_jobs, len(graph.transitions))
    if jobs <= 1 or len(nontrivial) < 2:
        outcomes = _synthesis_chunk_worker((ctx, nontrivial))
    else:
        chunks = chunk_items(nontrivial, jobs)
        payloads = [(ctx, chunk) for chunk in chunks]
        outcomes = [
            outcome
            for chunk_result in parallel_map(
                _synthesis_chunk_worker, payloads, n_jobs=jobs
            )
            for outcome in chunk_result
        ]

    for outcome in outcomes:
        if outcome[0] == "unfair":
            witness = find_generally_fair_cycle(graph, requirements)
            raise NotFairlyTerminatingError(
                f"region of {outcome[1]} states fulfils every demanded "
                "requirement internally — it hosts a fair cycle, so the "
                "program does not fairly terminate",
                witness,
            )
        _, extra, info = outcome
        for index, appended in extra.items():
            base_entries[index].extend(appended)
        regions.append(info)

    stacks = {
        index: Stack(entries) for index, entries in base_entries.items()
    }
    return SynthesisResult(graph=graph, stacks=stacks, regions=regions)


def process_regions(
    graph: ReachableGraph,
    components: Sequence[Sequence[int]],
    requirements: Sequence[FairnessRequirement],
    entries: Dict[int, List[Hypothesis]],
    level: int = 1,
) -> List[RegionInfo]:
    """Process several disjoint strongly connected regions with one shared
    indexed context (requirement predicates evaluated once for all of them).

    Trivial components (no internal transition) are skipped.  Used by
    :mod:`repro.response.measure`, which decomposes a pending region and
    runs the standard construction inside each of its SCCs.
    """
    ctx = _build_context(graph, requirements)
    regions: List[RegionInfo] = []
    try:
        for component in components:
            if not _internal_eids(ctx, set(component)):
                continue
            regions.append(
                _process_region_indexed(list(component), level, ctx, entries)
            )
    except _RegionUnfair as unfair:
        witness = find_generally_fair_cycle(graph, requirements)
        raise NotFairlyTerminatingError(
            f"region of {unfair.region_size} states fulfils every demanded "
            "requirement internally — it hosts a fair cycle, so the program "
            "does not fairly terminate",
            witness,
        ) from None
    return regions


def _process_region(
    graph: ReachableGraph,
    region: List[int],
    level: int,
    requirements: Sequence[FairnessRequirement],
    entries: Dict[int, List[Hypothesis]],
) -> RegionInfo:
    """Assign hypotheses inside one strongly connected region (state-level
    compatibility entry point).

    Builds the indexed context for the *whole* graph and delegates; raises
    :class:`NotFairlyTerminatingError` like the seed implementation did.
    Callers with several regions should use :func:`process_regions`, which
    shares one context across all of them.
    """
    ctx = _build_context(graph, requirements)
    try:
        return _process_region_indexed(list(region), level, ctx, entries)
    except _RegionUnfair as unfair:
        witness = find_generally_fair_cycle(graph, requirements)
        raise NotFairlyTerminatingError(
            f"region of {unfair.region_size} states fulfils every demanded "
            "requirement internally — it hosts a fair cycle, so the program "
            "does not fairly terminate",
            witness,
        ) from None
