"""The Theorem 3 completeness construction, exactly as in the appendix.

Given a *tree-like* program, the construction defines the stack ``μ(p')``
from the stack ``μ(p)`` of the unique predecessor:

* **Initial stack** (Figure 3): ``T : new`` at level 0 and an
  ``ℓᵢ : new`` hypothesis for each of the ``N`` commands at levels
  ``1..N`` ("the order of the hypotheses does not matter at this point" —
  we use the program's command order).
* **Case 1** (Figure 4, *naturally active*): some ``ℓ'``-hypothesis below
  the executed command's hypothesis has ``ℓ'`` enabled in ``p`` or ``p'``.
  Let ``α`` be the lowest such.  Everything below ``α`` is preserved;
  ``α`` and the hypotheses above keep their subjects but all take fresh
  (``new``) measure values.
* **Case 2** (Figure 5, *forced active*): no naturally active hypothesis.
  ``α`` is the hypothesis just below the executed ``ℓ``-hypothesis
  (possibly ``T``).  ``α``'s measure takes a fresh value ``w'`` and the
  descent ``w ≻ w'`` is recorded; the hypotheses above ``α`` are rotated
  one step downwards, ``ℓ`` moving to the top, all with fresh values.

Every ``new`` records ``ι(w)`` (the state where ``w`` first appears) and
``λ(w)`` (its level), the bookkeeping the appendix's Claims 1–2 are stated
in.  Because descent edges always point at brand-new elements, the explored
``(W, ≻)`` is acyclic *by construction*; the content of Theorem 3 is that
for fairly terminating programs it stays well-founded in the limit, which
the experiments probe via descending-chain growth
(:func:`longest_chain_length`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.completeness.history import is_tree_like
from repro.measures.assignment import StackAssignment
from repro.measures.hypotheses import TERMINATION, Hypothesis
from repro.measures.stack import Stack
from repro.measures.verification import MeasureCheckResult, check_measure
from repro.ts.explore import ReachableGraph
from repro.wf.finite import FiniteOrder, GrowableRelation


class NotTreeLikeError(ValueError):
    """Raised when the construction is applied to a non-tree-like graph."""


@dataclass
class ConstructionStats:
    """How often each case fired, per level, plus tree shape."""

    case1_by_level: Dict[int, int] = field(default_factory=dict)
    case2_by_level: Dict[int, int] = field(default_factory=dict)

    @property
    def case1_total(self) -> int:
        """Transitions handled by Case 1 (naturally active)."""
        return sum(self.case1_by_level.values())

    @property
    def case2_total(self) -> int:
        """Transitions handled by Case 2 (forced active)."""
        return sum(self.case2_by_level.values())


@dataclass
class TreeMeasure:
    """The output of the construction over an explored tree.

    ``stacks[i]`` is ``μ`` of the state at index ``i``; values are the
    integers allocated by ``new`` (the Theorem 4 representation of ``W``).
    ``iota``/``lam`` are the appendix's ``ι``/``λ`` maps (value → state
    index, value → level).
    """

    graph: ReachableGraph
    stacks: List[Stack]
    relation: GrowableRelation
    order: FiniteOrder
    iota: Dict[int, int]
    lam: Dict[int, int]
    stats: ConstructionStats

    def assignment(self) -> StackAssignment:
        """The stack assignment ``μ`` as a checkable object."""
        table = {
            self.graph.state_of(i): stack for i, stack in enumerate(self.stacks)
        }
        return StackAssignment.from_dict(
            table, self.order, description="Theorem 3 construction"
        )

    def verify(self) -> MeasureCheckResult:
        """Re-check (V_A), (V_NonI), (V_NoC) on every explored transition.

        The construction satisfies them by design; this is the executable
        proof obligation (and a regression tripwire).
        """
        return check_measure(self.graph, self.assignment())

    def value_vector(self, index: int) -> Tuple[int, ...]:
        """``θ̄(σ)`` — the measure values at levels ``0..N`` of one stack."""
        return tuple(h.value for h in self.stacks[index].entries)

    def subject_vector(self, index: int) -> Tuple[str, ...]:
        """``ᾱ(σ)`` — the hypothesis ordering of one stack."""
        return self.stacks[index].subjects()


def _initial_stack(
    commands: Sequence[str],
    relation: GrowableRelation,
    iota: Dict[int, int],
    lam: Dict[int, int],
    root: int,
) -> Stack:
    entries: List[Hypothesis] = []
    for level, subject in enumerate((TERMINATION,) + tuple(commands)):
        value = relation.new()
        iota[value] = root
        lam[value] = level
        entries.append(Hypothesis(subject, value))
    return Stack(entries)


def construction_step(
    parent_stack: Stack,
    executed: str,
    enabled_union: frozenset,
    relation: GrowableRelation,
    iota: Dict[int, int],
    lam: Dict[int, int],
    child: int,
    stats: Optional[ConstructionStats] = None,
) -> Stack:
    """One application of Case 1 / Case 2 — shared with the lazy Theorem 4
    semi-measure."""
    executed_level = parent_stack.level_of(executed)
    if executed_level is None:
        raise ValueError(
            f"executed command {executed!r} has no hypothesis in "
            f"{parent_stack.render()}; the construction maintains full stacks"
        )

    def fresh(level: int) -> int:
        value = relation.new()
        iota[value] = child
        lam[value] = level
        return value

    # An ℓ'-hypothesis is naturally active if ℓ' is enabled in p or p' and
    # it lies below the executed command's hypothesis.
    naturally_active_level: Optional[int] = None
    for level in range(1, executed_level):
        if parent_stack.level(level).subject in enabled_union:
            naturally_active_level = level
            break

    entries: List[Hypothesis] = []
    if naturally_active_level is not None:
        # Case 1: preserve below α; α and everything above keep their
        # subjects with fresh values.
        if stats is not None:
            counts = stats.case1_by_level
            counts[naturally_active_level] = counts.get(naturally_active_level, 0) + 1
        entries.extend(parent_stack.below(naturally_active_level))
        for level in range(naturally_active_level, parent_stack.height):
            subject = parent_stack.level(level).subject
            entries.append(Hypothesis(subject, fresh(level)))
        return Stack(entries)

    # Case 2: α is just below the ℓ-hypothesis; record the descent and
    # rotate everything above α one step downwards, ℓ to the top.
    alpha_level = executed_level - 1
    if stats is not None:
        counts = stats.case2_by_level
        counts[alpha_level] = counts.get(alpha_level, 0) + 1
    entries.extend(parent_stack.below(alpha_level))
    alpha = parent_stack.level(alpha_level)
    new_value = fresh(alpha_level)
    relation.add_descent(alpha.value, new_value)
    entries.append(Hypothesis(alpha.subject, new_value))
    rotated_subjects = [
        parent_stack.level(level).subject
        for level in range(executed_level + 1, parent_stack.height)
    ] + [executed]
    for offset, subject in enumerate(rotated_subjects):
        entries.append(Hypothesis(subject, fresh(executed_level + offset)))
    return Stack(entries)


def theorem3_construction(graph: ReachableGraph) -> TreeMeasure:
    """Run the appendix construction over an explored tree-like graph.

    ``graph`` is typically ``explore(add_history_variable(P), ...)``; it
    must be tree-like (forests with several roots are accepted, each root
    getting its own Figure 3 initial stack).
    """
    if not is_tree_like(graph):
        raise NotTreeLikeError(
            "graph is not tree-like; apply add_history_variable() first"
        )
    commands = graph.system.commands()
    relation = GrowableRelation()
    iota: Dict[int, int] = {}
    lam: Dict[int, int] = {}
    stats = ConstructionStats()
    stacks: List[Optional[Stack]] = [None] * len(graph)

    for root in graph.initial_indices:
        stacks[root] = _initial_stack(commands, relation, iota, lam, root)

    # Discovery (BFS) order guarantees parents come before children.
    for index in range(len(graph)):
        if stacks[index] is not None:
            continue
        incoming = graph.incoming(index)
        if len(incoming) != 1:
            raise NotTreeLikeError(
                f"state index {index} has {len(incoming)} predecessors"
            )
        transition = incoming[0]
        parent_stack = stacks[transition.source]
        if parent_stack is None:
            raise AssertionError(
                "BFS order violated: child visited before its parent"
            )
        enabled_union = graph.enabled_at(transition.source) | graph.enabled_at(
            index
        )
        stacks[index] = construction_step(
            parent_stack,
            transition.command,
            enabled_union,
            relation,
            iota,
            lam,
            index,
            stats,
        )

    return TreeMeasure(
        graph=graph,
        stacks=[s for s in stacks],  # all filled now
        relation=relation,
        order=relation.freeze(),
        iota=iota,
        lam=lam,
        stats=stats,
    )


def longest_chain_length(relation: GrowableRelation) -> int:
    """Length (edge count) of the longest ``≻``-descent in the relation.

    Edges always point at fresh elements, so the graph is a DAG and a
    linear-time DP suffices.  For a fairly terminating program this value
    stabilises as the tree is explored deeper; for a program with a fair
    infinite computation it grows without bound — the experimental shadow
    of "(W, ≻) is well-founded iff P fairly terminates" (Theorem 4).
    """
    order = relation.freeze()
    depth: Dict[int, int] = {}
    # Elements were allocated 0..size-1 and edges go old → new, so a reverse
    # scan is a topological order.
    successors: Dict[int, List[int]] = {}
    for greater, lesser in relation.edges:
        successors.setdefault(greater, []).append(lesser)
    best = 0
    for element in range(relation.size - 1, -1, -1):
        depth[element] = max(
            (1 + depth[child] for child in successors.get(element, ())),
            default=0,
        )
        best = max(best, depth[element])
    # ``order`` is kept alive purely to assert acyclicity in debug runs.
    assert order.is_well_founded(), "construction produced a descent cycle"
    return best
