"""Completeness constructions: Theorems 2, 3, 4 and automatic synthesis."""

from repro.completeness.construction import (
    ConstructionStats,
    NotTreeLikeError,
    TreeMeasure,
    construction_step,
    longest_chain_length,
    theorem3_construction,
)
from repro.completeness.history import (
    History,
    HistorySystem,
    add_history_variable,
    is_tree_like,
)
from repro.completeness.quotient import (
    HeightTotalOrder,
    QuotientResult,
    theorem2_quotient,
)
from repro.completeness.semimeasure import AuditReport, SemiMeasure, semi_measure
from repro.completeness.synthesis import (
    NotFairlyTerminatingError,
    RegionInfo,
    SynthesisResult,
    synthesize_measure,
)

__all__ = [
    "ConstructionStats",
    "NotTreeLikeError",
    "TreeMeasure",
    "construction_step",
    "longest_chain_length",
    "theorem3_construction",
    "History",
    "HistorySystem",
    "add_history_variable",
    "is_tree_like",
    "HeightTotalOrder",
    "QuotientResult",
    "theorem2_quotient",
    "AuditReport",
    "SemiMeasure",
    "semi_measure",
    "NotFairlyTerminatingError",
    "RegionInfo",
    "SynthesisResult",
    "synthesize_measure",
]
