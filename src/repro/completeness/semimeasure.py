"""Theorem 4: the recursive fair termination *semi-measure*.

"There is a recursive function h that given an index for a tree-like
program P gives indices for a fair termination semi-measure (μ, (W, ≻)),
where both μ and (W, ≻) are recursive.  Moreover, (μ, (W, ≻)) is a fair
termination measure ((W, ≻) is well-founded) iff P is fairly terminating."

:class:`SemiMeasure` is that function, lazily: ``W`` is represented by the
natural numbers ("successive invocations of 'new' give progress values
'0', '1', ...", as the proof suggests), and the stack of any finite run is
computed on demand by traversing the path from the root and replaying the
Theorem 3 construction step.  The relation ``≻`` is recursive in the same
sense: :meth:`descends` answers from the edges recorded while the relevant
stacks were computed.

Well-foundedness of the *whole* ``(W, ≻)`` is Π¹₁ (footnote 1) and thus not
decidable; :meth:`audit` explores to a depth and reports the explored
region's descent statistics — for fairly terminating programs the longest
chain stabilises, for others it grows with depth (experiment E8).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.completeness.construction import (
    ConstructionStats,
    construction_step,
    longest_chain_length,
)
from repro.measures.hypotheses import TERMINATION, Hypothesis
from repro.measures.stack import Stack
from repro.ts.lasso import Path
from repro.ts.system import State, TransitionSystem
from repro.wf.finite import FiniteOrder, GrowableRelation

#: A run: alternating states and commands, as a hashable key.
RunKey = Tuple[Tuple[State, ...], Tuple[str, ...]]


@dataclass(frozen=True)
class AuditReport:
    """Descent statistics of the explored region of ``(W, ≻)``."""

    runs_explored: int
    values_allocated: int
    descent_edges: int
    longest_chain: int
    well_founded_so_far: bool


class SemiMeasure:
    """The lazy semi-measure of a program (via its history tree)."""

    def __init__(self, system: TransitionSystem) -> None:
        system.validate_commands()
        self._system = system
        self._relation = GrowableRelation()
        self._iota: Dict[int, RunKey] = {}
        self._lam: Dict[int, int] = {}
        self._stats = ConstructionStats()
        self._stacks: Dict[RunKey, Stack] = {}

    @property
    def system(self) -> TransitionSystem:
        """The underlying (not necessarily tree-like) program."""
        return self._system

    @property
    def relation(self) -> GrowableRelation:
        """The ``(W, ≻)`` explored so far (grows as runs are queried)."""
        return self._relation

    @property
    def stats(self) -> ConstructionStats:
        """Case 1/Case 2 statistics over all computed steps."""
        return self._stats

    # -- μ ------------------------------------------------------------------

    def stack_of(self, run: Path) -> Stack:
        """``μ(σ)`` for a finite run ``σ`` of the program.

        The run must start in an initial state and follow real transitions;
        each prefix's stack is computed once and memoised.
        """
        key = (run.states, run.commands)
        cached = self._stacks.get(key)
        if cached is not None:
            return cached
        if len(run) == 0:
            stack = self._initial_stack(run.first, key)
        else:
            prefix = Path(run.states[:-1], run.commands[:-1])
            parent = self.stack_of(prefix)
            executed = run.commands[-1]
            source, target = run.states[-2], run.states[-1]
            self._check_transition(source, executed, target)
            enabled_union = self._system.enabled(source) | self._system.enabled(
                target
            )
            stack = construction_step(
                parent,
                executed,
                enabled_union,
                self._relation,
                self._iota,  # type: ignore[arg-type]
                self._lam,
                key,  # type: ignore[arg-type]
                self._stats,
            )
        self._stacks[key] = stack
        return stack

    def _initial_stack(self, state: State, key: RunKey) -> Stack:
        if state not in set(self._system.initial_states()):
            raise ValueError(f"{state!r} is not an initial state")
        entries: List[Hypothesis] = []
        for level, subject in enumerate(
            (TERMINATION,) + tuple(self._system.commands())
        ):
            value = self._relation.new()
            self._iota[value] = key
            self._lam[value] = level
            entries.append(Hypothesis(subject, value))
        return Stack(entries)

    def _check_transition(self, source: State, command: str, target: State) -> None:
        for c, t in self._system.post(source):
            if c == command and t == target:
                return
        raise ValueError(
            f"{source!r} --{command}--> {target!r} is not a transition of "
            "the program"
        )

    # -- ≻ -------------------------------------------------------------------

    def descends(self, greater: int, lesser: int) -> bool:
        """Whether ``greater ≻ lesser`` among the values allocated so far
        (transitively)."""
        return self._relation.freeze().gt(greater, lesser)

    def iota(self, value: int) -> RunKey:
        """``ι(w)``: the run whose stack first used ``value``."""
        return self._iota[value]

    def lam(self, value: int) -> int:
        """``λ(w)``: the level at which ``value`` was introduced."""
        return self._lam[value]

    # -- audits -----------------------------------------------------------------

    def audit(self, max_depth: int) -> AuditReport:
        """Force all runs up to ``max_depth`` and report descent statistics."""
        frontier: List[Path] = [
            Path.singleton(p) for p in self._system.initial_states()
        ]
        explored = 0
        for path in frontier:
            self.stack_of(path)
            explored += 1
        for _ in range(max_depth):
            next_frontier: List[Path] = []
            for path in frontier:
                for command, target in self._system.post(path.last):
                    extended = path.extend(command, target)
                    self.stack_of(extended)
                    explored += 1
                    next_frontier.append(extended)
            frontier = next_frontier
            if not frontier:
                break
        frozen: FiniteOrder = self._relation.freeze()
        return AuditReport(
            runs_explored=explored,
            values_allocated=self._relation.size,
            descent_edges=len(self._relation.edges),
            longest_chain=longest_chain_length(self._relation),
            well_founded_so_far=frozen.is_well_founded(),
        )


def semi_measure(system: TransitionSystem) -> SemiMeasure:
    """The paper's recursive function ``h`` applied to ``system``."""
    return SemiMeasure(system)
