"""Theorem 1, executably: a measure turns any infinite computation into an
unfairness witness.

The paper's soundness proof takes an infinite computation, looks at the
*levels* of the active hypotheses, and sets ``κ = liminf κᵢ``.  On an
ultimately periodic computation (a lasso) the liminf is simply the minimum
active level around the cycle, and the whole argument becomes effective:

* ``κ = 0`` is impossible — the T-measure would weakly descend around the
  cycle with a strict drop, returning to its starting value: an immediate
  contradiction with well-foundedness.  (Reaching this branch means the
  supplied assignment is *not* a measure on the cycle; we raise.)
* The hypothesis at level ``κ`` is a fixed ``ℓ``-hypothesis around the cycle
  ((V_NoC) pins everything below the active level, and the checker pins the
  subject at the active level itself); (V_NonI) means ``ℓ`` is never
  executed on the cycle.
* ``ℓ`` must be enabled somewhere on the cycle — otherwise the ``ℓ``-measure
  would descend strictly around the cycle (activity at level ``κ`` without
  enabledness is by measure decrease, and higher active levels preserve
  level ``κ``), the same contradiction.

The returned :class:`UnfairnessWitness` packages the command, the level, and
the evidence; tests cross-check it against the independent
:mod:`repro.fairness.spec` verdict.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.measures.assignment import StackAssignment
from repro.measures.stack import Stack
from repro.measures.verification import find_active_level
from repro.ts.lasso import Lasso
from repro.ts.system import State, TransitionSystem


class MeasureContradiction(AssertionError):
    """The supplied assignment is not a fair termination measure on the
    given computation — some verification condition fails, or a measure
    value would have to descend forever."""


@dataclass(frozen=True)
class UnfairnessWitness:
    """Why the lasso's infinite computation is unfair.

    ``command`` is enabled at ``enabled_at`` cycle states (non-empty) yet
    executed nowhere on the cycle; ``level`` is the paper's ``κ``.
    ``active_levels`` lists the active level chosen on each cycle
    transition, for transparency.
    """

    command: str
    level: int
    enabled_at: Tuple[State, ...]
    active_levels: Tuple[int, ...]

    def __str__(self) -> str:
        return (
            f"unfair w.r.t. {self.command!r} (stack level {self.level}): "
            f"enabled at {len(self.enabled_at)} cycle state(s), never executed "
            f"on the cycle"
        )


def unfairness_witness(
    system: TransitionSystem,
    assignment: StackAssignment,
    lasso: Lasso,
) -> UnfairnessWitness:
    """Extract the command w.r.t. which ``lasso`` is unfair (Theorem 1).

    Raises :class:`MeasureContradiction` if the assignment fails the
    verification conditions along the lasso — in that case it certifies
    nothing about this computation.
    """
    order = assignment.order
    cycle_states = list(lasso.cycle.states)
    stacks: List[Stack] = [assignment(state) for state in cycle_states]

    active_levels: List[int] = []
    reasons: List[str] = []
    for i, command in enumerate(lasso.cycle.commands):
        source, target = cycle_states[i], cycle_states[i + 1]
        enabled_union = system.enabled(source) | system.enabled(target)
        data, failures = find_active_level(
            stacks[i], stacks[i + 1], command, enabled_union, order
        )
        if data is None:
            detail = "; ".join(f"level {f.level}: {f.detail}" for f in failures)
            raise MeasureContradiction(
                f"verification conditions fail on cycle transition "
                f"{source!r} --{command}--> {target!r}: {detail}"
            )
        active_levels.append(data.level)
        reasons.append(data.reason)

    kappa = min(active_levels)
    if kappa == 0:
        # The T-measure strictly decreases at some cycle transition and
        # never increases ((V_NoC) below higher active levels), yet the
        # cycle returns to its first state: μ^T(p) ≻ μ^T(p) — absurd.
        raise MeasureContradiction(
            "active level 0 on a cycle: the T-measure would descend "
            "forever; the assignment is not a fair termination measure"
        )

    # The hypothesis at level κ is pinned around the whole cycle.
    subjects = {stack.level(kappa).subject for stack in stacks[:-1]}
    if len(subjects) != 1:
        raise MeasureContradiction(
            f"hypothesis at level {kappa} changes around the cycle "
            f"({sorted(subjects)}); (V_NoC) should have pinned it"
        )
    command = subjects.pop()

    if command in lasso.executed_infinitely_often():
        raise MeasureContradiction(
            f"{command!r} at active level {kappa} is executed on the cycle, "
            "contradicting (V_NonI)"
        )

    enabled_at = tuple(
        state for state in lasso.cycle_states() if command in system.enabled(state)
    )
    if not enabled_at:
        raise MeasureContradiction(
            f"{command!r} is never enabled on the cycle, so its measure "
            "descends strictly around the cycle — absurd for a measure"
        )

    return UnfairnessWitness(
        command=command,
        level=kappa,
        enabled_at=enabled_at,
        active_levels=tuple(active_levels),
    )
