"""Annotated programs: a program together with its stack assertion.

This is the user-facing bundle for the paper's workflow — write the
program, write the assertion (``P2'``, ``P3'``, ``P4'``...), then *check*:
explore the reachable states and verify (V_A), (V_NonI), (V_NoC) on every
transition.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.gcl.pretty import render_program
from repro.gcl.program import Program
from repro.measures.assertions import StackAssertion
from repro.measures.verification import (
    MeasureCheckResult,
    StreamingCheckResult,
    check_measure,
    check_measure_streaming,
)
from repro.ts.explore import ReachableGraph, explore


@dataclass
class AnnotatedProgram:
    """A program plus a stack assertion claimed to be a fair termination
    measure for it."""

    program: Program
    assertion: StackAssertion

    def check(
        self,
        max_states: Optional[int] = None,
        max_depth: Optional[int] = None,
        graph: Optional[ReachableGraph] = None,
        n_jobs: Optional[int] = None,
    ) -> MeasureCheckResult:
        """Verify the annotation over the (possibly bounded) reachable graph.

        Pass a pre-explored ``graph`` to amortise exploration across several
        checks of the same program; ``n_jobs`` fans the transition checks out
        over a process pool (results are identical to the serial run).
        """
        if graph is None:
            graph = explore(self.program, max_states=max_states, max_depth=max_depth)
        assignment = self.assertion.compile()
        return check_measure(graph, assignment, n_jobs=n_jobs)

    def check_streaming(
        self,
        max_states: Optional[int] = None,
        max_depth: Optional[int] = None,
        n_jobs: Optional[int] = None,
        max_violations: Optional[int] = None,
    ) -> StreamingCheckResult:
        """Verify the annotation on the fly, while exploration runs.

        Each transition's verification conditions are checked as its source
        state is expanded, so memory stays proportional to the frontier and
        ``max_violations=1`` turns the check into a fail-fast run that stops
        exploring at the first violation.  Run to completion the verdict is
        bit-identical to :meth:`check`.
        """
        return check_measure_streaming(
            self.program,
            self.assertion.compile(),
            max_states=max_states,
            max_depth=max_depth,
            n_jobs=n_jobs,
            max_violations=max_violations,
        )

    def render(self) -> str:
        """The annotated program in paper style: assertion above the loop."""
        assertion_block = self.assertion.render()
        program_block = render_program(self.program.ast)
        return f"{assertion_block}\n{program_block}"


def annotate(program: Program, assertion: StackAssertion) -> AnnotatedProgram:
    """Bundle ``program`` with ``assertion`` (sanity-checking subjects).

    Every non-T subject mentioned by the assertion must be a command label
    of the program — a typo in a label would otherwise produce a vacuously
    unverifiable annotation.
    """
    labels = set(program.commands())
    for case in assertion.cases:
        for spec in case.hypotheses[:-1]:
            if spec.subject not in labels:
                raise ValueError(
                    f"assertion mentions {spec.subject!r}, which is not a "
                    f"command of {program.name!r} (commands: {sorted(labels)})"
                )
    return AnnotatedProgram(program=program, assertion=assertion)
