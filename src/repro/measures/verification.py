"""The verification conditions (V_A), (V_NonI), (V_NoC) — Section 4.1.

For a transition ``p → p'`` executing command ``ℓ``, a level ``k`` hosting
an ``α``-hypothesis *witnesses* the conditions when:

* **(V_NoC)** the stacks ``μ(p)`` and ``μ(p')`` agree strictly below ``k``,
  and the hypothesis at ``k`` has the same subject ``α`` in both (Figure 1:
  the active hypothesis sits at the same level on both sides — everything
  *above* may change arbitrarily);
* **(V_NonI)** no hypothesis at levels ``0..k`` is the ``ℓ``-hypothesis
  (the T-hypothesis is never invalidated);
* **(V_A)** the ``α``-hypothesis is *active*: either ``α`` is a command
  label enabled in ``p`` or ``p'`` (the §5 old-state/new-state reading), or
  both measures are defined and ``μ^α(p) ≻ μ^α(p')``.

"There may be several choices for an active hypothesis" (§5) — the checker
accepts a transition if *any* level witnesses the conditions, and records
which one (preferring the lowest, which is also what the soundness argument
tracks).  A stack assignment passing on every transition is a **fair
termination measure** (Theorem 1 then applies; see
:mod:`repro.measures.soundness`).
"""

from __future__ import annotations

import os
from array import array
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.engine import shm
from repro.engine.parallel import chunk_items, effective_jobs, parallel_map
from repro.measures.assignment import StackAssignment
from repro.measures.columns import (
    StackColumns,
    check_chunk_columns,
    encode_stacks,
)
from repro.telemetry import core as telemetry
from repro.telemetry import events
from repro.measures.hypotheses import TERMINATION
from repro.measures.stack import Stack, stacks_equal_below
from repro.ts.explore import ExplorationObserver, ReachableGraph, StopExploration, explore
from repro.ts.system import CommandLabel, Transition, TransitionSystem
from repro.wf.base import WellFoundedOrder

#: ``"0"`` disables the columnar verification plane (every check takes the
#: per-transition tuple path); ``"1"`` forces it even where the adaptive
#: rule would stay serial-tuple (benchmark columns and differential
#: tests).  Unset/other: columnar engages when the check goes parallel or
#: the transition count reaches :data:`PLANE_WORK_CUTOFF`; small serial
#: checks — and any graph the codec cannot encode — keep the tuple engine
#: unchanged.
VERIFY_PLANE_ENV = "REPRO_VERIFY_PLANE"

#: Transition count above which the columnar kernel beats the tuple path
#: even on one core (encoding is O(states), the kernel saves per-edge
#: tuple construction and interpreted level-search overhead); below it
#: the tuple engine stays the serial default.
PLANE_WORK_CUTOFF = 20_000


@dataclass(frozen=True)
class ActiveWitness:
    """The level that discharged the verification conditions for one
    transition, and why it was active."""

    transition: Transition
    level: int
    subject: str
    #: ``"enabled"`` — active via the command being enabled in p or p';
    #: ``"decrease"`` — active via a strict measure decrease.
    reason: str


@dataclass(frozen=True)
class LevelFailure:
    """Why one candidate level failed, for diagnostics."""

    level: int
    subject: Optional[str]
    detail: str


@dataclass(frozen=True)
class TransitionViolation:
    """A transition on which no level witnesses (V_A) ∧ (V_NonI) ∧ (V_NoC)."""

    transition: Transition
    source_stack: Stack
    target_stack: Stack
    failures: Tuple[LevelFailure, ...]

    def __str__(self) -> str:
        lines = [
            f"verification conditions fail on {self.transition}",
            f"  μ(p)  = {self.source_stack.render()}",
            f"  μ(p') = {self.target_stack.render()}",
        ]
        for failure in self.failures:
            subject = failure.subject or "?"
            lines.append(f"  level {failure.level} ({subject}): {failure.detail}")
        return "\n".join(lines)


class MeasureVerificationError(AssertionError):
    """Raised by :meth:`MeasureCheckResult.raise_if_failed`."""


@dataclass
class MeasureCheckResult:
    """Outcome of checking a stack assignment over an explored graph.

    ``is_fair_termination_measure`` requires all three: every transition
    witnessed, the order well-founded (decidable only for finite orders;
    infinite library orders are well-founded by construction), and the graph
    complete — on a bounded graph the result still certifies the explored
    region and says so via ``complete``.
    """

    witnesses: List[ActiveWitness]
    violations: List[TransitionViolation]
    transitions_checked: int
    complete: bool
    order_well_founded: bool

    @property
    def ok(self) -> bool:
        """All checked transitions witnessed and the order well-founded."""
        return not self.violations and self.order_well_founded

    @property
    def is_fair_termination_measure(self) -> bool:
        """``ok`` on a *complete* graph: a genuine fair termination measure."""
        return self.ok and self.complete

    def active_levels(self) -> Dict[int, int]:
        """Histogram: active level → how many transitions used it."""
        histogram: Dict[int, int] = {}
        for witness in self.witnesses:
            histogram[witness.level] = histogram.get(witness.level, 0) + 1
        return histogram

    def raise_if_failed(self) -> None:
        """Raise with the first few violations if the check failed."""
        problems: List[str] = []
        if not self.order_well_founded:
            problems.append("the measure's (W, ≻) is not well-founded")
        problems.extend(str(v) for v in self.violations[:5])
        if problems:
            more = len(self.violations) - 5
            if more > 0:
                problems.append(f"... and {more} further violations")
            raise MeasureVerificationError("\n".join(problems))

    def summary(self) -> str:
        """One-line summary used by reports."""
        status = "PASS" if self.ok else f"FAIL ({len(self.violations)} violations)"
        scope = "complete" if self.complete else "explored region only"
        return (
            f"{status}: {self.transitions_checked} transitions checked "
            f"({scope}); active levels {self.active_levels()}"
        )


def find_active_level(
    source_stack: Stack,
    target_stack: Stack,
    executed: CommandLabel,
    enabled_union: frozenset,
    order: WellFoundedOrder,
) -> Tuple[Optional[ActiveWitnessData], List[LevelFailure]]:
    """Search for the lowest level witnessing the verification conditions.

    ``enabled_union`` is the set of commands enabled in ``p`` *or* ``p'``.
    Returns ``(witness-data, failures)``; ``witness-data`` is ``None`` when
    no level works, in which case ``failures`` explains each level.

    This is the per-command-fairness instance of
    :func:`find_active_level_general`: a hypothesis is invalidated exactly
    when its subject is the executed command.
    """
    return find_active_level_general(
        source_stack,
        target_stack,
        invalidated=frozenset({executed}),
        active_subjects=enabled_union,
        order=order,
    )


def find_active_level_general(
    source_stack: Stack,
    target_stack: Stack,
    invalidated: frozenset,
    active_subjects: frozenset,
    order: WellFoundedOrder,
) -> Tuple[Optional[ActiveWitnessData], List[LevelFailure]]:
    """The verification-condition search over arbitrary fairness
    requirements ([FK84] generality; the paper's §4.1 notes its definitions
    "depend only on the notions of commands or actions being 'enabled' and
    'executed'").

    ``invalidated`` — subjects whose requirement this transition fulfils
    (for command fairness: the executed command); ``active_subjects`` —
    subjects whose requirement demands service in ``p`` or ``p'`` (for
    command fairness: the commands enabled there).
    """
    failures: List[LevelFailure] = []
    max_level = min(source_stack.height, target_stack.height)
    for level in range(max_level):
        before = source_stack.level(level)
        after = target_stack.level(level)
        if before.subject != after.subject:
            failures.append(
                LevelFailure(
                    level,
                    before.subject,
                    f"hypothesis changes subject across the transition "
                    f"({before.subject!r} → {after.subject!r})",
                )
            )
            # Levels above sit on a changed hypothesis; (V_NoC) can no
            # longer hold for any higher level either.
            break
        subject = before.subject
        # (V_NoC): stack unchanged strictly below the active level.
        if not stacks_equal_below(source_stack, target_stack, level):
            failures.append(
                LevelFailure(level, subject, "stack changes below this level (V_NoC)")
            )
            break
        # (V_NonI): no hypothesis at or below the level is invalidated.
        hit = [
            h.subject
            for h in source_stack.take(level + 1)
            if h.subject in invalidated
        ]
        if hit:
            failures.append(
                LevelFailure(
                    level,
                    subject,
                    f"invalidated hypothesis {hit[0]!r} at or below this "
                    "level (V_NonI)",
                )
            )
            # An invalidated hypothesis sits at some level ≤ k, so every
            # higher level includes it too — no point searching on.
            break
        # (V_A): activity by demand/enabledness or by strict measure decrease.
        if subject != TERMINATION and subject in active_subjects:
            return ActiveWitnessData(level, subject, "enabled"), failures
        if before.value is not None and after.value is not None:
            if order.gt(before.value, after.value):
                return ActiveWitnessData(level, subject, "decrease"), failures
            failures.append(
                LevelFailure(
                    level,
                    subject,
                    f"measure does not decrease: {before.value} ⊁ {after.value} (V_A)",
                )
            )
        else:
            failures.append(
                LevelFailure(
                    level,
                    subject,
                    "not enabled in p or p' and no measure value to decrease (V_A)",
                )
            )
    if max_level == 0:
        failures.append(LevelFailure(0, None, "empty stack overlap"))
    return None, failures


@dataclass(frozen=True)
class ActiveWitnessData:
    """Internal: level/subject/reason triple before attaching the transition."""

    level: int
    subject: str
    reason: str


#: One transition's inputs to the level search, as plain picklable data:
#: ``(source_stack, target_stack, invalidated, active_subjects)``.
_TransitionTask = Tuple[Stack, Stack, frozenset, frozenset]


def _check_chunk(
    payload: Tuple[Sequence[_TransitionTask], WellFoundedOrder],
):
    """Worker: run the level search over one chunk of transitions.

    Returns, per transition, either ``ActiveWitnessData`` or the failure
    tuple — plain data the parent reattaches to its transitions.  Module
    level (and closure-free) so the process pool can pickle it; also the
    serial path, so both paths run literally the same code.
    """
    tasks, order = payload
    results = []
    traced = telemetry.enabled()
    for source_stack, target_stack, invalidated, active_subjects in tasks:
        data, failures = find_active_level_general(
            source_stack, target_stack, invalidated, active_subjects, order
        )
        results.append(data if data is not None else tuple(failures))
        if traced:
            _count_outcome(data, failures)
    return results


def _count_outcome(data, failures) -> None:
    """Registry counters for one level search (telemetry enabled only).

    ``verify.active.*`` records how (V_A) was discharged; failed levels
    are attributed to the condition that rejected them.  Counted inside
    the chunk engine — the same code is the serial path and the pool
    worker, so parent totals are exact for any job count.
    """
    telemetry.count("verify.transitions")
    if data is not None:
        telemetry.count("verify.witnessed")
        telemetry.count(f"verify.active.{data.reason}")
    else:
        telemetry.count("verify.violations")
    for failure in failures:
        if "(V_NoC)" in failure.detail or "changes subject" in failure.detail:
            telemetry.count("verify.failed_levels.v_noc")
        elif "(V_NonI)" in failure.detail:
            telemetry.count("verify.failed_levels.v_noni")
        elif "(V_A)" in failure.detail:
            telemetry.count("verify.failed_levels.v_a")
        else:
            telemetry.count("verify.failed_levels.other")


def _count_plane(counts) -> None:
    """Merge one kernel run's aggregate outcome counters into the registry.

    Same counter names, same totals as :func:`_count_outcome` called per
    transition — the kernel accumulates plain ints and this applies them
    in nine increments instead of millions.  Zero counts stay absent
    (``_count_outcome`` never creates a counter it does not touch).
    """
    (
        transitions,
        witnessed,
        violations,
        enabled,
        decrease,
        f_noc,
        f_noni,
        f_a,
        f_other,
    ) = counts
    if transitions:
        telemetry.count("verify.transitions", transitions)
    if witnessed:
        telemetry.count("verify.witnessed", witnessed)
    if violations:
        telemetry.count("verify.violations", violations)
    if enabled:
        telemetry.count("verify.active.enabled", enabled)
    if decrease:
        telemetry.count("verify.active.decrease", decrease)
    if f_noc:
        telemetry.count("verify.failed_levels.v_noc", f_noc)
    if f_noni:
        telemetry.count("verify.failed_levels.v_noni", f_noni)
    if f_a:
        telemetry.count("verify.failed_levels.v_a", f_a)
    if f_other:
        telemetry.count("verify.failed_levels.other", f_other)


def _attach_plane_column(entry, tag: int):
    """Resolve one manifest entry to a flat payload view (worker side).

    ``("shm", name, length)`` attaches the arena segment and slices off
    the header; ``("file", path, words, typecode)`` memory-maps a
    graph-store chunk directly — the warm graph's columns are already on
    disk, so the coordinator never copies them through shared memory.
    """
    kind = entry[0]
    if kind == "shm":
        _, name, length = entry
        view = shm.attach_column(name, tag, length)
        return view[shm.HEADER_WORDS : shm.HEADER_WORDS + length]
    _, path, words, typecode = entry
    return shm.attach_file_column(path, words, typecode)


#: One columnar chunk task: ``(manifest, tag, lo, hi, n_commands, keep)``.
#: The manifest maps column keys (soff/ssub/sval/srank/src/cmd/dst/emask)
#: to attachable entries — the whole input of a million-edge check chunk
#: pickles in a few hundred bytes.
_PlaneTask = Tuple[Dict[str, tuple], int, int, int, int, bool]


def _check_plane_chunk(task: _PlaneTask):
    """Worker: run the columnar kernel over one edge range.

    Returns ``(witness_bytes, violations, counts)``; ``witness_bytes`` is
    the packed witness-word column (``None`` when the caller keeps no
    witnesses).  Outcome counters are merged into the worker registry
    here — the pool's delta collection carries them home, so parent
    totals are exact for any job count, like the tuple path.
    """
    manifest, tag, lo, hi, n_commands, keep = task
    cols = {key: _attach_plane_column(entry, tag) for key, entry in manifest.items()}
    words, violations, counts = check_chunk_columns(
        cols["soff"],
        cols["ssub"],
        cols["sval"],
        cols["srank"],
        cols["src"],
        cols["cmd"],
        cols["dst"],
        cols["emask"],
        lo,
        hi,
        n_commands,
        keep,
    )
    if telemetry.enabled():
        telemetry.count("verify.plane.chunks")
        _count_plane(counts)
    return (words.tobytes() if words is not None else None, violations, counts)


def _plane_chunks_parallel(
    graph: ReachableGraph,
    columns: StackColumns,
    jobs: int,
    keep_witnesses: bool,
):
    """Publish the plane and fan the kernel out; ``None`` if shm is out.

    Columns the graph already has on disk (mmap-warm loads record their
    single-chunk file sources in ``graph.column_files``) are adopted by
    path; everything else syncs into a fresh arena.  Workers get
    ``(manifest, eid_range)`` tasks; the arena dies in the ``finally`` —
    normal return, pool failure and worker exceptions all reclaim every
    segment (the zero-leak contract).
    """
    src, cmd, dst = graph.transition_columns
    try:
        arena = shm.ShmArena(b"verify-plane")
    except shm.ShmUnavailable:
        if telemetry.enabled():
            telemetry.count("verify.plane.shm_unavailable")
        return None
    try:
        adopted = getattr(graph, "column_files", None) or {}
        manifest: Dict[str, tuple] = {}

        def publish(key: str, source, adopt_key: str | None = None) -> None:
            entry = adopted.get(adopt_key) if adopt_key else None
            if entry is not None:
                path, words, typecode = entry
                manifest[key] = ("file", path, words, typecode)
                if telemetry.enabled():
                    telemetry.count("verify.plane.adopted_columns")
                return
            arena.sync(key, source)
            name, length = arena.column(key).manifest()
            manifest[key] = ("shm", name, length)

        publish("soff", columns.offsets)
        publish("ssub", columns.subject)
        publish("sval", columns.value_id)
        publish("srank", columns.rank)
        publish("src", src, adopt_key="src")
        publish("cmd", cmd, adopt_key="cmd")
        publish("dst", dst, adopt_key="dst")
        publish("emask", graph.enabled_masks, adopt_key="masks")

        parts = chunk_items(range(len(src)), jobs)
        tasks = [
            (manifest, arena.tag, part.start, part.stop,
             columns.n_commands, keep_witnesses)
            for part in parts
            if len(part)
        ]
        outs = parallel_map(_check_plane_chunk, tasks, n_jobs=jobs)
        return [
            (task[2], payload, violations)
            for task, (payload, violations, _) in zip(tasks, outs)
        ]
    finally:
        arena.close()


def _decode_plane_violation(
    graph: ReachableGraph,
    stacks: List[Stack],
    order: WellFoundedOrder,
    eid: int,
) -> TransitionViolation:
    """Re-run the object-level search on one violating edge.

    Violations are rare and need the exact failure strings (measure
    values, not ranks), so the decode simply replays
    :func:`find_active_level_general` on the already-built stacks —
    bit-identical detail text by construction.  Outcome counters were
    already merged from the kernel; the replay does not count again.
    """
    analyses = graph.analyses
    packed = analyses.packed
    commands = analyses.commands
    masks = analyses.enabled_masks
    s, t = packed.src[eid], packed.dst[eid]
    data, failures = find_active_level_general(
        stacks[s],
        stacks[t],
        commands.singleton(packed.cmd[eid]),
        commands.labels_of_mask(masks[s] | masks[t]),
        order,
    )
    if data is not None:  # pragma: no cover - kernel/search parity guard
        raise AssertionError(
            f"internal error: columnar kernel flagged eid {eid} as a "
            f"violation but the level search witnesses it at {data.level}"
        )
    if telemetry.enabled():
        telemetry.count("verify.plane.decoded_violations")
    return TransitionViolation(
        transition=graph.to_transition(graph.transitions[eid]),
        source_stack=stacks[s],
        target_stack=stacks[t],
        failures=tuple(failures),
    )


def _check_measure_plane(
    graph: ReachableGraph,
    stacks: List[Stack],
    columns: StackColumns,
    order: WellFoundedOrder,
    keep_witnesses: bool,
    jobs: int,
) -> MeasureCheckResult:
    """The columnar engine: batched kernels over (possibly shared) columns.

    Verdict, witnesses, violations — contents *and* order — are
    bit-identical to the tuple path: chunks are contiguous eid ranges,
    decoded in range order, and every rare outcome (a violation) replays
    the object-level search for its exact diagnostics.
    """
    src, cmd, dst = graph.transition_columns
    masks = graph.enabled_masks
    m = len(src)
    traced = telemetry.enabled()
    if traced:
        telemetry.count("verify.plane.engaged")
        telemetry.count("verify.plane.rows", m)

    chunks = None
    if jobs > 1 and m > 1:
        chunks = _plane_chunks_parallel(graph, columns, jobs, keep_witnesses)
    if chunks is None:
        words, violating, counts = check_chunk_columns(
            columns.offsets,
            columns.subject,
            columns.value_id,
            columns.rank,
            src,
            cmd,
            dst,
            masks,
            0,
            m,
            columns.n_commands,
            keep_witnesses,
        )
        if traced:
            telemetry.count("verify.plane.chunks")
            _count_plane(counts)
        chunks = [(0, words.tobytes() if words is not None else None, violating)]

    transitions = graph.transitions
    witnesses: List[ActiveWitness] = []
    violations: List[TransitionViolation] = []
    for lo, payload, violating in chunks:
        if keep_witnesses and payload is not None:
            words = array("q")
            words.frombytes(payload)
            for rel, word in enumerate(words):
                eid = lo + rel
                if word < 0:
                    continue
                level = word >> 1
                witnesses.append(
                    ActiveWitness(
                        transition=graph.to_transition(transitions[eid]),
                        level=level,
                        subject=stacks[src[eid]].level(level).subject,
                        reason="decrease" if word & 1 else "enabled",
                    )
                )
        for eid in violating:
            violations.append(
                _decode_plane_violation(graph, stacks, order, eid)
            )

    return MeasureCheckResult(
        witnesses=witnesses,
        violations=violations,
        transitions_checked=m,
        complete=graph.complete,
        order_well_founded=order.is_well_founded(),
    )


def check_measure(
    graph: ReachableGraph,
    assignment: StackAssignment,
    keep_witnesses: bool = True,
    requirements=None,
    n_jobs: int | None = None,
) -> MeasureCheckResult:
    """Check the verification conditions on every explored transition.

    Stacks are computed once per state; measure values are validated for
    membership in the assignment's order.  The result's
    :attr:`~MeasureCheckResult.complete` mirrors the graph's completeness.

    ``requirements`` (a sequence of
    :class:`repro.fairness.generalized.FairnessRequirement`) switches the
    checker to generalized fairness: stack hypotheses then name
    requirements; a hypothesis is active when its requirement demands
    service in either endpoint, and invalidated when the transition fulfils
    it.  Omitted, hypotheses name commands (the paper's strong fairness).

    ``n_jobs`` fans the per-transition checks out over a process pool
    (``repro.engine.parallel``): transitions are split into contiguous
    chunks and the per-chunk results concatenated in order, so witnesses
    and violations — contents *and* order — are identical to the serial
    run.  ``None``/``0``/``1`` stay serial; pool failures fall back to
    serial.
    """
    with telemetry.span(
        "verify", transitions=len(graph.transitions), jobs=n_jobs
    ) as sp:
        result = _check_measure_inner(
            graph, assignment, keep_witnesses, requirements, n_jobs
        )
        sp.set("violations", len(result.violations))
    events.emit(
        events.VERIFY_VERDICT,
        ok=result.ok,
        violations=len(result.violations),
        transitions_checked=result.transitions_checked,
        complete=result.complete,
        streaming=False,
        stopped_early=False,
    )
    return result


def _check_measure_inner(
    graph: ReachableGraph,
    assignment: StackAssignment,
    keep_witnesses: bool,
    requirements,
    n_jobs: int | None,
) -> MeasureCheckResult:
    order = assignment.order
    stacks: List[Stack] = []
    for index in range(len(graph)):
        state = graph.state_of(index)
        stack = assignment(state)
        for hypothesis in stack:
            if hypothesis.value is not None:
                order.check_member(hypothesis.value)
        stacks.append(stack)

    transitions = graph.transitions
    analyses = graph.analyses
    packed = analyses.packed
    src, cmd, dst = packed.src, packed.cmd, packed.dst
    enabled_masks = analyses.enabled_masks
    commands = analyses.commands

    # Columnar dispatch: when the check would go parallel anyway, the
    # transition count is large enough to amortize encoding (the batched
    # kernel beats per-edge tuples even on one core), or the environment
    # forces the plane, pack the stacks into flat columns and run the
    # batched kernel instead of building per-edge tuples.  Any
    # graph/assignment the codec cannot represent exactly — generalized
    # requirements, >63 commands, an order without an exact integer
    # ranking — falls through to the tuple engine below, which also stays
    # the default for small checks (the PR 2 never-slower
    # adaptive-dispatch rule: encoding overhead must never dominate).
    jobs = effective_jobs(n_jobs, len(transitions))
    mode = os.environ.get(VERIFY_PLANE_ENV, "")
    engage = jobs > 1 or mode == "1" or len(transitions) >= PLANE_WORK_CUTOFF
    if mode != "0" and engage:
        if requirements is not None:
            if telemetry.enabled():
                telemetry.count("verify.plane.fallback.requirements")
        else:
            columns, reason = encode_stacks(stacks, commands, order)
            if columns is None:
                if telemetry.enabled():
                    telemetry.count(f"verify.plane.fallback.{reason}")
            else:
                return _check_measure_plane(
                    graph, stacks, columns, order, keep_witnesses, jobs
                )

    # Per-transition inputs, precomputed in the parent so workers never see
    # the (closure-laden, unpicklable) assignment or requirement objects.
    # Enabled-union frozensets are shared via the mask cache; the
    # invalidated singleton per command is interned in the command table.
    tasks: List[_TransitionTask] = []
    if requirements is None:
        for eid in range(len(transitions)):
            s, t = src[eid], dst[eid]
            tasks.append(
                (
                    stacks[s],
                    stacks[t],
                    commands.singleton(cmd[eid]),
                    commands.labels_of_mask(enabled_masks[s] | enabled_masks[t]),
                )
            )
    else:
        demanded = [
            frozenset(
                r.name for r in requirements if r.enabled_at(graph.state_of(i))
            )
            for i in range(len(graph))
        ]
        for transition in transitions:
            source_state = graph.state_of(transition.source)
            target_state = graph.state_of(transition.target)
            tasks.append(
                (
                    stacks[transition.source],
                    stacks[transition.target],
                    frozenset(
                        r.name
                        for r in requirements
                        if r.fulfilled_by(
                            source_state, transition.command, target_state
                        )
                    ),
                    demanded[transition.source] | demanded[transition.target],
                )
            )

    # Adaptive dispatch: one work unit per transition (``jobs`` was
    # resolved above, before the columnar branch).  Small graphs are
    # demoted to serial so ``--jobs N`` never pays pool overhead it cannot
    # amortise (REPRO_FORCE_PARALLEL=1 overrides, for pool smoke tests).
    if jobs <= 1:
        outcomes = _check_chunk((tasks, order))
    else:
        chunks = chunk_items(tasks, jobs)
        payloads = [(chunk, order) for chunk in chunks]
        outcomes = [
            outcome
            for chunk_result in parallel_map(_check_chunk, payloads, n_jobs=jobs)
            for outcome in chunk_result
        ]

    witnesses: List[ActiveWitness] = []
    violations: List[TransitionViolation] = []
    for eid, outcome in enumerate(outcomes):
        if isinstance(outcome, ActiveWitnessData):
            if keep_witnesses:
                witnesses.append(
                    ActiveWitness(
                        transition=graph.to_transition(transitions[eid]),
                        level=outcome.level,
                        subject=outcome.subject,
                        reason=outcome.reason,
                    )
                )
        else:
            violations.append(
                TransitionViolation(
                    transition=graph.to_transition(transitions[eid]),
                    source_stack=stacks[src[eid]],
                    target_stack=stacks[dst[eid]],
                    failures=outcome,
                )
            )

    return MeasureCheckResult(
        witnesses=witnesses,
        violations=violations,
        transitions_checked=len(transitions),
        complete=graph.complete,
        order_well_founded=order.is_well_founded(),
    )


@dataclass
class StreamingCheckResult(MeasureCheckResult):
    """A :class:`MeasureCheckResult` with streaming accounting.

    ``stopped_early`` — whether the check cut exploration short on
    reaching ``max_violations``; ``states_explored`` — states discovered
    when the run ended (with a stop, this is the states-until-violation
    figure the engine footer reports).  When a streaming check runs to
    completion every inherited field is bit-identical to
    :func:`check_measure` on the materialized graph.
    """

    stopped_early: bool = False
    states_explored: int = 0


class _StreamingVerifier(ExplorationObserver):
    """Checks each source's verification conditions as its expansion closes.

    Buffers the in-flight source's transitions (they arrive contiguously)
    and flushes them — in transition order, through exactly the same
    level search and task construction as the materialized checker — when
    ``on_expanded`` declares them final.  A source truncated by the state
    budget never gets an ``on_expanded``, so its buffered transitions are
    discarded, matching the materialized path's frontier-source drop.
    """

    __slots__ = (
        "_system",
        "_assignment",
        "_order",
        "_keep",
        "_requirements",
        "_max_violations",
        "_states",
        "_stacks",
        "_enabled",
        "_demanded",
        "_pending",
        "witnesses",
        "violations",
        "checked",
        "stopped",
    )

    def __init__(
        self,
        system: TransitionSystem,
        assignment: StackAssignment,
        keep_witnesses: bool,
        requirements,
        max_violations: int | None,
    ) -> None:
        self._system = system
        self._assignment = assignment
        self._order = assignment.order
        self._keep = keep_witnesses
        self._requirements = (
            tuple(requirements) if requirements is not None else None
        )
        self._max_violations = max_violations
        self._states: List = []
        self._stacks: List[Stack] = []
        self._enabled: List[frozenset | None] = []
        self._demanded: List[frozenset] = []
        self._pending: List[Tuple[int, CommandLabel, int]] = []
        self.witnesses: List[ActiveWitness] = []
        self.violations: List[TransitionViolation] = []
        self.checked = 0
        self.stopped = False

    def on_state(self, index: int, state, depth: int) -> None:
        self._states.append(state)
        stack = self._assignment(state)
        order = self._order
        for hypothesis in stack:
            if hypothesis.value is not None:
                order.check_member(hypothesis.value)
        self._stacks.append(stack)
        self._enabled.append(None)
        if self._requirements is not None:
            self._demanded.append(
                frozenset(
                    r.name for r in self._requirements if r.enabled_at(state)
                )
            )

    def on_transition(self, source: int, command, target: int) -> None:
        pending = self._pending
        if pending and pending[0][0] != source:
            # The previous source hit the state budget mid-expansion; its
            # transitions will be dropped from the graph, so drop the
            # buffered copies unchecked too.
            pending.clear()
        pending.append((source, command, target))

    @property
    def wants_enabled_masks(self) -> bool:
        """Whether the explorer should prime per-round enabled masks.

        Under command fairness every flush needs the enabled sets of both
        endpoints; the sharded value-plane explorer batches those per
        round (workers return guards-only masks for their successor
        deltas over shm) and hands them in through
        :meth:`prime_enabled`, replacing the serial per-state
        re-derivation of :meth:`_enabled_of`.  Generalized requirements
        use demanded sets instead, so masks would be dead weight there.
        """
        return self._requirements is None

    def prime_enabled(self, index: int, enabled: frozenset) -> None:
        """Record a batch-derived enabled set for an unflushed state.

        Guards are pure, so a primed set equals what :meth:`_enabled_of`
        would have derived serially — priming changes which code computes
        the mask, never its value, and never the flush order or stop
        points.  An already-known state keeps its recorded set.
        """
        if self._enabled[index] is None:
            self._enabled[index] = enabled
            telemetry.count("stream.mask_primes")

    def _enabled_of(self, index: int) -> frozenset:
        enabled = self._enabled[index]
        if enabled is None:
            # The target is not expanded yet; ask the system directly.
            # ``TransitionSystem.expand`` answers enabledness and posts
            # from the same guards, so this equals the mask the
            # materialized graph would record (guards-only for frontier
            # states, expansion-derived otherwise).
            enabled = frozenset(self._system.enabled(self._states[index]))
            self._enabled[index] = enabled
            telemetry.count("stream.mask_derived_serially")
        return enabled

    def on_expanded(self, index: int, enabled: frozenset) -> None:
        self._enabled[index] = enabled
        pending = self._pending
        if pending and pending[0][0] != index:
            pending.clear()
        if not pending:
            return
        traced = telemetry.enabled()
        order = self._order
        requirements = self._requirements
        states = self._states
        stacks = self._stacks
        for source, command, target in pending:
            if requirements is None:
                invalidated = frozenset((command,))
                active = self._enabled_of(source) | self._enabled_of(target)
            else:
                source_state = states[source]
                target_state = states[target]
                invalidated = frozenset(
                    r.name
                    for r in requirements
                    if r.fulfilled_by(source_state, command, target_state)
                )
                active = self._demanded[source] | self._demanded[target]
            data, failures = find_active_level_general(
                stacks[source], stacks[target], invalidated, active, order
            )
            self.checked += 1
            if traced:
                _count_outcome(data, failures)
            if data is not None:
                if self._keep:
                    self.witnesses.append(
                        ActiveWitness(
                            transition=Transition(
                                states[source], command, states[target]
                            ),
                            level=data.level,
                            subject=data.subject,
                            reason=data.reason,
                        )
                    )
            else:
                self.violations.append(
                    TransitionViolation(
                        transition=Transition(
                            states[source], command, states[target]
                        ),
                        source_stack=stacks[source],
                        target_stack=stacks[target],
                        failures=tuple(failures),
                    )
                )
                if (
                    self._max_violations is not None
                    and len(self.violations) >= self._max_violations
                ):
                    pending.clear()
                    self.stopped = True
                    raise StopExploration(
                        f"reached max_violations={self._max_violations}"
                    )
        pending.clear()


def check_measure_streaming(
    system: TransitionSystem,
    assignment: StackAssignment,
    max_states: int | None = None,
    max_depth: int | None = None,
    keep_witnesses: bool = True,
    requirements=None,
    max_violations: int | None = None,
    n_jobs: int | None = None,
) -> StreamingCheckResult:
    """Verify the conditions on the fly, as the frontier expands.

    The verification conditions are local to one transition, so they can
    be checked the moment a source state finishes expanding — no
    materialized graph, no per-transition task list.  Run to completion
    (``max_violations=None``) the verdict — witnesses, violations,
    contents *and* order — is bit-identical to
    ``check_measure(explore(system, ...), assignment, ...)``; with
    ``max_violations=k`` the check stops (and cancels exploration) as
    soon as ``k`` violations are found, and the violation list is the
    first ``k`` of the materialized run.

    ``n_jobs`` shards the *exploration* (the VC checks run serially in
    the coordinator as each state closes); the result is identical for
    any job count.  Pass ``keep_witnesses=False`` for O(states) memory —
    the default keeps per-transition witnesses like the materialized
    checker does.
    """
    with telemetry.span(
        "verify", streaming=True, jobs=n_jobs, max_violations=max_violations
    ) as sp:
        verifier = _StreamingVerifier(
            system, assignment, keep_witnesses, requirements, max_violations
        )
        graph = explore(
            system,
            max_states=max_states,
            max_depth=max_depth,
            n_jobs=n_jobs,
            observer=verifier,
        )
        if telemetry.enabled():
            telemetry.count("stream.checks")
            telemetry.count("stream.transitions_checked", verifier.checked)
            telemetry.gauge("stream.states_at_verdict", len(graph))
        sp.set("violations", len(verifier.violations))
        sp.set("stopped_early", verifier.stopped)
    result = StreamingCheckResult(
        witnesses=verifier.witnesses,
        violations=verifier.violations,
        transitions_checked=verifier.checked,
        complete=graph.complete,
        order_well_founded=assignment.order.is_well_founded(),
        stopped_early=verifier.stopped,
        states_explored=len(graph),
    )
    events.emit(
        events.VERIFY_VERDICT,
        ok=result.ok,
        violations=len(result.violations),
        transitions_checked=result.transitions_checked,
        complete=result.complete,
        streaming=True,
        stopped_early=result.stopped_early,
    )
    return result
