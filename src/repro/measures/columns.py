"""Packed stack columns: a whole ``StackAssignment`` as flat ``int64`` rows.

The materialized checker used to build two :class:`Stack` objects and two
frozensets per transition.  This module packs the per-state stacks once
into four parallel columns so the level search
(:func:`repro.measures.verification.find_active_level_general`) becomes
integer arithmetic over column slices:

``offsets``
    ``n_states + 1`` entries; state ``i``'s hypotheses occupy rows
    ``offsets[i]:offsets[i+1]`` (bottom-up, so row ``offsets[i]`` is the
    T-hypothesis).
``subject``
    per row, the hypothesis subject as an integer: ``-1`` for the
    T-hypothesis, the :class:`~repro.engine.packed.CommandTable` id for a
    command subject (so (V_NonI) is ``subject == cmd[eid]`` and the
    enabled half of (V_A) is a bit test against the state's enabled
    mask), and ``n_commands + k`` for the ``k``-th interned stray subject
    (never equal to a command id or an enabled bit — strays can neither
    be invalidated nor enabled under command fairness).
``value_id``
    per row, the measure value interned by ``==`` (``-1`` for a bare
    hypothesis).  Two rows carry equal values iff their ids are equal —
    exactly the entry-wise equality (V_NoC)'s
    :func:`~repro.measures.stack.stacks_equal_below` tests, because
    :class:`~repro.measures.hypotheses.Hypothesis` equality is ``==`` on
    the value.  (Like :meth:`WellFoundedOrder.ge`, this assumes ``≻``
    respects ``==``; every library order does.)
``rank``
    per row, an integer with ``order.gt(a, b)  ⟺  rank(a) > rank(b)``
    for all encoded values — so the decrease half of (V_A) is one
    integer compare.  Ranks come from the identity for
    :class:`~repro.wf.naturals.Naturals` / ``BoundedNaturals`` (where
    ``gt`` *is* ``>``), or from exhaustively verified dominance counts
    for any other order with at most :data:`RANK_CAP` distinct values;
    when neither construction is exact the encode **refuses** (returns a
    fallback reason) and the checker keeps the tuple path.  Exactness is
    all-or-nothing: the columnar kernel never approximates the order.

All four columns are ``array('q')`` and publish through
:class:`repro.engine.shm.ShmArena` unchanged, so pool workers receive a
manifest and an edge range instead of pickled stacks.
"""

from __future__ import annotations

from array import array
from typing import Dict, List, Optional, Sequence, Tuple

from repro.engine.packed import CommandTable
from repro.measures.hypotheses import Hypothesis, TERMINATION
from repro.measures.stack import Stack
from repro.wf.base import WellFoundedOrder
from repro.wf.naturals import BoundedNaturals, Naturals

#: Most distinct measure values for which the dominance-count rank table
#: is attempted (the construction verifies all O(cap²) pairs).
RANK_CAP = 512

#: Ranks must survive the trip through an ``int64`` shared-memory word.
_RANK_LIMIT = 1 << 62

#: Subject sentinel for the T-hypothesis.
T_SUBJECT = -1

#: Value sentinel for a bare hypothesis (no measure attached).
BARE_VALUE = -1


class StackColumns:
    """The packed form of one assignment over one graph's states."""

    __slots__ = (
        "offsets",
        "subject",
        "value_id",
        "rank",
        "values",
        "stray_labels",
        "n_commands",
    )

    def __init__(
        self,
        offsets: array,
        subject: array,
        value_id: array,
        rank: array,
        values: List[object],
        stray_labels: List[str],
        n_commands: int,
    ) -> None:
        self.offsets = offsets
        self.subject = subject
        self.value_id = value_id
        self.rank = rank
        #: Interned measure values, decode-side only (workers never see them).
        self.values = values
        #: Interned non-command, non-T subjects, decode-side only.
        self.stray_labels = stray_labels
        self.n_commands = n_commands

    @property
    def n_states(self) -> int:
        return len(self.offsets) - 1

    def decode_stack(self, index: int, commands: CommandTable) -> Stack:
        """Rebuild state ``index``'s :class:`Stack` (tests and diagnostics).

        Round-trip identity with the encoded stacks is a property test:
        the codec must lose nothing the level search observes.
        """
        lo, hi = self.offsets[index], self.offsets[index + 1]
        entries = []
        for row in range(lo, hi):
            sid = self.subject[row]
            if sid == T_SUBJECT:
                label = TERMINATION
            elif sid < self.n_commands:
                label = commands.label_of(sid)
            else:
                label = self.stray_labels[sid - self.n_commands]
            vid = self.value_id[row]
            value = None if vid == BARE_VALUE else self.values[vid]
            entries.append(Hypothesis(label, value))
        return Stack(entries)


def _rank_table(
    order: WellFoundedOrder, values: Sequence[object]
) -> Optional[List[int]]:
    """Exact integer ranks for ``values`` under ``order``, or ``None``.

    Naturals-like orders rank by the value itself (``gt`` is literally
    ``>`` there).  Otherwise a dominance count ``r(a) = |{b : a ≻ b}|``
    is computed and verified against ``gt`` on **every** ordered pair —
    the table is used only if ``gt(a, b) ⟺ r(a) > r(b)`` holds
    exhaustively, so a partial order that the counts cannot linearise
    falls back rather than mis-deciding a single (V_A) test.
    """
    if isinstance(order, (Naturals, BoundedNaturals)):
        ranks: List[int] = []
        for value in values:
            if not isinstance(value, int) or not -_RANK_LIMIT < value < _RANK_LIMIT:
                return None
            ranks.append(value)
        return ranks
    k = len(values)
    if k > RANK_CAP:
        return None
    try:
        dominates = [
            [order.gt(a, b) for b in values] for a in values
        ]
    except Exception:
        return None
    ranks = [sum(row) for row in dominates]
    for i in range(k):
        for j in range(k):
            if dominates[i][j] != (ranks[i] > ranks[j]):
                return None
    return ranks


def encode_stacks(
    stacks: Sequence[Stack],
    commands: CommandTable,
    order: WellFoundedOrder,
) -> Tuple[Optional[StackColumns], Optional[str]]:
    """Pack ``stacks`` into columns; ``(columns, None)`` or ``(None, reason)``.

    Fallback reasons (telemetry counter suffixes):

    * ``command_width`` — more than 63 commands; enabled masks would not
      fit the signed shm word the kernel bit-tests.
    * ``t_label`` — a command is literally labelled ``"T"``; the sentinel
      encoding could not tell it from the T-hypothesis under (V_NonI).
    * ``rank`` — no exact integer ranking of the measure values exists
      (order too large, partial beyond dominance counts, or values
      outside the ``int64`` range).
    """
    n_commands = len(commands)
    if n_commands > 63:
        return None, "command_width"
    command_ids = {label: k for k, label in enumerate(commands.labels)}
    if TERMINATION in command_ids:
        return None, "t_label"

    offsets = array("q", [0])
    subject = array("q")
    value_id = array("q")
    values: List[object] = []
    value_ids: Dict[object, int] = {}
    stray_labels: List[str] = []
    stray_ids: Dict[str, int] = {}

    total = 0
    for stack in stacks:
        for hypothesis in stack:
            label = hypothesis.subject
            if label == TERMINATION:
                sid = T_SUBJECT
            else:
                sid = command_ids.get(label)
                if sid is None:
                    sid = stray_ids.get(label)
                    if sid is None:
                        sid = n_commands + len(stray_labels)
                        stray_ids[label] = sid
                        stray_labels.append(label)
            subject.append(sid)
            value = hypothesis.value
            if value is None:
                value_id.append(BARE_VALUE)
            else:
                vid = value_ids.get(value)
                if vid is None:
                    vid = len(values)
                    value_ids[value] = vid
                    values.append(value)
                value_id.append(vid)
        total += stack.height
        offsets.append(total)

    ranks = _rank_table(order, values)
    if ranks is None:
        return None, "rank"
    rank = array("q", (0 if vid == BARE_VALUE else ranks[vid] for vid in value_id))
    columns = StackColumns(
        offsets, subject, value_id, rank, values, stray_labels, n_commands
    )
    return columns, None


#: Aggregate outcome counters of one kernel run, in this order:
#: ``(transitions, witnessed, violations, active_enabled, active_decrease,
#: failed_v_noc, failed_v_noni, failed_v_a, failed_other)`` — the exact
#: totals :func:`repro.measures.verification._count_outcome` would have
#: produced transition by transition.
PlaneCounts = Tuple[int, int, int, int, int, int, int, int, int]


def check_chunk_columns(
    soff,
    ssub,
    sval,
    srank,
    src,
    cmd,
    dst,
    emask,
    lo: int,
    hi: int,
    n_commands: int,
    keep_witnesses: bool,
) -> Tuple[Optional[array], List[int], PlaneCounts]:
    """The batched level search over transitions ``lo..hi-1``.

    All column arguments are flat int sequences (local arrays, shm views
    or mmapped graph-store chunks — the kernel never knows).  Returns
    ``(witness_words, violations, counts)``:

    * ``witness_words[e - lo]`` is ``(level << 1) | reason`` (reason 0 =
      enabled, 1 = decrease) for a witnessed transition and ``-1``
      otherwise; ``None`` when ``keep_witnesses`` is false (the caller
      needs only the violation list).
    * ``violations`` — absolute eids of unwitnessed transitions, in eid
      order; the caller re-runs the object-level search on just these to
      materialize bit-identical failure details.
    * ``counts`` — :data:`PlaneCounts` telemetry totals, accumulated
      branch-for-branch with the tuple path (V_A failures before a
      witness included).

    The level-by-level control flow mirrors
    :func:`~repro.measures.verification.find_active_level_general`
    exactly: subject change, (V_NoC) and (V_NonI) break the search;
    (V_A) failures record and continue; the first witnessing level
    returns.  The (V_NoC) prefix test is incremental — entries at levels
    below the current one were already compared, so one ``value_id``
    equality per surviving level suffices.
    """
    words = array("q", bytes(8 * (hi - lo))) if keep_witnesses else None
    violations: List[int] = []
    transitions = hi - lo
    witnessed = 0
    n_enabled = 0
    n_decrease = 0
    f_noc = 0
    f_noni = 0
    f_a = 0
    f_other = 0

    for eid in range(lo, hi):
        s = src[eid]
        t = dst[eid]
        sb = soff[s]
        tb = soff[t]
        max_level = min(soff[s + 1] - sb, soff[t + 1] - tb)
        executed = cmd[eid]
        union = emask[s] | emask[t]
        word = -1
        prefix_equal = True
        for level in range(max_level):
            bsub = ssub[sb + level]
            if bsub != ssub[tb + level]:
                f_noc += 1  # "changes subject" counts as (V_NoC)
                break
            if not prefix_equal:
                f_noc += 1
                break
            if bsub == executed:
                f_noni += 1
                break
            if 0 <= bsub < n_commands and (union >> bsub) & 1:
                word = (level << 1) | 0
                n_enabled += 1
                break
            bval = sval[sb + level]
            aval = sval[tb + level]
            if bval != BARE_VALUE and aval != BARE_VALUE:
                if srank[sb + level] > srank[tb + level]:
                    word = (level << 1) | 1
                    n_decrease += 1
                    break
                f_a += 1
            else:
                f_a += 1
            if bval != aval:
                prefix_equal = False
        if word >= 0:
            witnessed += 1
            if keep_witnesses:
                words[eid - lo] = word
        else:
            if max_level == 0:
                f_other += 1  # "empty stack overlap"
            violations.append(eid)
            if keep_witnesses:
                words[eid - lo] = -1

    counts = (
        transitions,
        witnessed,
        len(violations),
        n_enabled,
        n_decrease,
        f_noc,
        f_noni,
        f_a,
        f_other,
    )
    return words, violations, counts
