"""Justice measures: stack assertions for termination under *weak* fairness.

Weak fairness (justice, [LPS81]) starves only commands that are enabled
*continuously*; the verification conditions must change accordingly:

* **(V_A-j)** the active justice hypothesis ``ℓ`` either strictly decreases
  its measure, or keeps it unchanged with ``ℓ`` enabled in **both** ``p``
  and ``p'`` (a continuity step) — a plain "enabled somewhere" would be
  unsound, because justice tolerates intermittent enabledness;
* **(V_Persist)** every justice hypothesis *below* the active level — whose
  measure (V_NoC) pins — must also be enabled at both endpoints.  Without
  it, a run could interleave steps where a lower hypothesis's command is
  disabled, breaking the continuity the soundness argument needs.
* (V_NonI) and (V_NoC) are unchanged.

Soundness mirrors Theorem 1: on an infinite run the liminf active level
``κ`` hosts a fixed hypothesis ``ℓ``; its measure never increases, strict
decreases must stop (well-foundedness), so eventually every step keeps it
unchanged — and then (V_A-j)/(V_Persist) force ``ℓ`` enabled at every step:
continuously enabled, never executed (V_NonI): weakly unfair.

Completeness for finite-state systems is constructive and reveals a
structural contrast with strong fairness: a command enabled *everywhere* in
an SCC but executed nowhere inside it always exists when no weakly fair
cycle does, and it serves as the hypothesis for the whole SCC — **justice
measures never need stacks taller than 2** (T plus one hypothesis), whereas
strong fairness requires hierarchies of unbounded height (the
``nested_rings`` family).  Experiment X6 measures exactly this.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.fairness.checker import FairCycle, find_weakly_fair_cycle
from repro.measures.assignment import StackAssignment
from repro.measures.hypotheses import TERMINATION, Hypothesis
from repro.measures.stack import Stack, stacks_equal_below
from repro.measures.verification import (
    ActiveWitness,
    ActiveWitnessData,
    LevelFailure,
    MeasureCheckResult,
    TransitionViolation,
)
from repro.ts.explore import ReachableGraph
from repro.ts.graph import decompose, internal_transitions
from repro.wf.base import WellFoundedOrder
from repro.wf.naturals import NATURALS


class NotWeaklyTerminatingError(ValueError):
    """A weakly fair cycle exists; no justice measure can exist."""

    def __init__(self, message: str, witness: Optional[FairCycle]) -> None:
        super().__init__(message)
        self.witness = witness


def find_active_level_justice(
    source_stack: Stack,
    target_stack: Stack,
    executed: str,
    enabled_source: frozenset,
    enabled_target: frozenset,
    order: WellFoundedOrder,
) -> Tuple[Optional[ActiveWitnessData], List[LevelFailure]]:
    """The justice variant of the verification-condition search."""
    failures: List[LevelFailure] = []
    continuously_enabled = enabled_source & enabled_target
    max_level = min(source_stack.height, target_stack.height)
    for level in range(max_level):
        before = source_stack.level(level)
        after = target_stack.level(level)
        if before.subject != after.subject:
            failures.append(
                LevelFailure(
                    level,
                    before.subject,
                    f"hypothesis changes subject ({before.subject!r} → "
                    f"{after.subject!r})",
                )
            )
            break
        subject = before.subject
        if not stacks_equal_below(source_stack, target_stack, level):
            failures.append(
                LevelFailure(level, subject, "stack changes below this level (V_NoC)")
            )
            break
        # (V_NonI).
        if any(h.subject == executed for h in source_stack.take(level + 1)):
            failures.append(
                LevelFailure(
                    level,
                    subject,
                    f"the executed command {executed!r} appears at or below "
                    "this level (V_NonI)",
                )
            )
            break
        # (V_Persist): justice hypotheses strictly below must be enabled at
        # both endpoints (their measures are pinned by V_NoC).
        broken = [
            h.subject
            for h in source_stack.below(level)
            if not h.is_termination and h.subject not in continuously_enabled
        ]
        if broken:
            failures.append(
                LevelFailure(
                    level,
                    subject,
                    f"lower justice hypothesis {broken[0]!r} is not enabled "
                    "at both endpoints (V_Persist)",
                )
            )
            continue
        # (V_A-j).
        if subject == TERMINATION:
            if order.gt(before.value, after.value):
                return ActiveWitnessData(level, subject, "decrease"), failures
            failures.append(
                LevelFailure(
                    level,
                    subject,
                    f"T-measure does not decrease: {before.value} ⊁ "
                    f"{after.value} (V_A-j)",
                )
            )
            continue
        decreased = (
            before.value is not None
            and after.value is not None
            and order.gt(before.value, after.value)
        )
        if decreased:
            return ActiveWitnessData(level, subject, "decrease"), failures
        unchanged = before.value == after.value
        if unchanged and subject in continuously_enabled:
            return ActiveWitnessData(level, subject, "continuity"), failures
        failures.append(
            LevelFailure(
                level,
                subject,
                "no strict decrease, and no continuity step (enabled at "
                "both endpoints with unchanged measure) (V_A-j)",
            )
        )
    if max_level == 0:
        failures.append(LevelFailure(0, None, "empty stack overlap"))
    return None, failures


def check_justice_measure(
    graph: ReachableGraph,
    assignment: StackAssignment,
) -> MeasureCheckResult:
    """Check the justice verification conditions on every transition."""
    order = assignment.order
    stacks: List[Stack] = []
    for index in range(len(graph)):
        stack = assignment(graph.state_of(index))
        for hypothesis in stack:
            if hypothesis.value is not None:
                order.check_member(hypothesis.value)
        stacks.append(stack)

    witnesses: List[ActiveWitness] = []
    violations: List[TransitionViolation] = []
    for transition in graph.transitions:
        data, failures = find_active_level_justice(
            stacks[transition.source],
            stacks[transition.target],
            transition.command,
            graph.enabled_at(transition.source),
            graph.enabled_at(transition.target),
            order,
        )
        plain = graph.to_transition(transition)
        if data is None:
            violations.append(
                TransitionViolation(
                    transition=plain,
                    source_stack=stacks[transition.source],
                    target_stack=stacks[transition.target],
                    failures=tuple(failures),
                )
            )
        else:
            witnesses.append(
                ActiveWitness(
                    transition=plain,
                    level=data.level,
                    subject=data.subject,
                    reason=data.reason,
                )
            )
    return MeasureCheckResult(
        witnesses=witnesses,
        violations=violations,
        transitions_checked=len(graph.transitions),
        complete=graph.complete,
        order_well_founded=order.is_well_founded(),
    )


@dataclass
class JusticeSynthesis:
    """A synthesised justice measure (stacks never taller than 2)."""

    graph: ReachableGraph
    stacks: Dict[int, Stack]
    helpful_by_component: Dict[int, str]

    def assignment(self) -> StackAssignment:
        """The measure as a checkable assignment."""
        table = {
            self.graph.state_of(index): stack
            for index, stack in self.stacks.items()
        }
        return StackAssignment.from_dict(
            table, NATURALS, description="synthesised justice measure"
        )

    def max_stack_height(self) -> int:
        """Always ≤ 2 — justice needs no hypothesis hierarchy."""
        return max(stack.height for stack in self.stacks.values())


def synthesize_justice_measure(graph: ReachableGraph) -> JusticeSynthesis:
    """Synthesise a justice measure over a complete finite graph.

    For each non-trivial SCC, pick a command enabled at *every* state of
    the SCC but executed on none of its internal transitions (one exists
    iff no weakly fair cycle does); it becomes the SCC's single hypothesis.
    Raises :class:`NotWeaklyTerminatingError` with a weakly-fair-cycle
    witness otherwise.
    """
    if not graph.complete:
        raise ValueError("justice synthesis needs the complete reachable graph")
    decomposition = decompose(graph)
    stacks: Dict[int, Stack] = {}
    helpful_by_component: Dict[int, str] = {}
    command_order = {c: i for i, c in enumerate(graph.system.commands())}
    for position, component in enumerate(decomposition.components):
        internal = internal_transitions(graph, component)
        base = Hypothesis(TERMINATION, position)
        if not internal:
            for index in component:
                stacks[index] = Stack([base])
            continue
        everywhere = frozenset.intersection(
            *(graph.enabled_at(i) for i in component)
        )
        executed = frozenset(t.command for t in internal)
        candidates = sorted(everywhere - executed, key=lambda c: command_order[c])
        if not candidates:
            witness = find_weakly_fair_cycle(graph)
            raise NotWeaklyTerminatingError(
                f"SCC of {len(component)} states executes every command "
                "enabled throughout it — a weakly fair cycle exists, so the "
                "program does not terminate under justice",
                witness,
            )
        helpful = candidates[0]
        helpful_by_component[position] = helpful
        for index in component:
            stacks[index] = Stack([base, Hypothesis(helpful, 0)])
    return JusticeSynthesis(
        graph=graph, stacks=stacks, helpful_by_component=helpful_by_component
    )
