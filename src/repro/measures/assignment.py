"""Stack assignments: state ↦ stack, together with the measure domain.

A stack assignment becomes a *fair termination measure* once the
verification conditions hold on every transition
(:mod:`repro.measures.verification`); this module only packages the mapping
with its well-founded order and offers the common construction routes
(function, dict, compiled assertion).
"""

from __future__ import annotations

from typing import Callable, Dict, Mapping, Optional

from repro.measures.stack import Stack
from repro.ts.system import State
from repro.wf.base import WellFoundedOrder


class StackAssignment:
    """A mapping ``μ`` from program states to stacks, valued in ``(W, ≻)``."""

    def __init__(
        self,
        mapping: Callable[[State], Stack],
        order: WellFoundedOrder,
        description: str = "",
    ) -> None:
        self._mapping = mapping
        self._order = order
        self._description = description

    @property
    def order(self) -> WellFoundedOrder:
        """The well-founded order the measure values live in."""
        return self._order

    @property
    def description(self) -> str:
        """Human-readable provenance (e.g. 'paper annotation of P3´')."""
        return self._description

    def __call__(self, state: State) -> Stack:
        stack = self._mapping(state)
        if not isinstance(stack, Stack):
            raise TypeError(
                f"stack assignment returned {type(stack).__name__}, not Stack, "
                f"for state {state!r}"
            )
        return stack

    def validate_values(self, state: State) -> None:
        """Check every measure value of ``μ(state)`` lies in ``W``."""
        for hypothesis in self(state):
            if hypothesis.value is not None:
                self._order.check_member(hypothesis.value)

    @staticmethod
    def from_dict(
        table: Mapping[State, Stack],
        order: WellFoundedOrder,
        description: str = "",
    ) -> "StackAssignment":
        """An assignment backed by an explicit table (finite regions)."""
        frozen: Dict[State, Stack] = dict(table)

        def lookup(state: State) -> Stack:
            try:
                return frozen[state]
            except KeyError:
                raise KeyError(
                    f"stack assignment has no entry for state {state!r}"
                ) from None

        return StackAssignment(lookup, order, description)

    def restricted(self, fallback: Optional[Callable[[State], Stack]]) -> "StackAssignment":
        """An assignment that defers to ``fallback`` on lookup failure."""
        if fallback is None:
            return self
        primary = self._mapping

        def combined(state: State) -> Stack:
            try:
                return primary(state)
            except KeyError:
                return fallback(state)

        return StackAssignment(combined, self._order, self._description)
