"""The stack-assertion language — annotating programs as the paper does.

A *stack assertion* attaches to the loop a stack of hypotheses whose
measures are expressions over the program variables.  ``P3'`` in the paper
is

.. code-block:: text

    ( la: z mod 117        )
    ( T:  max{y - x, 0}    )

and is written here as::

    StackAssertion.parse(["la: z mod 117", "T: max(y - x, 0)"])

listing hypotheses **top-down**, exactly as the paper displays them.  An
assertion may have several *cases* guarded by conditions, because a single
syntactic stack need not fit every region of the state space (the paper's
examples happen to need only one case; synthesised measures and richer
examples need more).  The first case whose condition holds provides the
stack; a default case (condition ``None``) should come last.

Measure expressions and conditions are written in the GCL expression
language (so "the assertion language contains predicate calculus" over the
program's variables, cf. Corollary 1) or, escape-hatch, as Python callables
on the state.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Any, Callable, List, Optional, Sequence, Tuple, Union

from repro.gcl.ast import Expr
from repro.gcl.errors import EvalError
from repro.gcl.eval import evaluate, evaluate_bool
from repro.gcl.parser import parse_expression
from repro.measures.assignment import StackAssignment
from repro.measures.hypotheses import TERMINATION, Hypothesis
from repro.measures.stack import Stack
from repro.ts.system import State
from repro.wf.base import WellFoundedOrder
from repro.wf.naturals import NATURALS

#: A measure/condition source: GCL text, a parsed expression, or a callable.
ExprLike = Union[str, Expr, Callable[[State], Any]]


def _compile_expr(source: ExprLike) -> Callable[[State], Any]:
    if callable(source) and not isinstance(source, Expr):
        return source
    expr = parse_expression(source) if isinstance(source, str) else source

    def run(state: State) -> Any:
        return evaluate(expr, state)

    return run


def _compile_condition(source: Optional[ExprLike]) -> Callable[[State], bool]:
    if source is None:
        return lambda state: True
    if callable(source) and not isinstance(source, Expr):
        return lambda state: bool(source(state))
    expr = parse_expression(source) if isinstance(source, str) else source

    def run(state: State) -> bool:
        return evaluate_bool(expr, state)

    return run


@dataclass(frozen=True)
class HypothesisSpec:
    """One line of an assertion: a subject and an optional measure expression."""

    subject: str
    measure: Optional[ExprLike] = None

    def __str__(self) -> str:
        if self.measure is None:
            return self.subject
        measure = self.measure if isinstance(self.measure, str) else "<fn>"
        return f"{self.subject}: {measure}"


_SPEC_PATTERN = re.compile(r"^\s*([A-Za-z_][A-Za-z0-9_]*)\s*(?::\s*(.+?))?\s*$")


def parse_hypothesis_spec(text: str) -> HypothesisSpec:
    """Parse ``"la: z mod 117"`` or bare ``"lb"`` into a spec."""
    match = _SPEC_PATTERN.match(text)
    if not match:
        raise ValueError(f"cannot parse hypothesis spec {text!r}")
    subject, measure = match.group(1), match.group(2)
    return HypothesisSpec(subject=subject, measure=measure)


@dataclass(frozen=True)
class StackCase:
    """A guarded stack: when ``condition`` holds, the stack is ``hypotheses``
    (top-down, T last)."""

    hypotheses: Tuple[HypothesisSpec, ...]
    condition: Optional[ExprLike] = None

    def __post_init__(self) -> None:
        if not self.hypotheses:
            raise ValueError("a stack case needs at least the T-hypothesis")
        if self.hypotheses[-1].subject != TERMINATION:
            raise ValueError(
                "hypotheses are listed top-down; the last one must be the "
                f"T-hypothesis, got {self.hypotheses[-1]}"
            )
        if self.hypotheses[-1].measure is None:
            raise ValueError("the T-hypothesis needs a measure expression")


class StackAssertion:
    """A complete annotation: cases plus the measure domain ``(W, ≻)``."""

    def __init__(
        self,
        cases: Sequence[StackCase],
        order: WellFoundedOrder = NATURALS,
        description: str = "",
    ) -> None:
        if not cases:
            raise ValueError("a stack assertion needs at least one case")
        self._cases = tuple(cases)
        self._order = order
        self._description = description

    @staticmethod
    def parse(
        lines: Sequence[Union[str, Tuple[str, ExprLike]]],
        order: WellFoundedOrder = NATURALS,
        condition: Optional[ExprLike] = None,
        description: str = "",
    ) -> "StackAssertion":
        """Single-case assertion from top-down hypothesis lines.

        Each line is either a string ``"subject[: measure]"`` or a tuple
        ``(subject, measure)`` with a callable/pre-parsed measure.
        """
        specs: List[HypothesisSpec] = []
        for line in lines:
            if isinstance(line, str):
                specs.append(parse_hypothesis_spec(line))
            else:
                subject, measure = line
                specs.append(HypothesisSpec(subject=subject, measure=measure))
        case = StackCase(hypotheses=tuple(specs), condition=condition)
        return StackAssertion([case], order=order, description=description)

    @property
    def cases(self) -> Tuple[StackCase, ...]:
        """The guarded cases, in priority order."""
        return self._cases

    @property
    def order(self) -> WellFoundedOrder:
        """The declared measure domain."""
        return self._order

    @property
    def description(self) -> str:
        """Human-readable provenance."""
        return self._description

    def compile(self) -> StackAssignment:
        """Compile to an executable :class:`StackAssignment`.

        Expressions are parsed once; evaluation failures surface as
        :class:`~repro.gcl.errors.EvalError` with the state in the message.
        """
        compiled: List[Tuple[Callable[[State], bool], List[Tuple[str, Optional[Callable]]]]] = []
        for case in self._cases:
            condition = _compile_condition(case.condition)
            hypotheses: List[Tuple[str, Optional[Callable]]] = []
            for spec in case.hypotheses:
                measure = None if spec.measure is None else _compile_expr(spec.measure)
                hypotheses.append((spec.subject, measure))
            compiled.append((condition, hypotheses))

        order = self._order

        def assign(state: State) -> Stack:
            for condition, hypotheses in compiled:
                if not condition(state):
                    continue
                entries: List[Hypothesis] = []
                for subject, measure in hypotheses:
                    if measure is None:
                        entries.append(Hypothesis(subject))
                    else:
                        value = measure(state)
                        if isinstance(value, bool):
                            raise EvalError(
                                f"measure for {subject!r} evaluated to a "
                                f"boolean at {state!r}; measures are "
                                "well-founded-order values"
                            )
                        entries.append(Hypothesis(subject, value))
                return Stack.top_down(entries)
            raise EvalError(f"no assertion case applies to state {state!r}")

        return StackAssignment(assign, order, self._description)

    def render(self) -> str:
        """Paper-style rendering of the assertion (top-down lines)."""
        blocks = []
        for case in self._cases:
            header = ""
            if case.condition is not None:
                condition = (
                    case.condition if isinstance(case.condition, str) else "<fn>"
                )
                header = f"when {condition}:\n"
            body = "\n".join(f"  ( {spec} )" for spec in case.hypotheses)
            blocks.append(header + body)
        return "\n".join(blocks)
