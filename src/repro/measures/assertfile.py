"""Assertion files: stack assertions as plain text, for the CLI.

The format mirrors the paper's display — hypotheses top-down, T last — and
supports case splits and a declared measure domain:

.. code-block:: text

    # P4': the paper's annotation.
    order naturals
    case:
        lb
        la: z mod 117
        T: max(y - x, 0)

Grammar (line-oriented; ``#`` comments; blank lines ignored):

* ``order naturals`` | ``order naturals(<bound>)`` — optional, first;
* ``case <gcl-boolean-expression>:`` starts a guarded case;
  ``case:`` starts the default case (use it last);
* every other line is a hypothesis ``subject[: gcl-expression]``; within a
  case they read top-down, so the last one must be ``T: <expression>``.

A file with no ``case`` header is a single default case.
"""

from __future__ import annotations

import re
from typing import List, Optional, Tuple

from repro.measures.assertions import (
    HypothesisSpec,
    StackAssertion,
    StackCase,
    parse_hypothesis_spec,
)
from repro.wf.base import WellFoundedOrder
from repro.wf.naturals import NATURALS, BoundedNaturals


class AssertionFileError(ValueError):
    """A malformed assertion file; the message carries the line number."""


_ORDER_PATTERN = re.compile(
    r"^order\s+(?P<name>[a-z_]+)(?:\s*\(\s*(?P<arg>\d+)\s*\))?$"
)
_CASE_PATTERN = re.compile(r"^case(?:\s+(?P<condition>.*?))?\s*:$")


def _parse_order(name: str, arg: Optional[str], line_number: int) -> WellFoundedOrder:
    if name == "naturals":
        if arg is None:
            return NATURALS
        return BoundedNaturals(int(arg))
    raise AssertionFileError(
        f"line {line_number}: unknown order {name!r} "
        "(assertion files support 'naturals' and 'naturals(<bound>)'; "
        "richer domains need the Python API)"
    )


def parse_assertion_file(text: str, description: str = "") -> StackAssertion:
    """Parse assertion-file text into a :class:`StackAssertion`."""
    order: WellFoundedOrder = NATURALS
    order_seen = False
    cases: List[StackCase] = []
    current_condition: Optional[str] = None
    current_specs: List[HypothesisSpec] = []
    any_case_header = False
    anything_parsed = False

    def close_case(line_number: int) -> None:
        nonlocal current_specs
        if not current_specs:
            if any_case_header:
                raise AssertionFileError(
                    f"line {line_number}: case with no hypotheses"
                )
            return
        try:
            cases.append(
                StackCase(
                    hypotheses=tuple(current_specs),
                    condition=current_condition,
                )
            )
        except ValueError as error:
            raise AssertionFileError(f"line {line_number}: {error}") from None
        current_specs = []

    lines = text.splitlines()
    for line_number, raw in enumerate(lines, start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        order_match = _ORDER_PATTERN.match(line)
        if order_match:
            if order_seen:
                raise AssertionFileError(
                    f"line {line_number}: duplicate order declaration"
                )
            if anything_parsed:
                raise AssertionFileError(
                    f"line {line_number}: the order declaration must come first"
                )
            order = _parse_order(
                order_match.group("name"), order_match.group("arg"), line_number
            )
            order_seen = True
            continue
        case_match = _CASE_PATTERN.match(line)
        if case_match:
            close_case(line_number)
            condition = case_match.group("condition")
            current_condition = condition if condition else None
            any_case_header = True
            anything_parsed = True
            continue
        try:
            current_specs.append(parse_hypothesis_spec(line))
        except ValueError as error:
            raise AssertionFileError(f"line {line_number}: {error}") from None
        anything_parsed = True

    close_case(len(lines) + 1)
    if not cases:
        raise AssertionFileError("assertion file declares no hypotheses")
    return StackAssertion(cases, order=order, description=description)


def load_assertion_file(path: str) -> StackAssertion:
    """Read and parse an assertion file from disk."""
    with open(path, "r", encoding="utf-8") as handle:
        return parse_assertion_file(handle.read(), description=path)
