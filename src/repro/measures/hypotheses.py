"""Progress hypotheses — the entries of a stack.

Section 4.1: "A progress hypothesis or α-hypothesis is either an unfairness
hypothesis, on the form ℓ or ℓ: w (with α = ℓ), or the T-hypothesis, on the
form T: w, where w is an element of a well-founded set (W, ≻)."

``Hypothesis`` is that definition.  The subject is a command label or the
distinguished :data:`TERMINATION` marker ``"T"``; the value is the measure
``w`` (``None`` for a bare unfairness hypothesis ``ℓ``, whose progress is
argued purely by enabledness).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

#: The subject of the termination hypothesis.  Command labels named "T"
#: would collide with it, so programs may not use it as a label.
TERMINATION = "T"


@dataclass(frozen=True)
class Hypothesis:
    """One progress hypothesis ``α`` or ``α : w``.

    * ``Hypothesis(TERMINATION, w)`` — the T-hypothesis: the program is ``w``
      away from termination;
    * ``Hypothesis("la", w)`` — the ℓa-hypothesis with a progress measure:
      the program is ``w`` away from a state where ``la`` is enabled;
    * ``Hypothesis("la")`` — the bare ℓa-hypothesis: progress towards
      executing ``la`` unfairly is argued by ``la`` being enabled.
    """

    subject: str
    value: Optional[Any] = None

    def __post_init__(self) -> None:
        if not self.subject:
            raise ValueError("hypothesis subject must be a non-empty label")
        if self.subject == TERMINATION and self.value is None:
            raise ValueError("the T-hypothesis always carries a measure value")

    @property
    def is_termination(self) -> bool:
        """Whether this is the T-hypothesis."""
        return self.subject == TERMINATION

    @property
    def has_measure(self) -> bool:
        """Whether a progress-measure value is attached."""
        return self.value is not None

    def with_value(self, value: Any) -> "Hypothesis":
        """The same hypothesis with a (new) measure value."""
        return Hypothesis(self.subject, value)

    def __str__(self) -> str:
        if self.value is None:
            return self.subject
        return f"{self.subject}: {self.value}"
