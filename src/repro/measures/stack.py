"""Stacks of progress hypotheses.

"A stack assignment is a mapping that maps each program state p to a list
μ(p) of progress hypotheses such that the T-hypothesis is at level 0, i.e.
at the bottom.  (It can be assumed that all the hypotheses are different,
i.e. there is at most one ℓ-hypothesis in μ(p) for each ℓ.)"

:class:`Stack` enforces exactly those invariants.  Levels count from the
bottom: level 0 is the T-hypothesis; the paper's display convention is
top-down, which :meth:`Stack.render` follows.
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator, Optional, Sequence, Tuple

from repro.measures.hypotheses import Hypothesis


class Stack:
    """An immutable stack of distinct hypotheses with ``T : w`` at level 0."""

    __slots__ = ("_entries", "_levels", "_hash")

    def __init__(self, entries: Iterable[Hypothesis]) -> None:
        entries = tuple(entries)
        if not entries:
            raise ValueError("a stack must contain at least the T-hypothesis")
        if not entries[0].is_termination:
            raise ValueError(
                f"level 0 must be the T-hypothesis, got {entries[0]}"
            )
        subjects = [h.subject for h in entries]
        if len(set(subjects)) != len(subjects):
            raise ValueError(f"duplicate hypotheses in stack: {subjects}")
        for hypothesis in entries[1:]:
            if hypothesis.is_termination:
                raise ValueError("the T-hypothesis may only appear at level 0")
        self._entries: Tuple[Hypothesis, ...] = entries
        self._levels = {h.subject: i for i, h in enumerate(entries)}
        self._hash = hash(entries)

    # -- construction helpers ------------------------------------------------

    @staticmethod
    def bottom_up(entries: Sequence[Hypothesis]) -> "Stack":
        """Build from bottom (T) to top — the internal order."""
        return Stack(entries)

    @staticmethod
    def top_down(entries: Sequence[Hypothesis]) -> "Stack":
        """Build from top to bottom — the paper's display order.

        ``Stack.top_down([Hypothesis('lb'), Hypothesis('la', 3),
        Hypothesis('T', 7)])`` is the paper's
        ``(lb / la: 3 / T: 7)``.
        """
        return Stack(tuple(reversed(tuple(entries))))

    # -- queries ---------------------------------------------------------------

    @property
    def entries(self) -> Tuple[Hypothesis, ...]:
        """Hypotheses bottom-up: ``entries[0]`` is ``T : w``."""
        return self._entries

    @property
    def height(self) -> int:
        """Number of hypotheses (≥ 1)."""
        return len(self._entries)

    def level(self, index: int) -> Hypothesis:
        """The hypothesis at ``index`` (0 = bottom)."""
        return self._entries[index]

    def level_of(self, subject: str) -> Optional[int]:
        """The level of the ``subject``-hypothesis, or ``None`` if absent."""
        return self._levels.get(subject)

    def measure(self, subject: str) -> Optional[Any]:
        """The ``α``-measure ``μ^α``: the value of the subject's hypothesis.

        ``None`` when the hypothesis is absent *or* bare; use
        :meth:`level_of` to distinguish.
        """
        level = self._levels.get(subject)
        if level is None:
            return None
        return self._entries[level].value

    def termination_measure(self) -> Any:
        """``μ^T`` — the value at level 0."""
        return self._entries[0].value

    def subjects(self) -> Tuple[str, ...]:
        """All subjects bottom-up, starting with ``T``."""
        return tuple(h.subject for h in self._entries)

    def below(self, level: int) -> Tuple[Hypothesis, ...]:
        """The entries strictly below ``level`` (levels ``0..level-1``)."""
        return self._entries[:level]

    def __iter__(self) -> Iterator[Hypothesis]:
        return iter(self._entries)

    def __len__(self) -> int:
        return len(self._entries)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Stack):
            return NotImplemented
        return self._entries == other._entries

    def __hash__(self) -> int:
        return self._hash

    # -- display ---------------------------------------------------------------

    def render(self) -> str:
        """Paper-style inline rendering, top hypothesis first.

        The example annotation of ``P4'`` renders as
        ``(lb / la: z mod 117 / T: max(y-x, 0))`` — a flattening of the
        paper's vertical fraction notation.
        """
        inner = " / ".join(str(h) for h in reversed(self._entries))
        return f"({inner})"

    def __repr__(self) -> str:
        return f"Stack{self.render()}"

    # -- functional updates (used by the completeness construction) --------------

    def replace(self, level: int, hypothesis: Hypothesis) -> "Stack":
        """A stack with the entry at ``level`` replaced."""
        entries = list(self._entries)
        entries[level] = hypothesis
        return Stack(entries)

    def take(self, count: int) -> Tuple[Hypothesis, ...]:
        """The lowest ``count`` entries (prefix)."""
        return self._entries[:count]


def stacks_equal_below(left: Stack, right: Stack, level: int) -> bool:
    """(V_NoC)'s core test: do the stacks agree strictly below ``level``?

    Agreement is entry-wise equality — same subjects *and* same measure
    values at levels ``0 .. level-1``.
    """
    return left.take(level) == right.take(level)
