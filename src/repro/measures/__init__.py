"""Stack assertions and fair termination measures — the paper's core."""

from repro.measures.annotate import AnnotatedProgram, annotate
from repro.measures.assertions import (
    HypothesisSpec,
    StackAssertion,
    StackCase,
    parse_hypothesis_spec,
)
from repro.measures.assertfile import (
    AssertionFileError,
    load_assertion_file,
    parse_assertion_file,
)
from repro.measures.assignment import StackAssignment
from repro.measures.hypotheses import TERMINATION, Hypothesis
from repro.measures.justice import (
    JusticeSynthesis,
    NotWeaklyTerminatingError,
    check_justice_measure,
    find_active_level_justice,
    synthesize_justice_measure,
)
from repro.measures.soundness import (
    MeasureContradiction,
    UnfairnessWitness,
    unfairness_witness,
)
from repro.measures.stack import Stack, stacks_equal_below
from repro.measures.verification import (
    ActiveWitness,
    LevelFailure,
    MeasureCheckResult,
    MeasureVerificationError,
    StreamingCheckResult,
    TransitionViolation,
    check_measure,
    check_measure_streaming,
    find_active_level,
    find_active_level_general,
)

__all__ = [
    "AnnotatedProgram",
    "annotate",
    "HypothesisSpec",
    "StackAssertion",
    "StackCase",
    "parse_hypothesis_spec",
    "AssertionFileError",
    "load_assertion_file",
    "parse_assertion_file",
    "StackAssignment",
    "TERMINATION",
    "Hypothesis",
    "JusticeSynthesis",
    "NotWeaklyTerminatingError",
    "check_justice_measure",
    "find_active_level_justice",
    "synthesize_justice_measure",
    "MeasureContradiction",
    "UnfairnessWitness",
    "unfairness_witness",
    "Stack",
    "stacks_equal_below",
    "ActiveWitness",
    "LevelFailure",
    "MeasureCheckResult",
    "StreamingCheckResult",
    "MeasureVerificationError",
    "TransitionViolation",
    "check_measure",
    "check_measure_streaming",
    "find_active_level",
    "find_active_level_general",
]
