"""Profiles of measures and graphs, for reports and the CLI.

A :class:`MeasureProfile` condenses a stack assignment over an explored
graph into the quantities the experiments talk about: stack-height
distribution, hypothesis usage, measure-value ranges per subject, and —
when a check result is supplied — the active-level histogram split by
executed command (the §4.2 view).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from repro.measures.assignment import StackAssignment
from repro.measures.verification import MeasureCheckResult
from repro.ts.explore import ReachableGraph


@dataclass
class SubjectProfile:
    """Usage statistics of one hypothesis subject across all stacks."""

    subject: str
    occurrences: int = 0
    levels: Dict[int, int] = field(default_factory=dict)
    bare: int = 0
    values_seen: int = 0
    min_value: Optional[Any] = None
    max_value: Optional[Any] = None

    def note(self, level: int, value: Optional[Any]) -> None:
        """Record one occurrence at ``level`` carrying ``value``."""
        self.occurrences += 1
        self.levels[level] = self.levels.get(level, 0) + 1
        if value is None:
            self.bare += 1
            return
        self.values_seen += 1
        try:
            if self.min_value is None or value < self.min_value:
                self.min_value = value
            if self.max_value is None or value > self.max_value:
                self.max_value = value
        except TypeError:
            # Values from partial orders need not be comparable; ranges are
            # best-effort.
            pass


@dataclass
class MeasureProfile:
    """The condensed description of a measure over a graph."""

    states: int
    height_histogram: Dict[int, int]
    subjects: Dict[str, SubjectProfile]
    active_by_command: Dict[str, Dict[int, int]]

    @property
    def max_height(self) -> int:
        """The tallest stack."""
        return max(self.height_histogram) if self.height_histogram else 0

    def describe(self) -> str:
        """Multi-line human-readable summary."""
        lines = [
            f"{self.states} states; stack heights "
            + " ".join(
                f"{h}:{c}" for h, c in sorted(self.height_histogram.items())
            )
        ]
        for name in sorted(self.subjects):
            profile = self.subjects[name]
            parts = [f"{profile.occurrences} stacks"]
            if profile.bare:
                parts.append(f"{profile.bare} bare")
            if profile.values_seen and profile.min_value is not None:
                parts.append(f"values {profile.min_value}..{profile.max_value}")
            lines.append(f"  {name}: " + ", ".join(parts))
        for command in sorted(self.active_by_command):
            histogram = self.active_by_command[command]
            rendered = " ".join(
                f"{level}:{count}" for level, count in sorted(histogram.items())
            )
            lines.append(f"  active on {command}: {rendered}")
        return "\n".join(lines)


def profile_measure(
    graph: ReachableGraph,
    assignment: StackAssignment,
    check: Optional[MeasureCheckResult] = None,
) -> MeasureProfile:
    """Profile ``assignment`` over ``graph`` (optionally with check data)."""
    heights: Dict[int, int] = {}
    subjects: Dict[str, SubjectProfile] = {}
    for index in range(len(graph)):
        stack = assignment(graph.state_of(index))
        heights[stack.height] = heights.get(stack.height, 0) + 1
        for level, hypothesis in enumerate(stack):
            profile = subjects.setdefault(
                hypothesis.subject, SubjectProfile(subject=hypothesis.subject)
            )
            profile.note(level, hypothesis.value)

    active_by_command: Dict[str, Dict[int, int]] = {}
    if check is not None:
        for witness in check.witnesses:
            histogram = active_by_command.setdefault(
                witness.transition.command, {}
            )
            histogram[witness.level] = histogram.get(witness.level, 0) + 1

    return MeasureProfile(
        states=len(graph),
        height_histogram=heights,
        subjects=subjects,
        active_by_command=active_by_command,
    )
