"""Reporting helpers used by the benchmark harness and the CLI."""

from repro.analysis.profile import MeasureProfile, SubjectProfile, profile_measure
from repro.analysis.report import Table, format_ratio, histogram_line

__all__ = [
    "MeasureProfile",
    "SubjectProfile",
    "profile_measure",
    "Table",
    "format_ratio",
    "histogram_line",
]
