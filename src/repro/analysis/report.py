"""Plain-text tables for experiment reports.

The benchmark harness prints its rows through :class:`Table`, so the series
recorded in ``EXPERIMENTS.md`` are regenerated verbatim by
``pytest benchmarks/``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, List, Sequence


@dataclass
class Table:
    """A fixed-column text table."""

    title: str
    headers: Sequence[str]
    rows: List[Sequence[Any]] = field(default_factory=list)

    def add(self, *row: Any) -> None:
        """Append one row (arity must match the headers)."""
        if len(row) != len(self.headers):
            raise ValueError(
                f"row has {len(row)} cells, table {self.title!r} has "
                f"{len(self.headers)} columns"
            )
        self.rows.append(row)

    def render(self) -> str:
        """The table as aligned text."""
        cells = [[str(h) for h in self.headers]] + [
            [str(c) for c in row] for row in self.rows
        ]
        widths = [
            max(len(row[i]) for row in cells) for i in range(len(self.headers))
        ]
        lines = [f"== {self.title} =="]
        for number, row in enumerate(cells):
            line = "  ".join(cell.ljust(width) for cell, width in zip(row, widths))
            lines.append(line.rstrip())
            if number == 0:
                lines.append("-" * len(line))
        return "\n".join(lines)

    def show(self) -> None:
        """Print the rendered table (the bench harness's output channel)."""
        print()
        print(self.render())


def format_ratio(numerator: float, denominator: float) -> str:
    """``a/b`` as ``×N.N`` with divide-by-zero safety."""
    if denominator == 0:
        return "n/a"
    return f"×{numerator / denominator:.1f}"


def histogram_line(counts: dict, order: Iterable[Any] | None = None) -> str:
    """Render ``{level: count}`` as ``0:27 1:3015 2:2961``."""
    keys = list(order) if order is not None else sorted(counts)
    return " ".join(f"{key}:{counts[key]}" for key in keys if key in counts)
