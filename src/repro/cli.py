"""Command-line interface: ``repro-fair`` / ``python -m repro``.

Subcommands
-----------

* ``show FILE`` — parse and pretty-print a GCL program;
* ``explore FILE`` — enumerate reachable states;
* ``decide FILE`` — decide fair termination (Streett emptiness), printing a
  fair-lasso counterexample when one exists;
* ``synthesize FILE`` — synthesise and verify a fair termination measure,
  printing each state's stack;
* ``simulate FILE`` — run under a fair or adversarial scheduler;
* ``tree FILE`` — run the Theorem 3 construction on the history tree and
  report its statistics.

All subcommands accept ``--max-states``/``--max-depth`` exploration bounds
(infinite-state programs need them) and ``--jobs N`` to fan verification and
synthesis out over a process pool (results are identical to the serial run;
``synthesize`` and ``check`` print an engine-timing footer).
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from typing import Optional, Sequence

from repro import telemetry

from repro.completeness.construction import longest_chain_length, theorem3_construction
from repro.completeness.history import add_history_variable
from repro.completeness.synthesis import NotFairlyTerminatingError, synthesize_measure
from repro.fairness.checker import check_fair_termination
from repro.fairness.scheduler import (
    AdversarialScheduler,
    LeastRecentlyExecutedScheduler,
)
from repro.fairness.simulate import simulate
from repro.gcl.pretty import render_program
from repro.gcl.program import Program, parse_program
from repro.measures.verification import check_measure
from repro.ts.explore import explore


def _load(path: str) -> Program:
    with open(path, "r", encoding="utf-8") as handle:
        return parse_program(handle.read())


def _explore(args: argparse.Namespace, program: Program):
    """Explore honouring ``--max-states``/``--max-depth``/``--jobs``/
    ``--cache-dir``/``--cache-max-mb``."""
    from repro.engine.graphstore import explore_with_cache

    graph, hit = explore_with_cache(
        program,
        max_states=args.max_states,
        max_depth=args.max_depth,
        cache_dir=args.cache_dir,
        n_jobs=args.jobs,
        cache_max_mb=args.cache_max_mb,
    )
    if args.cache_dir is not None:
        from repro.engine.graphstore import last_outcome

        outcome = last_outcome()
        detail = {
            "migrated": "hit, migrated from v1",
            "incremental": (
                f"miss, incremental: {outcome.reused_states} states replayed"
            ),
        }.get(outcome.kind, "hit" if hit else "miss")
        print(f"graph cache: {detail} ({args.cache_dir})")
    return graph


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("file", help="GCL source file")
    parser.add_argument(
        "--max-states", type=int, default=None, help="exploration state budget"
    )
    parser.add_argument(
        "--max-depth", type=int, default=None, help="exploration depth bound"
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="worker processes for exploration/verification/synthesis "
        "(default/1 = serial; small work auto-falls back to serial; "
        "results are bit-identical either way)",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help="cache explored graphs on disk, keyed by the canonical "
        "program text, the exploration bounds and the job count; repeated "
        "runs skip exploration entirely",
    )
    parser.add_argument(
        "--cache-max-mb",
        type=float,
        default=None,
        metavar="MB",
        help="size cap for --cache-dir; when the cache exceeds it, least "
        "recently used entries are evicted (default: unbounded)",
    )
    parser.add_argument(
        "--trace",
        action="store_true",
        help="print the hierarchical span tree (phase timings and per-span "
        "counters) to stderr when the command finishes",
    )
    parser.add_argument(
        "--metrics-out",
        default=None,
        metavar="FILE",
        help="write the full telemetry snapshot (counters, gauges, "
        "histograms, spans) as JSON to FILE (see docs/METHOD.md "
        "§Observability for the schema)",
    )
    parser.add_argument(
        "--progress",
        action="store_true",
        help="live one-line exploration progress on stderr "
        "(states, queued, depth, states/s; plain lines when stderr is "
        "not a TTY)",
    )
    parser.add_argument(
        "--events-out",
        default=None,
        metavar="FILE",
        help="append the structured event stream (run lifecycle, phases, "
        "exploration rounds, cache outcomes, verdicts) to FILE as NDJSON "
        "— one schema-validated JSON object per line (docs/METHOD.md §13)",
    )
    parser.add_argument(
        "--expose",
        type=int,
        default=None,
        metavar="PORT",
        help="serve GET /metrics (Prometheus text), /events (NDJSON tail "
        "of the flight recorder) and /healthz on 127.0.0.1:PORT for the "
        "duration of the run (0 = ephemeral port; set "
        "REPRO_EXPOSE_LINGER=SECONDS to keep serving after the command "
        "finishes)",
    )


#: Root-span name → footer label (the CLI spells "synthesise" British).
_PHASE_LABELS = (
    ("explore", "explore"),
    ("synthesize", "synthesise"),
    ("verify", "verify"),
    ("decide", "decide"),
)


def _engine_footer(args: argparse.Namespace) -> str:
    """One-line engine report: root-span phase timings, per-cache hit/miss
    totals, the states-until-verdict of a streaming run, and the worker
    count used — all sourced from the one shared snapshot helper
    (:func:`repro.telemetry.sinks.engine_counters`), never from ad-hoc
    registry reads."""
    from repro.engine import resolve_jobs

    counters = telemetry.engine_counters()
    phases = counters["phases"]
    parts = [
        f"{label} {phases[name]:.3f}s"
        for name, label in _PHASE_LABELS
        if name in phases
    ]
    if counters["succ_hits"] or counters["succ_misses"]:
        parts.append(
            f"succ-cache hit/miss {counters['succ_hits']}/{counters['succ_misses']}"
        )
    if counters["store_hits"] or counters["store_misses"]:
        parts.append(
            f"graph-store hit/miss "
            f"{counters['store_hits']}/{counters['store_misses']}"
        )
    if counters["incremental_reused"]:
        parts.append(f"incremental reuse {counters['incremental_reused']} states")
    if counters["plane_rows"]:
        parts.append(f"verify-plane {counters['plane_rows']} rows")
    if counters["mask_primes"]:
        parts.append(f"mask primes {counters['mask_primes']}")
    if counters["states_at_verdict"] is not None:
        parts.append(f"verdict at {int(counters['states_at_verdict'])} states")
    report = " · ".join(parts) if parts else "no instrumented phases ran"
    return f"engine: {report} (jobs={resolve_jobs(args.jobs)})"


def _cmd_show(args: argparse.Namespace) -> int:
    program = _load(args.file)
    print(render_program(program.ast), end="")
    return 0


def _cmd_explore(args: argparse.Namespace) -> int:
    program = _load(args.file)
    graph = _explore(args, program)
    print(f"{program.name}: {graph.describe()}")
    terminal = graph.terminal_indices()
    print(f"terminal states: {len(terminal)}")
    for index in terminal[:10]:
        print(f"  {graph.state_of(index)!r}")
    return 0


def _cmd_decide(args: argparse.Namespace) -> int:
    program = _load(args.file)
    if args.stream:
        from repro.fairness.checker import check_fair_termination_streaming

        result = check_fair_termination_streaming(
            program,
            max_states=args.max_states,
            max_depth=args.max_depth,
            n_jobs=args.jobs,
        )
    else:
        graph = _explore(args, program)
        result = check_fair_termination(graph)
    print(f"{program.name}: {result}")
    if args.stream:
        print(_engine_footer(args))
    if result.witness is not None:
        print("fair infinite computation (counterexample):")
        print(f"  {result.witness.lasso.describe()}")
        return 1
    if not result.decisive:
        print(
            "note: exploration was bounded; the verdict covers the explored "
            "region only"
        )
    return 0


def _cmd_synthesize(args: argparse.Namespace) -> int:
    program = _load(args.file)
    graph = _explore(args, program)
    if not graph.complete:
        print(
            "error: synthesis needs the complete reachable graph; raise "
            "--max-states/--max-depth or bound the program",
            file=sys.stderr,
        )
        return 2
    try:
        synthesis = synthesize_measure(graph, n_jobs=args.jobs)
    except NotFairlyTerminatingError as error:
        print(f"{program.name} does not fairly terminate: {error}")
        if error.witness is not None:
            print(f"  {error.witness.lasso.describe()}")
        return 1
    check = check_measure(graph, synthesis.assignment(), n_jobs=args.jobs)
    check.raise_if_failed()
    print(
        f"{program.name}: fair termination measure synthesised and verified "
        f"({check.transitions_checked} transitions, max stack height "
        f"{synthesis.max_stack_height()})"
    )
    print(_engine_footer(args))
    if args.stacks:
        for index in range(len(graph)):
            state = graph.state_of(index)
            print(f"  {state!r}: {synthesis.stacks[index].render()}")
    if args.profile:
        from repro.analysis import profile_measure

        profile = profile_measure(graph, synthesis.assignment(), check)
        print(profile.describe())
    return 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    program = _load(args.file)
    if args.starve:
        scheduler = AdversarialScheduler(avoid=set(args.starve))
        kind = f"adversarial (starving {args.starve})"
    else:
        scheduler = LeastRecentlyExecutedScheduler(program.commands())
        kind = "least-recently-executed (strongly fair)"
    result = simulate(program, scheduler, max_steps=args.steps)
    outcome = "terminated" if result.terminated else "still running"
    print(f"{program.name} under {kind}: {outcome} after {result.steps} steps")
    counts = result.trace.execution_counts()
    for command in program.commands():
        print(f"  {command}: executed {counts.get(command, 0)} times")
    return 0


def _cmd_check(args: argparse.Namespace) -> int:
    from repro.measures.annotate import annotate
    from repro.measures.assertfile import load_assertion_file

    program = _load(args.file)
    assertion = load_assertion_file(args.assertion)
    try:
        proof = annotate(program, assertion)
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    if args.stream or args.fail_fast:
        result = proof.check_streaming(
            max_states=args.max_states,
            max_depth=args.max_depth,
            n_jobs=args.jobs,
            max_violations=1 if args.fail_fast else None,
        )
    else:
        result = proof.check(
            max_states=args.max_states, max_depth=args.max_depth, n_jobs=args.jobs
        )
    print(f"{program.name} with {args.assertion}: {result.summary()}")
    print(_engine_footer(args))
    if getattr(result, "stopped_early", False):
        print(
            f"stopped early: exploration halted after "
            f"{result.states_explored} states (first violation found)"
        )
    if result.ok:
        if not result.complete:
            print(
                "note: the state space was only partially explored; the "
                "conditions hold on the explored region"
            )
        return 0
    for violation in result.violations[: args.show]:
        print(violation)
    remaining = len(result.violations) - args.show
    if remaining > 0:
        print(f"... and {remaining} further violations")
    return 1


def _cmd_compare(args: argparse.Namespace) -> int:
    program = _load(args.file)
    graph = _explore(args, program)
    if not graph.complete:
        print(
            "error: the comparison needs the complete reachable graph",
            file=sys.stderr,
        )
        return 2
    from repro.baselines import compare_methods

    comparison = compare_methods(program.name, graph, scheduler_credit=args.credit)
    print(f"{program.name}: {len(graph)} states")
    for method, programs, states, notes in comparison.rows():
        print(f"  {method}: {programs} program(s), {states} states reasoned "
              f"about ({notes})")
    return 0


def _cmd_notions(args: argparse.Namespace) -> int:
    from repro.fairness import (
        find_fair_cycle,
        find_impartial_cycle,
        find_weakly_fair_cycle,
    )

    program = _load(args.file)
    graph = _explore(args, program)
    rows = [
        ("weak fairness (justice)", find_weakly_fair_cycle(graph)),
        ("strong fairness", find_fair_cycle(graph)),
        ("impartiality", find_impartial_cycle(graph)),
    ]
    print(f"{program.name}: termination under the [LPS81] notions")
    for name, witness in rows:
        verdict = "terminates" if witness is None else "does NOT terminate"
        print(f"  under {name}: {verdict}")
        if witness is not None:
            print(f"    fair cycle: {witness.lasso.describe()}")
    if not graph.complete:
        print("note: exploration was bounded; verdicts cover the explored region")
    return 0


def _cmd_response(args: argparse.Namespace) -> int:
    from repro.gcl.eval import evaluate_bool
    from repro.gcl.parser import parse_expression
    from repro.response import (
        ResponseProperty,
        check_fair_response,
        check_response_measure,
        pending_indices,
        synthesize_response_measure,
    )

    program = _load(args.file)
    trigger_expr = parse_expression(args.trigger)
    response_expr = parse_expression(args.response)
    prop = ResponseProperty(
        name=f"{args.trigger} leads to {args.response}",
        trigger=lambda state: evaluate_bool(trigger_expr, state),
        response=lambda state: evaluate_bool(response_expr, state),
    )
    result = check_fair_response(
        program, prop, max_states=args.max_states, max_depth=args.max_depth
    )
    print(f"{program.name}: G(({args.trigger}) -> F ({args.response})): {result}")
    if result.witness is not None:
        print("fair counterexample (obligation pending forever):")
        print(f"  {result.witness.lasso.describe()}")
        return 1
    if result.decisive:
        pending = pending_indices(result.product_graph)
        if pending:
            synthesis = synthesize_response_measure(result.product_graph, pending)
            check = check_response_measure(
                result.product_graph, pending, synthesis.assignment()
            )
            check.raise_if_failed()
            print(
                f"response measure synthesised and verified on "
                f"{len(pending)} pending states "
                f"({check.transitions_checked} transitions)"
            )
    else:
        print("note: exploration was bounded; the verdict covers the explored region")
    return 0


def _cmd_tree(args: argparse.Namespace) -> int:
    program = _load(args.file)
    depth = args.max_depth if args.max_depth is not None else 8
    graph = explore(add_history_variable(program), max_depth=depth)
    measure = theorem3_construction(graph)
    verification = measure.verify()
    print(f"{program.name}: history tree to depth {depth}: {graph.describe()}")
    print(f"verification: {verification.summary()}")
    print(
        f"W: {measure.relation.size} values, {len(measure.relation.edges)} "
        f"descents, longest chain {longest_chain_length(measure.relation)}; "
        f"case 1 × {measure.stats.case1_total}, case 2 × "
        f"{measure.stats.case2_total}"
    )
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The argparse tree (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro-fair",
        description="Stack assertions and progress measures for fair "
        "termination (Klarlund, PODC 1992)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    show = subparsers.add_parser("show", help="parse and pretty-print")
    _add_common(show)
    show.set_defaults(run=_cmd_show)

    explore_cmd = subparsers.add_parser("explore", help="enumerate states")
    _add_common(explore_cmd)
    explore_cmd.set_defaults(run=_cmd_explore)

    decide = subparsers.add_parser("decide", help="decide fair termination")
    _add_common(decide)
    decide.add_argument(
        "--stream",
        action="store_true",
        help="hunt for a fair-lasso counterexample during staged exploration "
        "and exit as soon as one is found; verdicts match the materialized "
        "run for the same bounds (streaming bypasses --cache-dir)",
    )
    decide.set_defaults(run=_cmd_decide)

    synthesize = subparsers.add_parser(
        "synthesize", help="synthesise a fair termination measure"
    )
    _add_common(synthesize)
    synthesize.add_argument(
        "--stacks", action="store_true", help="print each state's stack"
    )
    synthesize.add_argument(
        "--profile", action="store_true", help="print measure statistics"
    )
    synthesize.set_defaults(run=_cmd_synthesize)

    simulate_cmd = subparsers.add_parser("simulate", help="run a scheduler")
    _add_common(simulate_cmd)
    simulate_cmd.add_argument(
        "--steps", type=int, default=10_000, help="step budget"
    )
    simulate_cmd.add_argument(
        "--starve",
        nargs="*",
        default=None,
        help="starve these commands (adversarial scheduler)",
    )
    simulate_cmd.set_defaults(run=_cmd_simulate)

    tree = subparsers.add_parser(
        "tree", help="Theorem 3 construction on the history tree"
    )
    _add_common(tree)
    tree.set_defaults(run=_cmd_tree)

    check = subparsers.add_parser(
        "check", help="verify a stack-assertion file against a program"
    )
    _add_common(check)
    check.add_argument(
        "--assertion", required=True, help="assertion file (see docs/METHOD.md)"
    )
    check.add_argument(
        "--show", type=int, default=3, help="violations to print on failure"
    )
    check.add_argument(
        "--stream",
        action="store_true",
        help="verify each transition as exploration reaches it instead of "
        "materializing the graph first; memory stays proportional to the "
        "frontier and verdicts are identical (streaming bypasses --cache-dir)",
    )
    check.add_argument(
        "--fail-fast",
        action="store_true",
        help="stop exploring at the first violation (implies --stream)",
    )
    check.set_defaults(run=_cmd_check)

    compare = subparsers.add_parser(
        "compare", help="stack assertions vs earlier methods"
    )
    _add_common(compare)
    compare.add_argument(
        "--credit", type=int, default=2, help="explicit-scheduler credit bound"
    )
    compare.set_defaults(run=_cmd_compare)

    notions = subparsers.add_parser(
        "notions", help="termination under weak/strong/impartial fairness"
    )
    _add_common(notions)
    notions.set_defaults(run=_cmd_notions)

    response = subparsers.add_parser(
        "response", help="check G(trigger -> F response) under strong fairness"
    )
    _add_common(response)
    response.add_argument(
        "--trigger", required=True, help="GCL boolean expression, e.g. 'x == 2'"
    )
    response.add_argument(
        "--response", required=True, help="GCL boolean expression, e.g. 'x == 0'"
    )
    response.set_defaults(run=_cmd_response)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point.

    Telemetry collects for every subcommand (its cost is one flag check per
    phase boundary) so the engine footer and the ``--trace`` /
    ``--metrics-out`` sinks always have data; it is reset first and disabled
    afterwards so embedding callers (tests, benchmarks) never see CLI state
    leak into their own measurements.  The structured event stream is reset
    alongside it: every run starts at sequence number 1 with a ``run.start``
    event and closes with ``run.end``.  An unhandled exception in any
    subcommand dumps the flight-recorder tail, a metrics snapshot and the
    traceback to ``postmortem-<ts>.json`` before re-raising.
    """
    parser = build_parser()
    args = parser.parse_args(argv)
    telemetry.reset()
    telemetry.reset_events()
    telemetry.enable(progress=getattr(args, "progress", False))
    sink = None
    server = None
    events_out = getattr(args, "events_out", None)
    if events_out is not None:
        sink = telemetry.NdjsonEventSink(events_out)
        telemetry.subscribe(sink)
    expose_port = getattr(args, "expose", None)
    if expose_port is not None:
        from repro.telemetry.expose import ExpositionServer, linger_seconds

        server = ExpositionServer(port=expose_port)
        server.start()
        print(
            f"expose: serving /metrics /events /healthz on {server.url}",
            file=sys.stderr,
        )
    started = time.monotonic()
    telemetry.emit(
        "run.start",
        command=args.command,
        file=getattr(args, "file", None),
        pid=os.getpid(),
        jobs=getattr(args, "jobs", None),
    )
    code: Optional[int] = None
    try:
        code = args.run(args)
        return code
    except Exception as error:
        path = telemetry.write_postmortem(
            error,
            command=args.command,
            argv=list(argv) if argv is not None else sys.argv[1:],
        )
        print(f"postmortem written: {path}", file=sys.stderr)
        raise
    finally:
        counters = telemetry.engine_counters()
        telemetry.emit(
            "run.end",
            command=args.command,
            exit_code=code,
            crashed=code is None,
            seconds=time.monotonic() - started,
            succ_hits=counters["succ_hits"],
            succ_misses=counters["succ_misses"],
            store_hits=counters["store_hits"],
            store_misses=counters["store_misses"],
            states_at_verdict=counters["states_at_verdict"],
        )
        if getattr(args, "trace", False):
            telemetry.print_trace()
        metrics_out = getattr(args, "metrics_out", None)
        if metrics_out is not None:
            telemetry.write_metrics(metrics_out)
        if server is not None:
            linger = linger_seconds()
            if linger:
                time.sleep(linger)
            server.stop()
        if sink is not None:
            sink.close()
        telemetry.disable()


if __name__ == "__main__":
    sys.exit(main())
