#!/usr/bin/env python3
"""Beyond termination: fair response — every request is eventually served.

The paper notes that fair *response* generalizes fair termination ([MP91]).
A request/grant server never terminates — clients keep coming — yet under
strong fairness it satisfies ``G(wait → F idle)``: a waiting request cannot
be starved forever, because ``grant`` stays enabled.

The same stack-assertion machinery proves it: measures live on the
*pending* states (request raised, not yet served), the verification
conditions are required on pending-to-pending transitions, and the starved
command (``grant``) is the unfairness hypothesis.

Run: ``python examples/fair_response.py``
"""

from repro.fairness import check_fair_termination
from repro.response import (
    ObligationSystem,
    ResponseProperty,
    check_fair_response,
    check_response_measure,
    pending_indices,
    synthesize_response_measure,
)
from repro.ts import explore
from repro.workloads import request_server


def main() -> None:
    system = request_server(noise_states=2)
    graph = explore(system)
    print(f"server: {graph.describe()}")

    # Fair termination fails — and should: the server is meant to run
    # forever (request/grant forever is a perfectly fair behaviour).
    verdict = check_fair_termination(graph)
    print(f"fair termination: {verdict}")

    # But every request is served, under fairness.
    served = ResponseProperty(
        name="served",
        trigger=lambda s: s == "wait",
        response=lambda s: s == "idle",
    )
    result = check_fair_response(system, served)
    print(f"G(wait → F idle): {result}")

    # The proof object: a response measure on the pending states.
    product_graph = result.product_graph
    pending = pending_indices(product_graph)
    synthesis = synthesize_response_measure(product_graph, pending)
    check = check_response_measure(product_graph, pending, synthesis.assignment())
    check.raise_if_failed()
    print(f"response measure: {check.summary()}")
    print("pending-state stacks (the starved 'grant' is the hypothesis):")
    for index in pending:
        state = product_graph.state_of(index)
        print(f"  {state!r}: {synthesis.stacks[index].render()}")

    # A property that fails, with a concrete fair counterexample.
    never = ResponseProperty(
        name="never", trigger=lambda s: s == "wait", response=lambda s: False
    )
    failing = check_fair_response(system, never)
    print(f"\nG(wait → F false): {failing}")
    print(f"counterexample: {failing.witness.lasso.describe()}")


if __name__ == "__main__":
    main()
