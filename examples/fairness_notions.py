#!/usr/bin/env python3
"""Impartiality, justice, fairness — and what each does to the proofs.

[LPS81] (which the paper builds on) orders the fairness notions:

* **impartiality** — every command runs infinitely often;
* **justice** (weak fairness) — every *continuously* enabled command runs
  infinitely often;
* **fairness** (strong) — every command enabled *infinitely often* runs
  infinitely often.

Stronger assumptions terminate more programs: ``weak-fair termination ⟹
strong-fair termination ⟹ impartial termination``.  The escape ring —
a loop whose exit is enabled only at one point of the cycle — sits exactly
in the gap: justice tolerates circling forever (the exit is never
*continuously* enabled), strong fairness does not.

On the proof side the gap has a shape: justice measures are always *flat*
(height ≤ 2), while strong fairness needs the paper's stacked hierarchies.

Run: ``python examples/fairness_notions.py``
"""

from repro import check_measure, explore, synthesize_measure
from repro.analysis import Table
from repro.fairness import (
    find_fair_cycle,
    find_impartial_cycle,
    find_weakly_fair_cycle,
)
from repro.measures.justice import (
    NotWeaklyTerminatingError,
    check_justice_measure,
    synthesize_justice_measure,
)
from repro.workloads import escape_ring, nested_rings, p2


def main() -> None:
    table = Table(
        "termination under the three notions",
        ["system", "impartial", "strong", "weak (justice)"],
    )
    systems = [
        ("P2(5)", p2(5)),
        ("escape_ring(4)", escape_ring(4)),
        ("nested_rings(2)", nested_rings(2)),
    ]
    for name, system in systems:
        graph = explore(system)
        table.add(
            name,
            "terminates" if find_impartial_cycle(graph) is None else "runs forever",
            "terminates" if find_fair_cycle(graph) is None else "runs forever",
            "terminates" if find_weakly_fair_cycle(graph) is None else "runs forever",
        )
    table.show()

    print("\n== the escape ring, in detail ==")
    system = escape_ring(4)
    graph = explore(system)
    weak_witness = find_weakly_fair_cycle(graph)
    print("a weakly fair infinite run (the exit is never continuously enabled):")
    print(f"  {weak_witness.lasso.describe()}")
    print("yet under strong fairness the ring terminates — the measure:")
    synthesis = synthesize_measure(graph)
    check_measure(graph, synthesis.assignment()).raise_if_failed()
    for index in range(len(graph)):
        print(f"  {graph.state_of(index)!r}: {synthesis.stacks[index].render()}")

    print("\n== proof shapes: justice is flat, strong fairness stacks ==")
    for name, system in [("P2(5)", p2(5)), ("nested_rings(3)", nested_rings(3))]:
        graph = explore(system)
        strong = synthesize_measure(graph)
        check_measure(graph, strong.assignment()).raise_if_failed()
        try:
            justice = synthesize_justice_measure(graph)
            check_justice_measure(graph, justice.assignment()).raise_if_failed()
            justice_note = f"justice height {justice.max_stack_height()}"
        except NotWeaklyTerminatingError:
            justice_note = "no justice termination at all"
        print(
            f"  {name}: strong-fairness height "
            f"{strong.max_stack_height()}; {justice_note}"
        )
    print(
        "\nthe hierarchy of unfairness hypotheses — the reason the paper's "
        "stacks exist — is specifically a strong-fairness phenomenon."
    )


if __name__ == "__main__":
    main()
