#!/usr/bin/env python3
"""Quickstart: prove that a program terminates under strong fairness.

The paper's motivating program ``P2`` adds one ``skip`` branch to a plain
counting loop.  That single branch destroys ordinary termination — a
scheduler that always picks ``lb`` runs forever — but under strong fairness
(``la`` cannot be enabled forever yet never run) the loop always finishes.

This script walks the full workflow:

1. write the program,
2. watch it fail to terminate under an adversarial scheduler,
3. decide fair termination automatically (Streett emptiness),
4. write the paper's stack assertion ``P2' = (ℓa / T: max{y−x, 0})``,
5. check the verification conditions (V_A), (V_NonI), (V_NoC), and
6. use the measure to *explain* why the adversarial run was unfair
   (Theorem 1, executably).

Run: ``python examples/quickstart.py``
"""

from repro import (
    StackAssertion,
    annotate,
    check_fair_termination,
    explore,
    parse_program,
    unfairness_witness,
)
from repro.fairness import (
    AdversarialScheduler,
    LeastRecentlyExecutedScheduler,
    simulate,
)
from repro.ts import Lasso, Path


def main() -> None:
    # 1. The paper's P2 (§3.2).
    program = parse_program(
        """
        program P2
        var x := 0, y := 10
        do
             la: x < y -> x := x + 1
          [] lb: x < y -> skip
        od
        """
    )
    print("== the program ==")
    print(annotate(program, P2_PRIME).render())

    # 2. Scheduling matters: fair vs adversarial runs.
    fair = simulate(program, LeastRecentlyExecutedScheduler(program.commands()))
    print(f"strongly fair scheduler: terminated={fair.terminated} "
          f"after {fair.steps} steps")
    unfair = simulate(program, AdversarialScheduler(avoid={"la"}), max_steps=1000)
    print(f"adversarial scheduler (starving la): terminated={unfair.terminated}; "
          f"la executed {unfair.executed('la')} times in {unfair.steps} steps")

    # 3. The decision procedure agrees: P2 fairly terminates.
    graph = explore(program)
    verdict = check_fair_termination(graph)
    print(f"decision procedure: {verdict}")

    # 4+5. The paper's annotation, checked on every reachable transition.
    result = annotate(program, P2_PRIME).check(graph=graph)
    result.raise_if_failed()
    print(f"stack assertion P2': {result.summary()}")

    # 6. Theorem 1: the measure explains the adversarial run.  The run ends
    # parked on the lb self-loop; wrap that loop as a lasso and ask the
    # measure which command it starves.
    parked = unfair.trace.final_state
    lasso = Lasso(
        stem=Path.singleton(parked),
        cycle=Path((parked, parked), ("lb",)),
    )
    witness = unfairness_witness(program, P2_PRIME.compile(), lasso)
    print(f"Theorem 1 witness: {witness}")


#: The paper's annotation for P2 — top-down, exactly as displayed in §3.2.
P2_PRIME = StackAssertion.parse(
    ["la", "T: max(y - x, 0)"],
    description="paper P2' — (ℓa / T: max{y−x, 0})",
)


if __name__ == "__main__":
    main()
