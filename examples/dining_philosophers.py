#!/usr/bin/env python3
"""Fair termination of a distributed system: dining philosophers.

Each of N philosophers around a table must eat once; picking up both forks
is one atomic action, enabled only while neither neighbour eats.  Everyone
can ponder forever — so the system does not plainly terminate — but every
infinite schedule starves somebody's ``pick`` while it keeps being enabled:
under strong fairness, dinner always ends.

The script decides fair termination, synthesises a fair termination measure
automatically (the stack assertions a human would have to invent), shows
the stacks of a few interesting states, and contrasts fair and adversarial
schedules.

Run: ``python examples/dining_philosophers.py [N]``
"""

import sys

from repro import check_fair_termination, check_measure, explore, synthesize_measure
from repro.analysis import Table
from repro.baselines import NotTerminatingError, synthesize_floyd
from repro.fairness import (
    AdversarialScheduler,
    LeastRecentlyExecutedScheduler,
    simulate,
)
from repro.workloads import dining_philosophers


def main() -> None:
    count = int(sys.argv[1]) if len(sys.argv) > 1 else 4
    system = dining_philosophers(count)
    graph = explore(system)
    print(f"{count} philosophers: {graph.describe()}")

    # Plain termination fails...
    try:
        synthesize_floyd(graph)
        raise AssertionError("unexpected: no infinite run?")
    except NotTerminatingError as error:
        commands = set(error.witness.cycle.commands)
        print(f"not plainly terminating — e.g. loop on {sorted(commands)}")

    # ... but fair termination holds.
    verdict = check_fair_termination(graph)
    print(f"decision: {verdict}")

    # Synthesise and verify a fair termination measure.
    synthesis = synthesize_measure(graph)
    result = check_measure(graph, synthesis.assignment())
    result.raise_if_failed()
    print(
        f"measure synthesised: max stack height {synthesis.max_stack_height()}, "
        f"{synthesis.region_count()} regions; {result.summary()}"
    )

    # Peek at stacks: the everyone-hungry state and a half-done state.
    table = Table("stacks of selected states", ["state", "stack"])
    shown = 0
    for index in range(len(graph)):
        state = graph.state_of(index)
        if shown < 4 and (all(p == "H" for p in state) or state.count("D") == count // 2):
            table.add("".join(state), synthesis.stacks[index].render())
            shown += 1
    table.show()

    # Schedules: a strongly fair scheduler feeds everyone; an adversary
    # can starve one.
    fair = simulate(
        system,
        LeastRecentlyExecutedScheduler(system.commands()),
        max_steps=10_000,
    )
    print(f"\nfair scheduler: terminated={fair.terminated} in {fair.steps} "
          f"steps; final={''.join(fair.trace.final_state)}")
    adversary = AdversarialScheduler(
        avoid={"phil0.pick"}, prefer=("phil0.ponder",)
    )
    starved = simulate(system, adversary, max_steps=1000)
    print(f"adversary starving phil0.pick: terminated={starved.terminated}; "
          f"phil0 ate {starved.executed('phil0.pick')} times; "
          f"longest starvation span {starved.trace.starvation_span('phil0.pick')}")
    print("strong fairness forbids exactly such schedules — the synthesised "
          "stacks are the proof.")


if __name__ == "__main__":
    main()
