#!/usr/bin/env python3
"""The paper's examples P1–P4, end to end (§3.1–§3.4, §4.2).

For each program the script prints the annotated program exactly as the
paper displays it, checks the verification conditions mechanically, and —
for ``P4'`` — reproduces the §4.2 case analysis: which hypothesis is active
when each of ``ℓa``, ``ℓb``, ``ℓc`` executes.

Run: ``python examples/paper_tour.py``
"""

from repro import annotate, explore
from repro.analysis import Table, histogram_line
from repro.workloads import (
    p1,
    p1_assertion,
    p2,
    p2_assertion,
    p3,
    p3_assertion,
    p3_bounded,
    p4,
    p4_assertion,
    p4_bounded,
)


def show(title: str, proof, **check_kwargs) -> None:
    print(f"\n==== {title} ====")
    print(proof.render())
    result = proof.check(**check_kwargs)
    result.raise_if_failed()
    print(f"verification: {result.summary()}")


def main() -> None:
    # P1 (§3.1): Floyd's method — a plain loop variant, stack height 1.
    show("P1' — Floyd's loop variant", annotate(p1(10), p1_assertion()))

    # P2 (§3.2): one skip branch forces the ℓa-hypothesis on top of T.
    show("P2' — fair termination needs one unfairness hypothesis",
         annotate(p2(10), p2_assertion()))

    # P3 (§3.3): ℓa is only intermittently enabled; its hypothesis carries
    # the progress measure z mod 117.  The state space is infinite (z can
    # decrease forever on unfair branches): the check is over a bounded
    # region, explicitly reported.
    show("P3' — a progress measure for the ℓa-hypothesis (bounded region)",
         annotate(p3(3, 240), p3_assertion()), max_states=3000)
    show("P3' — exact on the z ≥ 0 bounded variant",
         annotate(p3_bounded(3, 240), p3_assertion()))

    # P4 (§3.4): a second starvable command stacks the ℓb-hypothesis on top.
    show("P4' — a hierarchy of two unfairness hypotheses (bounded region)",
         annotate(p4(3, 240), p4_assertion()), max_states=3000)
    proof = annotate(p4_bounded(3, 240), p4_assertion())
    show("P4' — exact on the bounded variant", proof)

    # §4.2: the case analysis, mechanically.  The checker records which
    # level discharged each transition; group by executed command.
    graph = explore(p4_bounded(3, 240))
    result = proof.check(graph=graph)
    by_command = {}
    for witness in result.witnesses:
        histogram = by_command.setdefault(witness.transition.command, {})
        histogram[witness.level] = histogram.get(witness.level, 0) + 1
    table = Table(
        "§4.2 case analysis (which hypothesis is active, per executed command)",
        ["executed", "active levels (level:count)", "paper says"],
    )
    paper = {
        "la": "T-hypothesis (level 0) — μ^T decreases",
        "lb": "ℓa-hypothesis (level 1) — enabled or z mod 117 decreases",
        "lc": "ℓb-hypothesis (level 2) — ℓb enabled, not executed",
    }
    for command in ("la", "lb", "lc"):
        table.add(command, histogram_line(by_command[command]), paper[command])
    table.show()


if __name__ == "__main__":
    main()
