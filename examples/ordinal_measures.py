#!/usr/bin/env python3
"""Transfinite measures: when ℕ is not enough.

§2 recalls the tie between fairness and countable nondeterminism ([AP86]):
a command like ``choose n in 0 .. cap`` makes the number of remaining steps
unbounded *before* the choice is resolved, so no single natural number can
measure the distance to termination uniformly — but the ordinal ``ω`` can.
The library's well-founded orders include the ordinals below ε₀ in Cantor
normal form, and stack assertions take measures in any of them.

Two demonstrations:

1. **Floyd with ordinals** — a nested counter loop measured by ``ω·u + v``;
2. **Fair termination with ordinals** — a phase program whose T-measure is
   ``ω`` while the choice is pending and ``n`` afterwards, with a ``start``
   unfairness hypothesis explaining the idle steps.

Run: ``python examples/ordinal_measures.py``
"""

from repro import StackAssertion, annotate, explore, parse_program
from repro.baselines import TerminationMeasure, check_termination_measure
from repro.measures import HypothesisSpec, StackCase
from repro.wf import OMEGA, ORDINALS, ordinal


def nested_countdown():
    """Refill an inner counter from an outer one: Floyd needs ``ω·u + v``."""
    return parse_program(
        """
        program Nested
        var u := 3, v := 0, cap := 5
        do
             refill: u > 0 and v == 0 -> u := u - 1; choose v in 0 .. cap
          [] dec:    v > 0 -> v := v - 1
        od
        """
    )


def pending_choice():
    """Idle before an unbounded-looking choice: fair termination at ``ω``."""
    return parse_program(
        """
        program Pending
        var phase := 1, n := 0, cap := 9
        do
             start: phase == 1 -> phase := 0; choose n in 0 .. cap
          [] dec:   phase == 0 and n > 0 -> n := n - 1
          [] idle:  phase == 1 -> skip
        od
        """
    )


def main() -> None:
    # 1. Floyd, transfinite: ω·u + v strictly decreases on every step —
    #    refill drops a whole ω-block, dec steps down inside one.
    program = nested_countdown()
    graph = explore(program)
    measure = TerminationMeasure(
        lambda s: OMEGA * s["u"] + ordinal(s["v"]),
        order=ORDINALS,
        description="ω·u + v",
    )
    result = check_termination_measure(graph, measure)
    print(f"Nested: Floyd measure ω·u + v over {len(graph)} states: "
          f"{result.summary()}")

    # 2. Stack assertion with an ordinal T-measure: ω while the choice is
    #    pending (any outcome is below it), n afterwards; the idle steps
    #    are explained by the starved 'start' command.
    program = pending_choice()
    assertion = StackAssertion(
        cases=[
            StackCase(
                hypotheses=(
                    HypothesisSpec("start"),
                    HypothesisSpec("T", lambda s: OMEGA),
                ),
                condition="phase == 1",
            ),
            StackCase(
                hypotheses=(HypothesisSpec("T", lambda s: ordinal(s["n"])),),
            ),
        ],
        order=ORDINALS,
        description="(start / T: ω) while pending; (T: n) after",
    )
    proof = annotate(program, assertion)
    result = proof.check()
    result.raise_if_failed()
    print(f"Pending: ordinal stack assertion: {result.summary()}")
    print(
        "  the start step realises ω ≻ n for whatever n the choice picked —"
        " the descent no natural-number measure could promise uniformly."
    )


if __name__ == "__main__":
    main()
