#!/usr/bin/env python3
"""Deep unfairness hierarchies and the cost of earlier methods.

The ``nested_rings`` family builds systems whose fair-termination proofs
*need* stacks of unbounded height: region ``j`` can only starve its own
escape command, so the synthesised measure stacks one unfairness hypothesis
per nesting level.  The same programs make the paper's comparison with
earlier methods quantitative:

* **helpful directions** reasons about one derived program per region —
  nesting depth equals the stack height, and states are re-visited once per
  enclosing level;
* the **explicit scheduler** transformation avoids derived programs but
  multiplies the state space by credit counters.

Run: ``python examples/synthesis_and_baselines.py``
"""

from repro import check_measure, explore, synthesize_measure
from repro.analysis import Table
from repro.baselines import compare_methods
from repro.workloads import nested_rings


def print_region_tree(region, indent="  "):
    print(
        f"{indent}level {region.level}: starves {region.helpful!r} "
        f"over {len(region.states)} states"
    )
    for child in region.children:
        print_region_tree(child, indent + "  ")


def main() -> None:
    print("== the onion: nested_rings(3) ==")
    system = nested_rings(3)
    graph = explore(system)
    synthesis = synthesize_measure(graph)
    check_measure(graph, synthesis.assignment()).raise_if_failed()
    print("decomposition (each region starves its own escape):")
    for region in synthesis.regions:
        print_region_tree(region)
    print("\nstacks (deepest at the innermost state b):")
    for index in range(len(graph)):
        state = graph.state_of(index)
        print(f"  {state!r:8}: {synthesis.stacks[index].render()}")

    print("\n== proof-object cost across methods ==")
    table = Table(
        "stack assertions vs helpful directions vs explicit scheduler",
        ["system", "states", "method", "programs", "states reasoned", "notes"],
    )
    for depth in (1, 2, 3, 4):
        graph = explore(nested_rings(depth))
        comparison = compare_methods(f"rings({depth})", graph, scheduler_credit=2)
        for method, programs, states, notes in comparison.rows():
            table.add(f"rings({depth})", len(graph), method, programs, states, notes)
    table.show()
    print(
        "\nstack assertions always annotate the one, unaltered program; the "
        "earlier methods pay in derived programs or in state-space blowup — "
        "the trade-off §1 and §5 of the paper describe."
    )


if __name__ == "__main__":
    main()
