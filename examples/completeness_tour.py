#!/usr/bin/env python3
"""The completeness machinery, executably: Theorems 3, 2 and 4.

* **Theorem 3** — unwind a program into its history tree and run the
  appendix construction (Figures 3–5): every transition gets an active
  hypothesis, and the incrementally built ``(W, ≻)`` stays acyclic.
* **Theorem 2** — quotient the tree measure back onto the original states
  by taking per-state minima of the value vectors.
* **Theorem 4** — the same construction as a *recursive semi-measure*: the
  stack of any finite run is computable on demand, and well-foundedness of
  the explored ``≻`` is the exact mirror of fair termination — the longest
  descending chain grows without bound for a program with a fair infinite
  computation, and plateaus for a fairly terminating one.

Run: ``python examples/completeness_tour.py``
"""

from repro import explore, parse_program, theorem2_quotient
from repro.analysis import Table
from repro.completeness import (
    add_history_variable,
    longest_chain_length,
    semi_measure,
    theorem3_construction,
)
from repro.workloads import p2


def main() -> None:
    program = p2(4)

    # -- Theorem 3 on the history tree ------------------------------------
    print("== Theorem 3: the construction on P2's history tree ==")
    tree = explore(add_history_variable(program), max_depth=8)
    measure = theorem3_construction(tree)
    verification = measure.verify()
    verification.raise_if_failed()
    print(f"tree: {tree.describe()}")
    print(f"verification: {verification.summary()}")
    print(
        f"W: {measure.relation.size} values, {len(measure.relation.edges)} "
        f"descent edges; Case 1 fired {measure.stats.case1_total}×, "
        f"Case 2 fired {measure.stats.case2_total}×"
    )
    root_stack = measure.stacks[0]
    print(f"initial stack (Figure 3): {root_stack.render()}")

    # -- Theorem 2 quotient -------------------------------------------------
    print("\n== Theorem 2: quotient back onto the original 5 states ==")
    quotient = theorem2_quotient(program, max_depth=12)
    q_result = quotient.verify()
    q_result.raise_if_failed()
    table = Table("quotient stacks", ["state", "stack (subjects + θ values)"])
    for index in range(len(quotient.base_graph)):
        state = quotient.base_graph.state_of(index)
        table.add(repr(state), quotient.stacks[state].render())
    table.show()
    print(f"verification on the original program: {q_result.summary()}")

    # -- Theorem 4: the recursive semi-measure ------------------------------
    print("\n== Theorem 4: semi-measure chains mirror fair termination ==")
    spin = parse_program("program Spin var x := 0 do go: true -> skip od")
    table = Table(
        "longest descending chain in the explored (W, ≻)",
        ["depth", "P2 (fairly terminates)", "Spin (does not)"],
    )
    for depth in (3, 6, 9, 12):
        p2_chain = semi_measure(program).audit(depth).longest_chain
        spin_chain = semi_measure(spin).audit(depth).longest_chain
        table.add(depth, p2_chain, spin_chain)
    table.show()
    print(
        "P2's chains plateau (a well-founded limit exists: the measure); "
        "Spin's grow linearly with depth (an infinite descent in the limit "
        "— no measure, because a fair infinite computation exists)."
    )


if __name__ == "__main__":
    main()
