"""E5 — Theorem 1 (soundness), empirically.

Paper artifact: a fair termination measure turns every infinite
computation into an unfairness witness.  Procedure: over a batch of random
finite-state systems that fairly terminate, synthesise a verified measure,
manufacture an infinite computation inside every non-trivial SCC (the
grand-tour lasso), and extract the Theorem 1 witness; cross-check each
witness against the independent strong-fairness spec.  Rows: batch totals —
every lasso refuted, zero disagreements.  The benchmark times witness
extraction.
"""

from common import record_table

from repro.analysis import Table
from repro.completeness import NotFairlyTerminatingError, synthesize_measure
from repro.fairness import STRONG_FAIRNESS
from repro.measures import check_measure, unfairness_witness
from repro.ts import (
    cycle_through_all,
    decompose,
    explore,
    find_path_indices,
    internal_transitions,
    lasso_from_indices,
)
from repro.workloads import random_system

SEEDS = range(400)


def harvest():
    """(system, measure, lasso) triples from the random batch."""
    cases = []
    for seed in SEEDS:
        system = random_system(seed, states=9, commands=3, extra_edges=7)
        graph = explore(system)
        try:
            synthesis = synthesize_measure(graph)
        except NotFairlyTerminatingError:
            continue
        result = check_measure(graph, synthesis.assignment())
        assert result.is_fair_termination_measure
        assignment = synthesis.assignment()
        for component in decompose(graph).components:
            if not internal_transitions(graph, component):
                continue
            cycle = cycle_through_all(graph, component)
            stem = find_path_indices(graph, graph.initial_indices, cycle[0].source)
            lasso = lasso_from_indices(graph, stem, cycle)
            cases.append((system, assignment, lasso))
    return cases


def test_e05_soundness_witnesses(benchmark):
    cases = harvest()
    assert cases, "random batch produced no fairly terminating systems"
    agreed = 0
    levels = {}
    for system, assignment, lasso in cases:
        witness = unfairness_witness(system, assignment, lasso)
        spec_violations = {
            v.command
            for v in STRONG_FAIRNESS.violations(
                lasso, system.enabled, system.commands()
            )
        }
        assert witness.command in spec_violations
        agreed += 1
        levels[witness.level] = levels.get(witness.level, 0) + 1

    table = Table(
        "E5 — Theorem 1: every in-SCC infinite computation refuted",
        ["random systems", "fairly terminating", "lassos tested",
         "witnesses agreeing with spec", "witness levels"],
    )
    fair_count = len({id(s) for s, _, _ in cases})
    table.add(len(SEEDS), fair_count, len(cases), agreed,
              " ".join(f"{k}:{v}" for k, v in sorted(levels.items())))
    record_table(table)

    system, assignment, lasso = cases[0]
    benchmark(unfairness_witness, system, assignment, lasso)
