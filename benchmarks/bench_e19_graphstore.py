"""E19 — the content-addressed graph store: warm mmap loads and
chunk-reusing incremental re-exploration.

The graph-store PR replaced the v1 whole-graph JSON disk cache with
:mod:`repro.engine.graphstore`: CSR and interner columns published as
content-addressed binary chunks, per-configuration manifests, mmap-backed
zero-copy warm loads and per-command-digest incremental re-exploration.
This bench puts numbers on all four paths over the million-state
``HypercubeRebound`` family —

* **cold** — ``explore_with_cache`` into an empty directory: full BFS
  plus the chunked store;
* **v1 warm** — the retired JSON format, kept as
  ``store_graph_v1``/``load_graph_v1`` for migration: parse the whole
  graph back from one JSON document;
* **v2 warm** — a manifest hit: sha-verified mmap of the chunk files,
  columns adopted zero-copy, no exploration at all;
* **incremental** — a one-command edit of the program (the ``rebound``
  kick changes): unchanged commands replay masks and posts from the
  mapped base columns, only the edited command re-evaluates —

and asserts **bit-identical graphs** (via :func:`repro.engine.graph_digest`)
for every path against a from-scratch serial exploration.  Rows land in
the experiment tables and in ``BENCH_cache.json`` at the repo root.

``ENGINE_BENCH_SMOKE=1`` shrinks the family to CI size; the acceptance
gates — v2 warm ≥ 10× faster than v1 warm, and the single-command edit
reusing ≥ 50 % of the base's chunks — apply only at full scale, and the
verdict records the scale.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path

from common import (
    MIN_REPEATS,
    last_peak_rss_kb,
    last_telemetry,
    maybe_enable_bench_telemetry,
    record_table,
    timed_median,
)

from repro.analysis import Table
from repro.engine import graph_digest
from repro.engine import graphstore
from repro.engine.graphstore import (
    explore_with_cache,
    last_outcome,
    load_graph_v1,
    store_graph_v1,
)
from repro.ts import explore
from repro.workloads import grid_hypercube_rebound

SMOKE = os.environ.get("ENGINE_BENCH_SMOKE") == "1"
SCALE = "smoke" if SMOKE else "full"
REPEATS = MIN_REPEATS
#: (dims, side): (6, 9) is the (side+1)^dims = 10^6-state instance the
#: acceptance gates are phrased over.
DIMS, SIDE = (3, 3) if SMOKE else (6, 9)
MIN_WARM_SPEEDUP = 10.0
MIN_CHUNK_REUSE = 0.5
OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_cache.json"


def _base_program():
    return grid_hypercube_rebound(DIMS, SIDE, kick=1)


def _edited_program():
    """The same family with only the ``rebound`` body changed — one
    command digest differs, everything else replays."""
    return grid_hypercube_rebound(DIMS, SIDE, kick=2)


def _prime(cache_dir, graph, program):
    """Store ``graph`` for ``program`` the way ``explore_with_cache``
    would, including the family tag the incremental planner matches on."""
    key = graphstore.exploration_cache_key(program, None, None, None)
    family = graphstore.family_key(program, None, None, None)
    return graphstore.store_graph(graph, cache_dir, key, family=family)


def _timed_cold(tmp_root):
    """Median explore-and-store time into a fresh directory each repeat."""
    counter = {"n": 0}

    def fresh():
        counter["n"] += 1
        cache_dir = Path(tmp_root) / f"cold-{counter['n']}"
        return (_base_program(), cache_dir)

    def run(arg):
        program, cache_dir = arg
        graph, hit = explore_with_cache(program, cache_dir=cache_dir)
        assert not hit
        return graph

    median, graphs = timed_median(run, repeats=REPEATS, setup=fresh)
    return median, graphs[0]


def _timed_v1_warm(cache_dir, graph, program):
    """Median JSON reload time of the retired v1 format."""
    key = graphstore.v1_cache_key(program, None, None, None)
    store_graph_v1(graph, cache_dir, key)
    median, results = timed_median(
        lambda program: load_graph_v1(program, cache_dir, key),
        repeats=REPEATS,
        setup=_base_program,
    )
    assert all(loaded is not None for loaded in results)
    return median, results[0]


def _timed_v2_warm(cache_dir):
    """Median manifest-hit time: verify, mmap, adopt — no exploration."""
    median, results = timed_median(
        lambda program: explore_with_cache(program, cache_dir=cache_dir),
        repeats=REPEATS,
        setup=_base_program,
    )
    for _, was_hit in results:
        assert was_hit, "primed directory should serve every warm load"
    return median, results[0][0]


def _incremental_reuse(cache_dir):
    """One incremental run against a base-only directory: the chunk-reuse
    and state-replay figures the acceptance gate is phrased over."""
    graph, hit = explore_with_cache(_edited_program(), cache_dir=cache_dir)
    outcome = last_outcome()
    assert not hit
    assert outcome.kind == "incremental", (
        f"expected the edited program to re-explore incrementally, "
        f"got {outcome.kind!r}"
    )
    return graph, outcome


def _timed_incremental(cache_dir):
    """Median incremental re-exploration time.  The edited manifest is
    removed between repeats so every run takes the replay path instead of
    a plain hit (its chunks may stay: they are content-addressed, and
    republishing dedups against them)."""
    manifest = graphstore._manifest_path(
        cache_dir,
        graphstore.exploration_cache_key(_edited_program(), None, None, None),
    )

    def without_manifest():
        manifest.unlink(missing_ok=True)
        return _edited_program()

    median, results = timed_median(
        lambda program: explore_with_cache(program, cache_dir=cache_dir),
        repeats=REPEATS,
        setup=without_manifest,
    )
    assert last_outcome().kind == "incremental"
    return median, results[0][0]


def test_e19_graphstore():
    maybe_enable_bench_telemetry()
    table = Table(
        "E19 — graph store: cold, v1 warm, mmap warm, incremental "
        f"({'smoke sizes' if SMOKE else 'full sizes'})",
        ["path", "states", "seconds", "vs v1 warm", "chunks reused",
         "identical"],
    )
    family = f"rebound({DIMS},{SIDE})"
    with tempfile.TemporaryDirectory(prefix="e19-cache-") as tmp_root:
        cold_s, graph = _timed_cold(tmp_root)
        cold_rss = last_peak_rss_kb()
        states = len(graph)
        reference = graph_digest(graph)
        edited_reference = graph_digest(explore(_edited_program()))

        warm_dir = Path(tmp_root) / "warm"
        report = _prime(warm_dir, graph, _base_program())
        v1_s, v1_graph = _timed_v1_warm(warm_dir, graph, _base_program())
        v2_s, v2_graph = _timed_v2_warm(warm_dir)
        warm_telemetry = last_telemetry()

        incr_dir = Path(tmp_root) / "incremental"
        _prime(incr_dir, graph, _base_program())
        incr_graph, outcome = _incremental_reuse(incr_dir)
        incr_s, incr_timed_graph = _timed_incremental(incr_dir)

        identical = {
            "v1_warm": graph_digest(v1_graph) == reference,
            "v2_warm": graph_digest(v2_graph) == reference,
            "incremental": graph_digest(incr_graph) == edited_reference,
            "incremental_timed":
                graph_digest(incr_timed_graph) == edited_reference,
        }
        assert all(identical.values()), f"digest drift: {identical}"

        warm_speedup = v1_s / v2_s if v2_s > 0 else float("inf")
        chunk_reuse = (
            outcome.chunks_reused / outcome.chunks_total
            if outcome.chunks_total
            else 0.0
        )

        table.add("cold explore+store", states, f"{cold_s:.3f}", "-", "-",
                  "yes")
        table.add("v1 warm (json)", states, f"{v1_s:.3f}", "1.00x", "-",
                  "yes")
        table.add("v2 warm (mmap)", states, f"{v2_s:.3f}",
                  f"{warm_speedup:.1f}x", "-", "yes")
        table.add(
            "incremental (1-cmd edit)", states, f"{incr_s:.3f}", "-",
            f"{outcome.chunks_reused}/{outcome.chunks_total} "
            f"({chunk_reuse:.0%})",
            "yes",
        )
        record_table(table)

        rows = [
            {
                "workload": family,
                "measurement": "cold",
                "states": states,
                "cold_seconds": cold_s,
                "chunks_written": report.chunks_total,
                "peak_rss_kb": cold_rss,
                "identical": True,
            },
            {
                "workload": family,
                "measurement": "v1_warm",
                "states": states,
                "v1_warm_seconds": v1_s,
                "identical": identical["v1_warm"],
            },
            {
                "workload": family,
                "measurement": "v2_warm",
                "states": states,
                "v2_warm_seconds": v2_s,
                "warm_speedup_over_v1": warm_speedup,
                "peak_rss_kb": last_peak_rss_kb(),
                "telemetry": warm_telemetry,
                "identical": identical["v2_warm"],
            },
            {
                "workload": family,
                "measurement": "incremental",
                "states": states,
                "incremental_seconds": incr_s,
                "chunks_total": outcome.chunks_total,
                "chunks_reused": outcome.chunks_reused,
                "chunk_reuse": chunk_reuse,
                "reused_states": outcome.reused_states,
                "fresh_states": outcome.fresh_states,
                "identical": identical["incremental"],
            },
        ]

    OUTPUT.write_text(json.dumps({
        "experiment": "E19",
        "scale": SCALE,
        "repeats": REPEATS,
        "family": family,
        "warm_speedup_over_v1": warm_speedup,
        "chunk_reuse": chunk_reuse,
        "verdict": {
            "scale": SCALE,
            "gates_apply": not SMOKE,
            "min_warm_speedup_required": (
                MIN_WARM_SPEEDUP if not SMOKE else None
            ),
            "min_chunk_reuse_required": (
                MIN_CHUNK_REUSE if not SMOKE else None
            ),
            "digest_identical": identical,
        },
        "rows": rows,
    }, indent=2) + "\n")

    if not SMOKE:
        assert warm_speedup >= MIN_WARM_SPEEDUP, (
            f"mmap warm load is only {warm_speedup:.1f}x the v1 JSON "
            f"reload on {family} (need {MIN_WARM_SPEEDUP}x)"
        )
        assert chunk_reuse >= MIN_CHUNK_REUSE, (
            f"the one-command edit reused only {chunk_reuse:.0%} of the "
            f"base's chunks on {family} (need {MIN_CHUNK_REUSE:.0%})"
        )
