"""E21 — columnar verification plane vs the per-transition tuple checker.

The verify-plane PR (DESIGN §6h) packs each state's stack into four flat
int64 columns and checks the paper's verification conditions (V_A),
(V_NonI), (V_NoC) with a batched kernel over the graph's own
``src``/``cmd``/``dst``/``enabled-mask`` columns — integer compares for
rank decreases, one bitmask OR per edge for the enabled union — instead
of building a tuple task per transition.  Parallel fan-out ships only a
shm manifest and an eid range per worker; outcomes come back as compact
columns and only the rare violating edges are re-decoded through the
object-level level search (for its exact diagnostics).

This bench measures the claim at million-state scale, one configuration
per fresh child interpreter (clean caches, own RSS high-water mark):

* ``tuple --jobs 4`` — the PR 9 baseline: per-transition tuple tasks,
  chunked over the pool (``REPRO_VERIFY_PLANE=0``).
* ``plane --jobs 4`` — the columnar plane under the same job count.
* ``plane serial`` — the kernel forced in-process
  (``REPRO_VERIFY_PLANE=1``), isolating the batching win from the pool.
* ``tuple serial`` — the untouched serial reference engine.

Workloads: ``grid_hypercube(6, 9)`` (10⁶ states, coordinate-sum
assertion, non-violating) and ``hypercube_trap(6, 9)`` (the same
assertion violated on the trap cycle).  Every configuration must produce
a bit-identical result digest — verdict, counts, summary and violation
renderings — and leave ``/dev/shm`` clean.

Gate (full scale only): ``plane --jobs 4`` wall time ≥ 2× faster than
``tuple --jobs 4`` on the non-violating grid family.  Identity and leak
assertions apply at every scale; ``ENGINE_BENCH_SMOKE=1`` substitutes
hundreds-of-states instances for CI.  Rows land in ``BENCH_verify.json``.
"""

from __future__ import annotations

import hashlib
import json
import os
import pathlib
import statistics
import subprocess
import sys
import time

from common import MIN_REPEATS, peak_rss_kb, record_table

from repro.analysis import Table
from repro.engine.shm import SEGMENT_PREFIX

SMOKE = os.environ.get("ENGINE_BENCH_SMOKE") == "1"
SCALE = "smoke" if SMOKE else "full"
REPEATS = MIN_REPEATS
MIN_SPEEDUP = 2.0
CORES = os.cpu_count() or 1
OUTPUT = pathlib.Path(__file__).resolve().parent.parent / "BENCH_verify.json"

#: (dims, side) per family; full sizes are the E17/E18 million-state
#: instances, smoke sizes walk the same code paths in hundreds of states.
GRID_SHAPE = (4, 3) if SMOKE else (6, 9)  # 256 / 1 000 000 states
TRAP_SHAPE = (4, 4) if SMOKE else (6, 9)  # 627 / 1 000 002 states

#: label → (env, n_jobs).  ``REPRO_VERIFY_PLANE=0`` is the tuple engine
#: (the PR 9 baseline); ``1`` forces the columnar kernel even where the
#: adaptive rule would stay tuple; unset lets the dispatch decide.  At
#: full scale the plane column runs the adaptive default (the smoke
#: instances sit below the work cutoff, where the adaptive rule correctly
#: stays tuple — so smoke forces the plane to keep exercising its paths).
CONFIGS = {
    "tuple_jobs4": ({"REPRO_VERIFY_PLANE": "0"}, 4),
    "plane_jobs4": ({"REPRO_VERIFY_PLANE": "1"} if SMOKE else {}, 4),
    "plane_serial": ({"REPRO_VERIFY_PLANE": "1"}, None),
    "tuple_serial": ({"REPRO_VERIFY_PLANE": "0"}, None),
}


def shm_leaks():
    """Names of ``repro-shm*`` segments currently present in ``/dev/shm``."""
    try:
        return sorted(
            p.name for p in pathlib.Path("/dev/shm").glob(f"{SEGMENT_PREFIX}*")
        )
    except OSError:  # pragma: no cover - no tmpfs (non-Linux)
        return []


# ---------------------------------------------------------------------------
# Child-process measurement (module-level: must pickle across fork/spawn)
# ---------------------------------------------------------------------------


def _family(name: str):
    from repro.measures import StackAssertion
    from repro.workloads import grid_hypercube, hypercube_trap

    if name == "grid":
        dims, side = GRID_SHAPE
        system = grid_hypercube(dims, side)
    else:
        dims, side = TRAP_SHAPE
        system = hypercube_trap(dims, side)
    total = " + ".join(f"x{i}" for i in range(dims))
    assertion = StackAssertion.parse([f"T: {total}"])
    return system, assertion.compile()


def _child_check(family: str, n_jobs, instrument: bool = False):
    """Explore ``family`` untimed, then time ``check_measure`` alone.

    The engine under test is selected by the environment the child was
    launched with (its pool workers inherit it).  The digest covers every
    observable of the result — verdict, counts, flags, summary line and
    the rendering of each violation — so two configurations agree iff
    their checks are bit-identical.
    """
    from repro.measures import check_measure
    from repro.telemetry import core as telemetry
    from repro.ts import explore

    if instrument:
        telemetry.reset()
        telemetry.enable()
    system, assignment = _family(family)
    graph = explore(system)
    start = time.perf_counter()
    result = check_measure(graph, assignment, keep_witnesses=False, n_jobs=n_jobs)
    seconds = time.perf_counter() - start
    observable = json.dumps({
        "ok": result.ok,
        "transitions_checked": result.transitions_checked,
        "complete": result.complete,
        "order_well_founded": result.order_well_founded,
        "summary": result.summary(),
        "violations": [str(v) for v in result.violations],
    }, sort_keys=True)
    counters = {}
    if instrument:
        snapshot = telemetry.registry().snapshot()["counters"]
        counters = {
            name: value
            for name, value in sorted(snapshot.items())
            if name.startswith(("verify.plane", "shm.", "parallel.dispatch"))
        }
    return {
        "seconds": seconds,
        "digest": hashlib.sha256(observable.encode("utf-8")).hexdigest(),
        "transitions": result.transitions_checked,
        "violations": len(result.violations),
        "ok": result.ok,
        "peak_rss_kb": peak_rss_kb(),
        "counters": counters,
        "leaked": shm_leaks(),
    }


def _in_fresh_child(family: str, n_jobs, env, instrument: bool = False):
    """Run one measurement in a brand-new top-level interpreter.

    Fresh subprocess, not a pool child: the parallel configurations spin
    up their own worker pool, and a pool inside a pool worker deadlocks
    under fork.  The in-process fallback (sandboxes that cannot exec)
    restores the parent's environment afterwards; the JSON records which
    mode ran.
    """
    here = pathlib.Path(__file__).resolve()
    child_env = dict(os.environ)
    src = str(here.parent.parent / "src")
    child_env["PYTHONPATH"] = os.pathsep.join(
        [src] + ([child_env["PYTHONPATH"]] if child_env.get("PYTHONPATH") else [])
    )
    child_env.update(env)
    command = [
        sys.executable, str(here), family,
        "none" if n_jobs is None else str(n_jobs),
        "1" if instrument else "0",
    ]
    try:
        proc = subprocess.run(
            command, env=child_env, capture_output=True, text=True,
            timeout=3600,
        )
    except (OSError, subprocess.SubprocessError):
        saved = dict(os.environ)
        try:
            os.environ.update(env)
            return _child_check(family, n_jobs, instrument), False
        finally:
            os.environ.clear()
            os.environ.update(saved)
    assert proc.returncode == 0, (
        f"child measurement failed ({family}, n_jobs={n_jobs}, env={env}):\n"
        f"{proc.stderr}"
    )
    return json.loads(proc.stdout.strip().splitlines()[-1]), True


def _measure_config(family: str, n_jobs, env, repeats=REPEATS,
                    instrument=False):
    runs = []
    isolated = True
    for _ in range(repeats):
        result, in_child = _in_fresh_child(family, n_jobs, env, instrument)
        isolated = isolated and in_child
        assert not result["leaked"], (
            f"{family}, env={env}: leaked shm segments {result['leaked']}"
        )
        runs.append(result)
    digest = runs[0]["digest"]
    assert all(run["digest"] == digest for run in runs), (
        f"{family}, env={env}: result digest varies across repeats"
    )
    return {
        "seconds": statistics.median(run["seconds"] for run in runs),
        "digest": digest,
        "transitions": runs[0]["transitions"],
        "violations": runs[0]["violations"],
        "ok": runs[0]["ok"],
        "peak_rss_kb": runs[0]["peak_rss_kb"],
        "counters": runs[-1]["counters"],
        "isolated": isolated,
    }


# ---------------------------------------------------------------------------
# The experiment
# ---------------------------------------------------------------------------


def test_e21_verify_plane():
    table = Table(
        f"E21 — columnar verify plane vs tuple checker ({SCALE} sizes, "
        f"{CORES} cores)",
        ["workload", "transitions", "tuple --jobs 4", "plane --jobs 4",
         "speedup", "plane serial", "tuple serial", "identical", "leaks"],
    )
    rows = []
    speedups = {}
    for family, shape, expect_ok in (
        ("grid", GRID_SHAPE, True),
        ("trap", TRAP_SHAPE, False),
    ):
        measured = {}
        for label, (env, n_jobs) in CONFIGS.items():
            # The gate columns get the full repeat count; the forced
            # serial references exist for identity, one run each — except
            # the instrumented plane run, which also proves engagement.
            gate_column = label in ("tuple_jobs4", "plane_jobs4")
            measured[label] = _measure_config(
                family, n_jobs, env,
                repeats=REPEATS if gate_column else 1,
                instrument=(label == "plane_jobs4"),
            )
        baseline = measured["tuple_jobs4"]
        for label, config in measured.items():
            assert config["digest"] == baseline["digest"], (
                f"{family}: {label} check result differs from the tuple "
                f"baseline"
            )
        assert baseline["ok"] is expect_ok, (
            f"{family}: expected ok={expect_ok}, got {baseline['ok']}"
        )
        plane_counters = measured["plane_jobs4"]["counters"]
        assert plane_counters.get("verify.plane.engaged", 0) > 0, (
            f"{family}: the plane --jobs 4 run never engaged the columnar "
            f"kernel (counters: {plane_counters})"
        )
        speedup = (
            baseline["seconds"] / measured["plane_jobs4"]["seconds"]
            if measured["plane_jobs4"]["seconds"] > 0 else float("inf")
        )
        speedups[family] = speedup
        table.add(
            f"{family}{shape}",
            baseline["transitions"],
            f"{baseline['seconds']:.3f}",
            f"{measured['plane_jobs4']['seconds']:.3f}",
            f"{speedup:.2f}x",
            f"{measured['plane_serial']['seconds']:.3f}",
            f"{measured['tuple_serial']['seconds']:.3f}",
            "yes",
            "none",
        )
        rows.append({
            "workload": family,
            "shape": list(shape),
            "transitions": baseline["transitions"],
            "violations": baseline["violations"],
            "ok": baseline["ok"],
            "result_digest": baseline["digest"],
            "tuple_jobs4_seconds": baseline["seconds"],
            "plane_jobs4_seconds": measured["plane_jobs4"]["seconds"],
            "plane_serial_seconds": measured["plane_serial"]["seconds"],
            "tuple_serial_seconds": measured["tuple_serial"]["seconds"],
            "speedup": speedup,
            "peak_rss_kb": measured["plane_jobs4"]["peak_rss_kb"],
            "baseline_peak_rss_kb": baseline["peak_rss_kb"],
            "plane_counters": plane_counters,
            "child_isolated": all(c["isolated"] for c in measured.values()),
            "identical": True,
            "leaked_segments": 0,
        })
    record_table(table)

    parent_leaks = shm_leaks()
    gate_applies = not SMOKE
    OUTPUT.write_text(json.dumps({
        "experiment": "E21",
        "scale": SCALE,
        "cores": CORES,
        "repeats": REPEATS,
        "verdict": {
            "scale": SCALE,
            "digests_identical": True,
            "leaked_segments": parent_leaks,
            "speedup_gate_applies": gate_applies,
            "speedup_gate_reason": None if gate_applies else "smoke scale",
            "min_speedup_required": MIN_SPEEDUP if gate_applies else None,
            "gate_family": "grid",
            "note": (
                "speedup = tuple --jobs 4 wall time over plane --jobs 4, "
                "check_measure only (exploration untimed); on a single-core "
                "machine both job counts resolve serial, so the ratio "
                "isolates the columnar kernel itself; peak_rss_kb is "
                "max(RUSAGE_SELF, RUSAGE_CHILDREN)"
            ),
        },
        "rows": rows,
    }, indent=2) + "\n")

    assert not parent_leaks, f"shm segments leaked: {parent_leaks}"
    if gate_applies:
        assert speedups["grid"] >= MIN_SPEEDUP, (
            f"columnar verify plane is only {speedups['grid']:.2f}x the "
            f"tuple --jobs 4 baseline on grid_hypercube{GRID_SHAPE} "
            f"(need {MIN_SPEEDUP}x)"
        )


if __name__ == "__main__":
    # Child mode (see _in_fresh_child): <family> <n_jobs|none> <instrument>.
    _family_name, _jobs_raw, _instrument_raw = sys.argv[1:4]
    _jobs = None if _jobs_raw == "none" else int(_jobs_raw)
    print(json.dumps(_child_check(_family_name, _jobs, _instrument_raw == "1")))
