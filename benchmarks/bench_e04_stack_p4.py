"""E4 — §3.4 + §4.2, P4/P4': a hierarchy of unfairness hypotheses.

Paper artifact: ``P4'`` stacks the ℓb-hypothesis above ℓa's; §4.2 argues,
per executed command, which hypothesis is active.  Rows: that case
analysis, mechanically — ``la`` discharges at level 0, ``lb`` at level 1,
``lc`` at level 2 (level 1 where ℓa happens to be enabled: the §5 freedom
of choice).  The benchmark times the exact check.
"""

from common import record_table

from repro.analysis import Table, histogram_line
from repro.measures import annotate
from repro.ts import explore
from repro.workloads import p4, p4_assertion, p4_bounded


def exact_check():
    return annotate(p4_bounded(3, 240), p4_assertion()).check()


def test_e04_stack_hierarchy_p4(benchmark):
    unbounded = annotate(p4(3, 240), p4_assertion()).check(max_states=2500)
    assert unbounded.ok

    result = exact_check()
    assert result.is_fair_termination_measure
    by_command = {}
    for witness in result.witnesses:
        histogram = by_command.setdefault(witness.transition.command, {})
        histogram[witness.level] = histogram.get(witness.level, 0) + 1

    table = Table(
        "E4 — P4' §4.2 case analysis (active hypothesis per executed command)",
        ["executed", "active levels (level:count)", "paper's argument"],
    )
    table.add("la", histogram_line(by_command["la"]),
              "T active: μ^T decreases")
    table.add("lb", histogram_line(by_command["lb"]),
              "ℓa-hypothesis active: enabled, or z mod 117 decreases")
    table.add("lc", histogram_line(by_command["lc"]),
              "ℓb-hypothesis active: ℓb enabled, not executed")
    assert set(by_command["la"]) == {0}
    assert set(by_command["lb"]) == {1}
    assert 2 in by_command["lc"] and set(by_command["lc"]) <= {1, 2}
    record_table(table)
    benchmark(exact_check)
