"""E18 — the zero-copy data plane: shm columns + batched guard kernels.

The data-plane PR moved value-plane exploration onto three mechanisms
(DESIGN §6f): a shared-memory arena (`engine/shm.py`) that publishes the
interned value rows and streamed CSR columns as named segments so pool
workers attach zero-copy instead of unpickling frontiers; batched guard
kernels (`gcl/compile.py`) that evaluate one compiled guard over a whole
round's pending states per call; and recycled scratch arenas in the
Tarjan/refinement inner loops.  This bench measures the end-to-end claim
on the million-state families of
:func:`repro.workloads.large_scaling_suite`:

* **baseline vs batched wall clock** — ``explore`` with the value plane
  disabled (``REPRO_VALUE_PLANE=0``: exactly the PR 5 serial path) vs the
  value-plane coordinator (``n_jobs=2``; on a single-core machine its
  rounds stay serial but *batched*, which is where the speedup lives —
  on multi-core it additionally fans out over shm).  Each configuration
  runs in a fresh child process (clean caches, own RSS high-water mark).
* **digest identity across all three wire formats** — serial baseline,
  forced sharded-pickled (``REPRO_FORCE_PARALLEL=1`` with the plane off)
  and forced sharded-shm (plane on) must produce bit-identical
  :func:`~repro.engine.shard.graph_digest` values.
* **zero leaked segments** — every child scans ``/dev/shm`` for
  ``repro-shm*`` after its run and the parent re-scans at the end; any
  surviving segment fails the bench.

Gates (full scale, recorded in the verdict): batched ≥ 1.5× baseline on
at least one family, digests identical, zero leaks.  The forced-parallel
digest columns are measured once (they exist for identity, not speed —
on one core a forced pool round is pure overhead).  The shm-path run
also records the ``shm.*`` / ``batch.*`` telemetry counters so the JSON
shows the data plane actually engaged.  ``ENGINE_BENCH_SMOKE=1`` shrinks
the workloads to CI size.  Rows land in ``BENCH_shm.json``.
"""

from __future__ import annotations

import json
import os
import pathlib
import statistics
import subprocess
import sys
import time

from common import MIN_REPEATS, peak_rss_kb, record_table

from repro.analysis import Table
from repro.engine.shard import graph_digest
from repro.engine.shm import SEGMENT_PREFIX
from repro.ts import explore
from repro.workloads import large_scaling_suite

SMOKE = os.environ.get("ENGINE_BENCH_SMOKE") == "1"
SCALE = "smoke" if SMOKE else "full"
REPEATS = MIN_REPEATS
#: ISSUE 7 names grid_hypercube / distributed_ring / hypercube_trap; the
#: scaling suite spells the first two ``hypercube``/``ring``.  The ≥1.5×
#: gate passes if *any* of them clears it.
GATE_PREFIXES = ("hypercube", "ring")
MIN_SPEEDUP = 1.5
CORES = os.cpu_count() or 1
OUTPUT = pathlib.Path(__file__).resolve().parent.parent / "BENCH_shm.json"


def shm_leaks():
    """Names of ``repro-shm*`` segments currently present in ``/dev/shm``."""
    try:
        return sorted(
            p.name for p in pathlib.Path("/dev/shm").glob(f"{SEGMENT_PREFIX}*")
        )
    except OSError:  # pragma: no cover - no tmpfs (non-Linux)
        return []


# ---------------------------------------------------------------------------
# Child-process measurement (module-level: must pickle across fork/spawn)
# ---------------------------------------------------------------------------


def _family_system(family: str):
    factories = dict(large_scaling_suite(SCALE))
    return factories[family]()


def _child_explore(family: str, n_jobs, instrument: bool = False):
    """Explore ``family`` in this (child) process; self-reported metrics.

    The wire format (value plane on/off, forced parallel) is selected by
    the environment the child was launched with, so its own pool workers
    inherit it.  ``instrument`` additionally collects telemetry so the
    row can record the ``shm.*``/``batch.*`` counters.
    """
    from repro.telemetry import core as telemetry

    if instrument:
        telemetry.reset()
        telemetry.enable()
    system = _family_system(family)
    start = time.perf_counter()
    graph = explore(system, n_jobs=n_jobs)
    seconds = time.perf_counter() - start
    counters = {}
    if instrument:
        snapshot = telemetry.registry().snapshot()["counters"]
        counters = {
            name: value
            for name, value in sorted(snapshot.items())
            if name.startswith(("shm.", "batch."))
            or name == "shard.values_rounds"
        }
    return {
        "seconds": seconds,
        "digest": graph_digest(graph),
        "states": len(graph),
        "transitions": len(graph.transitions),
        "peak_rss_kb": peak_rss_kb(),
        "counters": counters,
        "leaked": shm_leaks(),
    }


def _in_fresh_child(family: str, n_jobs, env, instrument: bool = False):
    """Run one measurement in a brand-new top-level interpreter.

    A fresh *subprocess* (not a pool child: the forced-parallel configs
    spin up their own worker pool, and a pool inside a pool worker
    deadlocks under fork) gives each configuration clean successor
    caches, its own RSS high-water mark, and an environment that dies
    with it.  The in-process fallback (sandboxes that cannot exec)
    restores the parent's environment afterwards; the JSON records which
    mode ran.
    """
    here = pathlib.Path(__file__).resolve()
    child_env = dict(os.environ)
    src = str(here.parent.parent / "src")
    child_env["PYTHONPATH"] = os.pathsep.join(
        [src] + ([child_env["PYTHONPATH"]] if child_env.get("PYTHONPATH") else [])
    )
    child_env.update(env)
    command = [
        sys.executable, str(here), family,
        "none" if n_jobs is None else str(n_jobs),
        "1" if instrument else "0",
    ]
    try:
        proc = subprocess.run(
            command, env=child_env, capture_output=True, text=True,
            timeout=3600,
        )
    except (OSError, subprocess.SubprocessError):
        saved = dict(os.environ)
        try:
            os.environ.update(env)
            return _child_explore(family, n_jobs, instrument), False
        finally:
            os.environ.clear()
            os.environ.update(saved)
    assert proc.returncode == 0, (
        f"child measurement failed ({family}, n_jobs={n_jobs}, env={env}):\n"
        f"{proc.stderr}"
    )
    return json.loads(proc.stdout.strip().splitlines()[-1]), True


# ---------------------------------------------------------------------------
# The experiment
# ---------------------------------------------------------------------------

#: The three wire formats under test (label → (env, n_jobs)).
BASELINE_ENV = {"REPRO_VALUE_PLANE": "0"}
SHM_FORCED_ENV = {"REPRO_FORCE_PARALLEL": "1"}
PICKLED_FORCED_ENV = {"REPRO_VALUE_PLANE": "0", "REPRO_FORCE_PARALLEL": "1"}


def _measure_config(family: str, n_jobs, env, repeats=REPEATS,
                    instrument=False):
    runs = []
    isolated = True
    for _ in range(repeats):
        result, in_child = _in_fresh_child(family, n_jobs, env, instrument)
        isolated = isolated and in_child
        assert not result["leaked"], (
            f"{family}, env={env}: leaked shm segments {result['leaked']}"
        )
        runs.append(result)
    digest = runs[0]["digest"]
    assert all(run["digest"] == digest for run in runs), (
        f"{family}, env={env}: digest varies across repeats"
    )
    return {
        "seconds": statistics.median(run["seconds"] for run in runs),
        "digest": digest,
        "states": runs[0]["states"],
        "transitions": runs[0]["transitions"],
        "peak_rss_kb": runs[0]["peak_rss_kb"],
        "counters": runs[-1]["counters"],
        "isolated": isolated,
    }


def test_e18_shm_kernels():
    table = Table(
        "E18 — zero-copy data plane vs PR 5 baseline "
        f"({'smoke sizes' if SMOKE else 'full sizes'}, {CORES} cores)",
        ["workload", "states", "baseline s", "batched s", "speedup",
         "shm s", "pickled s", "identical", "leaks"],
    )
    rows = []
    speedups = {}
    for name, _factory in large_scaling_suite(SCALE):
        baseline = _measure_config(name, None, BASELINE_ENV)
        batched = _measure_config(name, 2, {})
        # The forced columns exist for wire-format identity, not speed —
        # one run each; the shm one is the instrumented one.
        shm_forced = _measure_config(
            name, 2, SHM_FORCED_ENV, repeats=1, instrument=True
        )
        pickled_forced = _measure_config(
            name, 2, PICKLED_FORCED_ENV, repeats=1
        )
        for label, config in (
            ("batched", batched),
            ("sharded-shm", shm_forced),
            ("sharded-pickled", pickled_forced),
        ):
            assert config["digest"] == baseline["digest"], (
                f"{name}: {label} graph differs from the serial baseline"
            )
            assert config["states"] == baseline["states"]
            assert config["transitions"] == baseline["transitions"]
        assert shm_forced["counters"].get("shm.segments_created", 0) > 0 or \
            shm_forced["counters"].get("shm.unavailable", 0) > 0, (
            f"{name}: forced-shm run never touched the arena "
            f"(counters: {shm_forced['counters']})"
        )
        speedup = (
            baseline["seconds"] / batched["seconds"]
            if batched["seconds"] > 0 else float("inf")
        )
        speedups[name] = speedup
        table.add(
            name,
            baseline["states"],
            f"{baseline['seconds']:.3f}",
            f"{batched['seconds']:.3f}",
            f"{speedup:.2f}x",
            f"{shm_forced['seconds']:.3f}",
            f"{pickled_forced['seconds']:.3f}",
            "yes",
            "none",
        )
        rows.append({
            "workload": name,
            "states": baseline["states"],
            "transitions": baseline["transitions"],
            "graph_digest": baseline["digest"],
            "baseline_seconds": baseline["seconds"],
            "batched_seconds": batched["seconds"],
            "speedup": speedup,
            "shm_forced_seconds": shm_forced["seconds"],
            "pickled_forced_seconds": pickled_forced["seconds"],
            "peak_rss_kb": batched["peak_rss_kb"],
            "baseline_peak_rss_kb": baseline["peak_rss_kb"],
            "shm_counters": shm_forced["counters"],
            "child_isolated": baseline["isolated"] and batched["isolated"],
            "identical": True,
            "leaked_segments": 0,
        })
    record_table(table)

    parent_leaks = shm_leaks()
    best_family = max(speedups, key=lambda name: speedups[name])
    gate_candidates = {
        name: value for name, value in speedups.items()
        if name.startswith(GATE_PREFIXES)
    }
    gate_applies = not SMOKE
    OUTPUT.write_text(json.dumps({
        "experiment": "E18",
        "scale": SCALE,
        "cores": CORES,
        "repeats": REPEATS,
        "best_family": best_family,
        "best_speedup": speedups[best_family],
        "verdict": {
            "scale": SCALE,
            "digests_identical": True,
            "leaked_segments": parent_leaks,
            "speedup_gate_applies": gate_applies,
            "speedup_gate_reason": None if gate_applies else "smoke scale",
            "min_speedup_required": MIN_SPEEDUP if gate_applies else None,
            "note": (
                "batched column = value-plane coordinator at n_jobs=2; on a "
                "single-core machine its rounds run serial-batched (no pool), "
                "so the speedup isolates the kernel batching itself; "
                "peak_rss_kb is max(RUSAGE_SELF, RUSAGE_CHILDREN)"
            ),
        },
        "rows": rows,
    }, indent=2) + "\n")

    assert not parent_leaks, f"shm segments leaked: {parent_leaks}"
    if gate_applies:
        best_gate = max(gate_candidates.values())
        assert best_gate >= MIN_SPEEDUP, (
            f"batched data plane is only {best_gate:.2f}x the PR 5 baseline "
            f"on {sorted(gate_candidates)} (need {MIN_SPEEDUP}x on at "
            "least one)"
        )


if __name__ == "__main__":
    # Child mode (see _in_fresh_child): <family> <n_jobs|none> <instrument>.
    _family, _jobs_raw, _instrument_raw = sys.argv[1:4]
    print(json.dumps(_child_explore(
        _family,
        None if _jobs_raw == "none" else int(_jobs_raw),
        _instrument_raw == "1",
    )))
