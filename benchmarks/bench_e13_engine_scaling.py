"""E13 — the indexed engine against the seed implementation, at scale.

The engine PR rewired the hot paths (decide → synthesise → verify) onto
interned state indices, packed CSR transition arrays and memoized graph
analyses, and added a process-pool fan-out (``n_jobs``).  The seed's
serial implementations are preserved verbatim in
:mod:`repro.engine.reference` as the "before" column; this bench runs
both (plus the engine at ``n_jobs=4``) over one workload per family and
asserts

* **byte-identical results** — the serial and parallel engine runs (and
  the reference) produce the same verdicts, witnesses, stacks and
  verification outcomes, compared as serialized JSON; and
* **≥ 1.5× wall-clock speedup** on the largest family (the counter grid)
  for the engine at ``n_jobs=4`` against the seed's serial path.

Rows land in the experiment tables (see EXPERIMENTS.md §E13) and in
``BENCH_engine.json`` at the repo root.  ``ENGINE_BENCH_SMOKE=1``
shrinks every workload to CI size — tiny instances measure nothing, but
they exercise every code path, including the pool.  The **speedup gate
applies only at full scale**; at smoke scale the headline number is the
serial-engine speedup (process pools on millisecond workloads measure
pool overhead, not the engine), and the verdict records which scale and
column produced it.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from common import (
    MIN_REPEATS,
    last_peak_rss_kb,
    last_telemetry,
    maybe_enable_bench_telemetry,
    record_table,
    timed_median,
)

from repro.analysis import Table
from repro.completeness import synthesize_measure
from repro.engine.reference import (
    check_measure_reference,
    find_fair_cycle_reference,
    synthesize_measure_reference,
)
from repro.fairness import find_fair_cycle
from repro.measures import check_measure
from repro.ts import explore
from repro.workloads import engine_scaling_suite

SMOKE = os.environ.get("ENGINE_BENCH_SMOKE") == "1"
SCALE = "smoke" if SMOKE else "full"
REPEATS = MIN_REPEATS if SMOKE else max(MIN_REPEATS, 3)
JOBS = 4
LARGEST = "grid"  # the family the speedup criterion is judged on
MIN_SPEEDUP = 1.5
#: A jobs row may not lose to its serial counterpart by more than 10%
#: (plus a small absolute allowance so sub-millisecond noise cannot trip
#: the relative bound on smoke-sized rows).
JOBS_TOLERANCE = 1.10
JOBS_SLACK_SECONDS = 0.05
#: At full scale, no family may regress below this fraction of the seed —
#: the guard against "fast on the big graphs, slower on the tiny ones"
#: (the pre-lazy analyses setup cost E13 once caught on random(7,64)).
MIN_SERIAL_FLOOR = 0.95
OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_engine.json"


def _witness_fingerprint(witness) -> object:
    if witness is None:
        return None
    return {
        "lasso": witness.lasso.describe(),
        "region": list(witness.region),
        "enabled": sorted(witness.enabled_on_cycle),
        "executed": sorted(witness.executed_on_cycle),
    }


def _fingerprint(graph, witness, synthesis, check) -> str:
    """The run's complete observable outcome, as canonical JSON.

    Serial, parallel and reference runs must agree on this *string* —
    that is the acceptance bar's "byte-identical verdicts/witnesses".
    """
    payload = {
        "states": len(graph),
        "transitions": len(graph.transitions),
        "verdict": "fair-cycle" if witness is not None else "terminates",
        "witness": _witness_fingerprint(witness),
        "stacks": None,
        "check": None,
    }
    if synthesis is not None:
        payload["stacks"] = [
            synthesis.stacks[index].render() for index in range(len(graph))
        ]
        payload["check"] = {
            "transitions_checked": check.transitions_checked,
            "ok": check.ok,
            "witnesses": [
                [str(w.transition), w.level, w.subject, w.reason]
                for w in check.witnesses
            ],
            "violations": len(check.violations),
        }
    return json.dumps(payload, sort_keys=True)


def _pipeline_reference(graph):
    witness = find_fair_cycle_reference(graph)
    if witness is not None:
        return _fingerprint(graph, witness, None, None)
    synthesis = synthesize_measure_reference(graph)
    check = check_measure_reference(graph, synthesis.assignment())
    return _fingerprint(graph, None, synthesis, check)


def _pipeline_engine(graph, n_jobs):
    witness = find_fair_cycle(graph)
    if witness is not None:
        return _fingerprint(graph, witness, None, None)
    synthesis = synthesize_measure(graph, n_jobs=n_jobs)
    check = check_measure(graph, synthesis.assignment(), n_jobs=n_jobs)
    return _fingerprint(graph, None, synthesis, check)


def _timed(make_system, pipeline):
    """Median-of-``REPEATS`` wall clock (after a warmup run); each repeat
    explores afresh so the engine's memoized analyses are rebuilt (their
    cost is part of the measurement, not amortised away)."""
    median, results = timed_median(
        pipeline,
        repeats=REPEATS,
        setup=lambda: explore(make_system()),
    )
    fingerprint = results[0]
    assert all(result == fingerprint for result in results)
    return median, fingerprint


def test_e13_engine_scaling():
    maybe_enable_bench_telemetry()
    table = Table(
        "E13 — indexed engine vs seed pipeline "
        f"({'smoke sizes' if SMOKE else 'full sizes'})",
        ["workload", "states", "verdict", "seed s", "engine s",
         f"jobs={JOBS} s", "speedup", "identical"],
    )
    rows = []
    headline_speedups = {}
    for name, make in engine_scaling_suite(SCALE):
        graph = explore(make())
        seed_s, fp_reference = _timed(make, _pipeline_reference)
        serial_s, fp_serial = _timed(make, lambda g: _pipeline_engine(g, 1))
        jobs_s, fp_parallel = _timed(make, lambda g: _pipeline_engine(g, JOBS))
        assert fp_serial == fp_parallel, f"{name}: serial != n_jobs={JOBS}"
        assert fp_serial == fp_reference, f"{name}: engine != seed"
        assert jobs_s <= serial_s * JOBS_TOLERANCE + JOBS_SLACK_SECONDS, (
            f"{name}: n_jobs={JOBS} took {jobs_s:.3f}s vs {serial_s:.3f}s "
            f"serial — adaptive dispatch should never lose to serial"
        )
        verdict = json.loads(fp_serial)["verdict"]
        serial_speedup = seed_s / serial_s if serial_s > 0 else float("inf")
        jobs_speedup = seed_s / jobs_s if jobs_s > 0 else float("inf")
        # At smoke scale the jobs column measures pool overhead on
        # millisecond workloads; the serial engine is the honest headline.
        headline = serial_speedup if SMOKE else jobs_speedup
        headline_speedups[name] = headline
        table.add(
            name, len(graph), verdict, f"{seed_s:.3f}", f"{serial_s:.3f}",
            f"{jobs_s:.3f}", f"{headline:.2f}x", "yes",
        )
        rows.append({
            "workload": name,
            "states": len(graph),
            "transitions": len(graph.transitions),
            "verdict": verdict,
            "seed_seconds": seed_s,
            "engine_serial_seconds": serial_s,
            f"engine_jobs{JOBS}_seconds": jobs_s,
            "serial_speedup": serial_speedup,
            f"jobs{JOBS}_speedup": jobs_speedup,
            "speedup": headline,
            "peak_rss_kb": last_peak_rss_kb(),
            "telemetry": last_telemetry(),
            "identical": True,
        })
    record_table(table)

    largest = next(
        name for name in headline_speedups if name.startswith(LARGEST)
    )
    OUTPUT.write_text(json.dumps({
        "experiment": "E13",
        "scale": SCALE,
        "jobs": JOBS,
        "repeats": REPEATS,
        "largest_family": largest,
        "largest_speedup": headline_speedups[largest],
        "verdict": {
            "scale": SCALE,
            "headline_column": "engine_serial" if SMOKE else f"jobs{JOBS}",
            "speedup_gate_applies": not SMOKE,
            "min_speedup_required": MIN_SPEEDUP if not SMOKE else None,
            "jobs_vs_serial_tolerance": JOBS_TOLERANCE,
            "min_serial_floor": MIN_SERIAL_FLOOR if not SMOKE else None,
        },
        "min_speedup_required": MIN_SPEEDUP if not SMOKE else None,
        "rows": rows,
    }, indent=2) + "\n")

    if not SMOKE:
        assert headline_speedups[largest] >= MIN_SPEEDUP, (
            f"engine is only {headline_speedups[largest]:.2f}x the "
            f"seed pipeline on {largest} (need {MIN_SPEEDUP}x)"
        )
        # No-regression floor: the engine must not lose to the seed on
        # *any* family, tiny ones included.
        for row in rows:
            assert row["serial_speedup"] >= MIN_SERIAL_FLOOR, (
                f"{row['workload']}: engine serial is "
                f"{row['serial_speedup']:.2f}x the seed "
                f"(floor {MIN_SERIAL_FLOOR}x)"
            )
