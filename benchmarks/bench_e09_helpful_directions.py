"""E9 — §3.4 remark + §5: stack assertions vs helpful directions.

Paper artifact: proving ``P4`` with the earlier recursive proof rules
means "reason[ing] about three different programs: the original and two
syntactically derived programs"; stack assertions annotate the one,
unaltered program.  Rows: per workload — derived-program count, nesting
depth (which equals the synthesised stack height: helpful directions
identify one measure level at a time, §5), and total states reasoned
about across derived programs vs the single annotation.  The benchmark
times the helpful-directions proof on rings(3).
"""

from common import record_table

from repro.analysis import Table
from repro.baselines import helpful_directions_proof
from repro.completeness import synthesize_measure
from repro.measures import check_measure
from repro.ts import explore
from repro.workloads import counter_grid, nested_rings, p2, p4_bounded

WORKLOADS = [
    ("P2(6)", lambda: p2(6)),
    ("P4b(2,10,5)", lambda: p4_bounded(2, 10, 5)),
    ("rings(1)", lambda: nested_rings(1)),
    ("rings(2)", lambda: nested_rings(2)),
    ("rings(3)", lambda: nested_rings(3)),
    ("rings(4)", lambda: nested_rings(4)),
    ("grid(4,4)", lambda: counter_grid(4, 4)),
]


def test_e09_helpful_directions(benchmark):
    table = Table(
        "E9 — proof objects: stack assertions vs helpful directions",
        ["workload", "states", "stack height", "stack: programs/states",
         "HD: programs", "HD: nesting depth", "HD: states reasoned"],
    )
    for name, make in WORKLOADS:
        graph = explore(make())
        synthesis = synthesize_measure(graph)
        check_measure(graph, synthesis.assignment()).raise_if_failed()
        proof = helpful_directions_proof(graph)
        # §5 correspondence: one derived level per stack level.
        assert proof.nesting_depth == synthesis.max_stack_height()
        table.add(
            name,
            len(graph),
            synthesis.max_stack_height(),
            f"1 / {len(graph)}",
            proof.derived_program_count,
            proof.nesting_depth,
            proof.states_reasoned_about,
        )
    record_table(table)

    rings_graph = explore(nested_rings(3))
    benchmark(helpful_directions_proof, rings_graph)
