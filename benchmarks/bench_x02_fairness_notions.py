"""X2 (extension) — the [LPS81] trio: impartiality, justice, fairness.

§2 cites [LPS81]'s hierarchy; the deciders make it a table.  Termination
verdicts across notions satisfy ``weak-fair term ⟹ strong-fair term ⟹
impartial term`` (asserted row by row), and the escape ring realises the
strict middle gap — exactly the ``P3`` phenomenon (§3.3): a command enabled
intermittently may be starved under justice but not under fairness.  The
benchmark times the three deciders on the philosophers' graph.
"""

from common import record_table

from repro.analysis import Table
from repro.fairness import (
    find_fair_cycle,
    find_impartial_cycle,
    find_weakly_fair_cycle,
)
from repro.ts import explore
from repro.workloads import (
    dining_philosophers,
    escape_ring,
    nested_rings,
    p2,
    p4_bounded,
    token_ring,
)

WORKLOADS = [
    ("P2(6)", lambda: p2(6)),
    ("P4b(2,6,3)", lambda: p4_bounded(2, 6, 3)),
    ("escape_ring(4)", lambda: escape_ring(4)),
    ("rings(3)", lambda: nested_rings(3)),
    ("philosophers(3)", lambda: dining_philosophers(3)),
    ("token_ring(5)", lambda: token_ring(5)),
]


def verdicts(graph):
    return (
        find_weakly_fair_cycle(graph) is None,
        find_fair_cycle(graph) is None,
        find_impartial_cycle(graph) is None,
    )


def test_x02_fairness_notion_hierarchy(benchmark):
    table = Table(
        "X2 — termination under the [LPS81] notions "
        "(weak ⟹ strong ⟹ impartial, per row)",
        ["workload", "states", "weak-fair term", "strong-fair term",
         "impartial term"],
    )
    gap_seen = False
    for name, make in WORKLOADS:
        graph = explore(make())
        weak, strong, impartial = verdicts(graph)
        # The hierarchy, asserted.
        if weak:
            assert strong, name
        if strong:
            assert impartial, name
        if strong and not weak:
            gap_seen = True
        table.add(
            name,
            len(graph),
            "yes" if weak else "NO",
            "yes" if strong else "NO",
            "yes" if impartial else "NO",
        )
    assert gap_seen  # the P3 phenomenon is realised in the zoo
    record_table(table)

    graph = explore(dining_philosophers(3))
    benchmark(verdicts, graph)
