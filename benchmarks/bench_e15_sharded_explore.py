"""E15 — sharded million-state exploration vs serial, time and memory.

The sharding PR made ``explore()`` frontier-parallel (per-BFS-round
hash-sharded fan-out over the persistent pool, bit-identical merge — see
DESIGN §6d) and replaced the graph's per-state transition lists with
packed ``array('q')`` columns plus enabled bitmasks.  This bench measures
both claims on the million-state families of
:func:`repro.workloads.large_scaling_suite`:

* **serial vs sharded wall clock** — ``explore`` at ``n_jobs`` ∈ {serial,
  2, 4}, each run in a *fresh child process* (fork) so successor caches,
  interned objects and allocator state cannot leak between
  configurations, with the child reporting its own exploration seconds
  and peak RSS;
* **bit-identical graphs** — every configuration and every repeat must
  produce the same :func:`~repro.engine.shard.graph_digest`;
* **compact vs legacy memory** — one child explores and keeps the compact
  graph; another additionally materializes the pre-PR per-state-list
  representation (``IndexedTransition`` tuples, per-state outgoing/
  incoming tuples, per-state enabled frozensets) on top of it; the ratio
  of their peak RSS bounds the compact build's footprint from above
  (the legacy child's peak also covers the compact columns, so the true
  ratio is slightly *smaller* than reported).

Gates (full scale only, recorded in the verdict): sharded ≥ 2× serial on
the largest family — applied only on multi-core machines, since adaptive
dispatch correctly refuses to fan out on one core — and compact peak RSS
≤ 0.6× the legacy representation.  ``ENGINE_BENCH_SMOKE=1`` shrinks the
workloads to CI size (hundreds of states; digests and plumbing are still
exercised end to end).  Rows land in ``BENCH_shard.json``.
"""

from __future__ import annotations

import json
import os
import statistics
import time
from pathlib import Path

from common import MIN_REPEATS, peak_rss_kb, record_table

from repro.analysis import Table
from repro.engine.shard import graph_digest
from repro.ts import explore
from repro.workloads import large_scaling_suite

SMOKE = os.environ.get("ENGINE_BENCH_SMOKE") == "1"
SCALE = "smoke" if SMOKE else "full"
REPEATS = MIN_REPEATS
JOBS_COLUMNS = (2, 4)
LARGEST = "hypercube"  # the family the acceptance gates are judged on
MIN_SPEEDUP = 2.0
MAX_RSS_RATIO = 0.6
CORES = os.cpu_count() or 1
OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_shard.json"


# ---------------------------------------------------------------------------
# Child-process measurement (module-level: must pickle across fork/spawn)
# ---------------------------------------------------------------------------


def _family_system(family: str):
    factories = dict(large_scaling_suite(SCALE))
    return factories[family]()


def _child_explore(family: str, n_jobs):
    """Explore ``family`` in this (child) process; self-reported metrics."""
    system = _family_system(family)
    start = time.perf_counter()
    graph = explore(system, n_jobs=n_jobs)
    seconds = time.perf_counter() - start
    return {
        "seconds": seconds,
        "digest": graph_digest(graph),
        "states": len(graph),
        "transitions": len(graph.transitions),
        "peak_rss_kb": peak_rss_kb(),
    }


def _child_legacy_rss(family: str):
    """Explore, then materialize the pre-sharding per-state representation
    (what ``ReachableGraph`` stored before the packed columns): the full
    ``IndexedTransition`` tuple, per-state outgoing/incoming tuples and a
    fresh frozenset of enabled commands per state."""
    system = _family_system(family)
    graph = explore(system)
    transitions = tuple(graph.transitions)
    out = [[] for _ in range(len(graph))]
    incoming = [[] for _ in range(len(graph))]
    for t in transitions:
        out[t.source].append(t)
        incoming[t.target].append(t)
    out_tuples = tuple(tuple(ts) for ts in out)
    in_tuples = tuple(tuple(ts) for ts in incoming)
    enabled = tuple(
        frozenset(set(graph.enabled_at(i))) for i in range(len(graph))
    )
    # Keep everything alive until the high-water mark is read.
    alive = (transitions, out_tuples, in_tuples, enabled)
    return {
        "peak_rss_kb": peak_rss_kb(),
        "transitions": len(alive[0]),
    }


def _in_fresh_child(fn, *args):
    """Run ``fn(*args)`` in a brand-new single-worker process.

    A fresh process per measurement gives each configuration a clean RSS
    baseline (``ru_maxrss`` is a lifetime high-water mark) and an empty
    successor cache.  Falls back to in-process execution where process
    pools are unavailable (restricted sandboxes) — the JSON records which.
    """
    try:
        from concurrent.futures import ProcessPoolExecutor

        with ProcessPoolExecutor(max_workers=1) as pool:
            return pool.submit(fn, *args).result(), True
    except (ImportError, OSError, RuntimeError, PermissionError):
        return fn(*args), False


# ---------------------------------------------------------------------------
# The experiment
# ---------------------------------------------------------------------------


def _measure_config(family: str, n_jobs):
    runs = []
    isolated = True
    for _ in range(REPEATS):
        result, in_child = _in_fresh_child(_child_explore, family, n_jobs)
        isolated = isolated and in_child
        runs.append(result)
    digest = runs[0]["digest"]
    assert all(run["digest"] == digest for run in runs), (
        f"{family}, n_jobs={n_jobs}: digest varies across repeats"
    )
    return {
        "seconds": statistics.median(run["seconds"] for run in runs),
        "digest": digest,
        "states": runs[0]["states"],
        "transitions": runs[0]["transitions"],
        "peak_rss_kb": runs[0]["peak_rss_kb"],
        "isolated": isolated,
    }


def test_e15_sharded_explore():
    speedup_gate = not SMOKE and CORES >= 2
    table = Table(
        "E15 — sharded exploration vs serial "
        f"({'smoke sizes' if SMOKE else 'full sizes'}, {CORES} cores)",
        ["workload", "states", "serial s"]
        + [f"jobs={j} s" for j in JOBS_COLUMNS]
        + ["best speedup", "rss ratio", "identical"],
    )
    rows = []
    best_speedups = {}
    rss_ratios = {}
    for name, _factory in large_scaling_suite(SCALE):
        serial = _measure_config(name, None)
        shard_cols = {j: _measure_config(name, j) for j in JOBS_COLUMNS}
        for j, col in shard_cols.items():
            assert col["digest"] == serial["digest"], (
                f"{name}: n_jobs={j} graph differs from serial"
            )
            assert col["states"] == serial["states"]
            assert col["transitions"] == serial["transitions"]
        legacy, legacy_isolated = _in_fresh_child(_child_legacy_rss, name)
        compact_rss = serial["peak_rss_kb"]
        legacy_rss = legacy["peak_rss_kb"]
        rss_ratio = (
            compact_rss / legacy_rss
            if compact_rss and legacy_rss
            else None
        )
        speedups = {
            j: (serial["seconds"] / col["seconds"] if col["seconds"] > 0
                else float("inf"))
            for j, col in shard_cols.items()
        }
        best = max(speedups.values())
        best_speedups[name] = best
        rss_ratios[name] = rss_ratio
        table.add(
            name,
            serial["states"],
            f"{serial['seconds']:.3f}",
            *(f"{shard_cols[j]['seconds']:.3f}" for j in JOBS_COLUMNS),
            f"{best:.2f}x",
            f"{rss_ratio:.2f}" if rss_ratio is not None else "n/a",
            "yes",
        )
        rows.append({
            "workload": name,
            "states": serial["states"],
            "transitions": serial["transitions"],
            "graph_digest": serial["digest"],
            "serial_seconds": serial["seconds"],
            **{
                f"jobs{j}_seconds": shard_cols[j]["seconds"]
                for j in JOBS_COLUMNS
            },
            **{f"jobs{j}_speedup": speedups[j] for j in JOBS_COLUMNS},
            "best_speedup": best,
            "peak_rss_kb": compact_rss,
            "legacy_peak_rss_kb": legacy_rss,
            "rss_ratio": rss_ratio,
            "child_isolated": serial["isolated"] and legacy_isolated,
            "identical": True,
        })
    record_table(table)

    largest = next(name for name in best_speedups if name.startswith(LARGEST))
    rss_gate = not SMOKE and rss_ratios[largest] is not None
    OUTPUT.write_text(json.dumps({
        "experiment": "E15",
        "scale": SCALE,
        "cores": CORES,
        "repeats": REPEATS,
        "jobs_columns": list(JOBS_COLUMNS),
        "largest_family": largest,
        "largest_best_speedup": best_speedups[largest],
        "largest_rss_ratio": rss_ratios[largest],
        "verdict": {
            "scale": SCALE,
            "digests_identical": True,
            "speedup_gate_applies": speedup_gate,
            "speedup_gate_reason": (
                None if speedup_gate else
                ("smoke scale" if SMOKE else
                 f"single-core machine ({CORES} core): adaptive dispatch "
                 "correctly stays serial, so a parallel speedup is "
                 "unmeasurable here")
            ),
            "min_speedup_required": MIN_SPEEDUP if speedup_gate else None,
            "rss_gate_applies": rss_gate,
            "max_rss_ratio_required": MAX_RSS_RATIO if rss_gate else None,
        },
        "rows": rows,
    }, indent=2) + "\n")

    if speedup_gate:
        assert best_speedups[largest] >= MIN_SPEEDUP, (
            f"sharded exploration is only {best_speedups[largest]:.2f}x "
            f"serial on {largest} (need {MIN_SPEEDUP}x)"
        )
    if rss_gate:
        assert rss_ratios[largest] <= MAX_RSS_RATIO, (
            f"compact graph peak RSS is {rss_ratios[largest]:.2f}x the "
            f"legacy representation on {largest} "
            f"(must be ≤ {MAX_RSS_RATIO}x)"
        )
