"""X1 (extension) — generalized fairness ([FK84]) end to end.

The paper notes its proofs "could have been formulated for Rabin pairs
conditions (thus yielding a method for general fairness [FK84])"; this
bench exercises that claim as implemented: the same escape-ring family is
decided, synthesised and verified under three requirement sets —
per-command strong fairness, group fairness plus the escape requirement,
and group fairness alone (under which circling forever is fair and the
system does *not* fairly terminate).  Rows: verdicts and measure shapes per
requirement set; the benchmark times the generalized pipeline.
"""

from common import record_table

from repro.analysis import Table
from repro.completeness import NotFairlyTerminatingError, synthesize_measure
from repro.fairness import (
    check_general_fair_termination,
    command_requirements,
    group_requirement,
)
from repro.measures import check_measure
from repro.ts import explore
from repro.workloads import escape_ring

PERIODS = (2, 4, 8, 16)


def requirement_sets(system):
    per_command = command_requirements(system)
    move = group_requirement(system, "move", ["advance"])
    escape = next(r for r in per_command if r.name == "escape")
    return [
        ("per-command (paper)", per_command),
        ("group move + escape", (move, escape)),
        ("group move only", (move,)),
    ]


def pipeline(period):
    system = escape_ring(period)
    graph = explore(system)
    results = []
    for name, requirements in requirement_sets(system):
        terminates, witness = check_general_fair_termination(graph, requirements)
        if terminates:
            synthesis = synthesize_measure(graph, requirements=requirements)
            check = check_measure(
                graph, synthesis.assignment(), requirements=requirements
            )
            assert check.ok
            results.append((name, True, synthesis.max_stack_height(), None))
        else:
            try:
                synthesize_measure(graph, requirements=requirements)
                raise AssertionError("synthesis should fail")
            except NotFairlyTerminatingError:
                pass
            results.append((name, False, None, witness))
    return results


def test_x01_generalized_fairness(benchmark):
    table = Table(
        "X1 — escape ring under three fairness-requirement sets",
        ["period", "requirement set", "fairly terminates", "stack height",
         "witness cycle"],
    )
    for period in PERIODS:
        for name, terminates, height, witness in pipeline(period):
            table.add(
                period,
                name,
                "yes" if terminates else "NO",
                height if height is not None else "—",
                "—" if witness is None else ",".join(
                    sorted(set(witness.lasso.cycle.commands))
                ),
            )
    # The qualitative pattern: coarsening the requirements flips the verdict.
    rows = pipeline(4)
    assert rows[0][1] and rows[1][1] and not rows[2][1]
    record_table(table)
    benchmark(pipeline, 8)
