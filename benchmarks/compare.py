#!/usr/bin/env python3
"""Diff the committed ``BENCH_*.json`` files against a baseline.

The benches regenerate the ``BENCH_*.json`` artifacts in the repo root;
this tool answers "did that run get faster or slower, per family?" by
comparing every timing column row-by-row against either

* the same files at a **git revision** (``--rev HEAD~1``, the default
  being ``HEAD`` — i.e. working tree vs. last commit), or
* a **directory** of previously saved artifacts (``--baseline-dir``).

Rows are matched by their workload/family label; every numeric
``*_seconds`` column is compared as ``speedup = baseline / current`` (so
>1.0 means the current tree is faster).  Exit status is 1 when any
column regressed past ``--regression`` (default 0.8×, i.e. >25 % slower),
which is what lets CI use this as a cheap perf tripwire::

    python benchmarks/compare.py                    # working tree vs HEAD
    python benchmarks/compare.py --rev v0           # vs a tag/commit
    python benchmarks/compare.py --baseline-dir /tmp/old --only BENCH_shm.json

``--trajectory [DIR]`` is a different lens: no baseline, no gate — it
reads *every* ``BENCH_*.json`` under ``DIR`` (default: the repo root) and
prints one flat history table of wall seconds and peak RSS per family per
experiment, so a reviewer can eyeball how cost moved across the whole
bench suite as the stack of PRs grew::

    python benchmarks/compare.py --trajectory
    python benchmarks/compare.py --trajectory /tmp/artifacts-from-ci

Only timing columns participate in the gate; state counts, digests and
RSS columns are reported informationally when they changed.  Peak-RSS
columns are *not* compared across the PR that changed their accounting
(``RUSAGE_SELF`` → ``max(SELF, CHILDREN)`` — see ``benchmarks/common.py``);
a larger RSS figure against an older baseline may be the accounting fix,
not a regression.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import subprocess
import sys
from typing import Any, Dict, Iterable, List, Optional, Tuple

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

#: Row keys (in priority order) used to match rows across the two runs.
ROW_KEYS = ("workload", "family", "measurement", "name")

#: A timing column regressing past this factor fails the run (``--regression``).
DEFAULT_REGRESSION_GATE = 0.8


def _load_current(path: pathlib.Path) -> Optional[Dict[str, Any]]:
    try:
        return json.loads(path.read_text())
    except (OSError, json.JSONDecodeError):
        return None


def _load_git(rev: str, name: str) -> Optional[Dict[str, Any]]:
    proc = subprocess.run(
        ["git", "show", f"{rev}:{name}"],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
    )
    if proc.returncode != 0:
        return None
    try:
        return json.loads(proc.stdout)
    except json.JSONDecodeError:
        return None


def _row_label(row: Dict[str, Any]) -> Optional[str]:
    for key in ROW_KEYS:
        value = row.get(key)
        if isinstance(value, str):
            # A file may key rows on workload *and* qualify them (E17 rows
            # repeat workloads across measurements) — fold the qualifiers in.
            extras = [
                str(row[k])
                for k in ("mode", "measurement")
                if k != key and isinstance(row.get(k), str)
            ]
            return " / ".join([value] + extras)
    return None


def _rows_by_label(payload: Dict[str, Any]) -> Dict[str, Dict[str, Any]]:
    rows = payload.get("rows")
    labelled: Dict[str, Dict[str, Any]] = {}
    if isinstance(rows, list):
        for row in rows:
            if isinstance(row, dict):
                label = _row_label(row)
                if label is not None and label not in labelled:
                    labelled[label] = row
    return labelled


def _timing_columns(row: Dict[str, Any]) -> List[str]:
    return [
        key
        for key, value in row.items()
        if key.endswith("_seconds")
        and isinstance(value, (int, float))
        and not isinstance(value, bool)
    ]


def compare_file(
    name: str,
    current: Dict[str, Any],
    baseline: Dict[str, Any],
) -> Tuple[List[Tuple[str, str, float, float, float]], List[str]]:
    """``(timing_diffs, notes)`` for one artifact.

    Each diff is ``(row_label, column, baseline_s, current_s, speedup)``.
    """
    diffs: List[Tuple[str, str, float, float, float]] = []
    notes: List[str] = []
    old_rows = _rows_by_label(baseline)
    new_rows = _rows_by_label(current)
    for label in new_rows:
        if label not in old_rows:
            notes.append(f"{name}: new row {label!r} (no baseline)")
    for label in old_rows:
        if label not in new_rows:
            notes.append(f"{name}: row {label!r} dropped since baseline")
    for label, new_row in new_rows.items():
        old_row = old_rows.get(label)
        if old_row is None:
            continue
        for column in _timing_columns(new_row):
            old_value = old_row.get(column)
            if not isinstance(old_value, (int, float)) or isinstance(old_value, bool):
                continue
            new_value = new_row[column]
            speedup = old_value / new_value if new_value > 0 else float("inf")
            diffs.append((label, column, float(old_value), float(new_value), speedup))
        for column in ("states", "transitions", "graph_digest", "digest"):
            if column in old_row and column in new_row and old_row[column] != new_row[column]:
                notes.append(
                    f"{name}: {label!r} {column} changed "
                    f"{old_row[column]!r} -> {new_row[column]!r}"
                )
    return diffs, notes


def _render(
    name: str, diffs: Iterable[Tuple[str, str, float, float, float]], gate: float
) -> Tuple[List[str], int]:
    lines: List[str] = []
    regressions = 0
    rows = [
        (label, column, f"{old:.3f}", f"{new:.3f}", f"{speedup:.2f}x",
         "REGRESSION" if speedup < gate else "")
        for label, column, old, new, speedup in diffs
    ]
    regressions = sum(1 for row in rows if row[5])
    headers = ("family", "column", "baseline_s", "current_s", "speedup", "")
    widths = [
        max(len(headers[i]), *(len(row[i]) for row in rows)) if rows else len(headers[i])
        for i in range(len(headers))
    ]
    lines.append(f"== {name} ==")
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)).rstrip())
    for row in rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)).rstrip())
    return lines, regressions


def trajectory_rows(
    directory: pathlib.Path,
) -> List[Tuple[str, str, str, float, Optional[float]]]:
    """Every timing column of every artifact under ``directory``.

    Returns ``(experiment, family, column, seconds, peak_rss_kb)`` tuples,
    ordered by artifact name then row order; ``peak_rss_kb`` is ``None``
    for rows that do not record RSS (e.g. child-process measurements).

    An artifact that cannot be read, fails to parse, or does not hold a
    JSON object is skipped with one warning on stderr — a stale or
    half-written file must never take the whole history table down.
    """
    collected: List[Tuple[str, str, str, float, Optional[float]]] = []
    for path in sorted(directory.glob("BENCH_*.json")):
        payload = _load_current(path)
        if payload is None:
            print(
                f"warning: {path.name}: unreadable or malformed JSON — "
                f"skipped",
                file=sys.stderr,
            )
            continue
        if not isinstance(payload, dict):
            print(
                f"warning: {path.name}: top level is "
                f"{type(payload).__name__}, not a JSON object — skipped",
                file=sys.stderr,
            )
            continue
        experiment = payload.get("experiment")
        if not isinstance(experiment, str):
            experiment = path.stem.replace("BENCH_", "")
        for label, row in _rows_by_label(payload).items():
            rss = row.get("peak_rss_kb")
            if not isinstance(rss, (int, float)) or isinstance(rss, bool):
                rss = None
            for column in _timing_columns(row):
                collected.append(
                    (experiment, label, column, float(row[column]), rss)
                )
    return collected


def render_trajectory(
    rows: List[Tuple[str, str, str, float, Optional[float]]],
) -> str:
    headers = ("experiment", "family", "column", "seconds", "peak_rss_kb")
    cells = [
        (experiment, label, column, f"{seconds:.3f}",
         "-" if rss is None else f"{rss:.0f}")
        for experiment, label, column, seconds, rss in rows
    ]
    widths = [
        max(len(headers[i]), *(len(row[i]) for row in cells))
        if cells else len(headers[i])
        for i in range(len(headers))
    ]
    lines = ["  ".join(h.ljust(w) for h, w in zip(headers, widths)).rstrip()]
    previous = None
    for row in cells:
        if previous is not None and row[0] != previous:
            lines.append("")
        previous = row[0]
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)).rstrip())
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--rev",
        default="HEAD",
        help="git revision holding the baseline BENCH_*.json (default: HEAD)",
    )
    parser.add_argument(
        "--baseline-dir",
        type=pathlib.Path,
        default=None,
        help="read baseline artifacts from this directory instead of git",
    )
    parser.add_argument(
        "--only",
        action="append",
        default=None,
        metavar="FILE",
        help="compare only these artifact names (repeatable)",
    )
    parser.add_argument(
        "--regression",
        type=float,
        default=DEFAULT_REGRESSION_GATE,
        help=(
            "fail (exit 1) when any timing column's speedup drops below "
            f"this factor (default {DEFAULT_REGRESSION_GATE})"
        ),
    )
    parser.add_argument(
        "--trajectory",
        nargs="?",
        type=pathlib.Path,
        const=REPO_ROOT,
        default=None,
        metavar="DIR",
        help=(
            "print the wall/RSS history table over every BENCH_*.json "
            "under DIR (default: the repo root) instead of diffing"
        ),
    )
    args = parser.parse_args(argv)

    if args.trajectory is not None:
        rows = trajectory_rows(args.trajectory)
        if not rows:
            print(
                f"no BENCH_*.json artifacts under {args.trajectory}",
                file=sys.stderr,
            )
            return 2
        print(render_trajectory(rows))
        return 0

    names = args.only or sorted(
        path.name for path in REPO_ROOT.glob("BENCH_*.json")
    )
    if not names:
        print("no BENCH_*.json artifacts found", file=sys.stderr)
        return 2

    total_regressions = 0
    compared = 0
    all_notes: List[str] = []
    for name in names:
        current = _load_current(REPO_ROOT / name)
        if current is None:
            all_notes.append(f"{name}: unreadable in working tree — skipped")
            continue
        if args.baseline_dir is not None:
            baseline = _load_current(args.baseline_dir / name)
            source = str(args.baseline_dir)
        else:
            baseline = _load_git(args.rev, name)
            source = args.rev
        if baseline is None:
            all_notes.append(f"{name}: no baseline at {source} — skipped")
            continue
        diffs, notes = compare_file(name, current, baseline)
        all_notes.extend(notes)
        if not diffs:
            all_notes.append(f"{name}: no comparable timing rows")
            continue
        compared += 1
        lines, regressions = _render(name, diffs, args.regression)
        total_regressions += regressions
        print("\n".join(lines))
        print()
    for note in all_notes:
        print(f"note: {note}")
    if compared == 0:
        print("nothing compared", file=sys.stderr)
        return 2
    if total_regressions:
        print(
            f"{total_regressions} timing column(s) regressed past "
            f"{args.regression}x",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
