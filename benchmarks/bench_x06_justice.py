"""X6 (extension) — justice measures: weak fairness needs no hierarchy.

Contrast result made quantitative: under *strong* fairness the
``nested_rings`` family forces stack heights that grow linearly with the
nesting depth (E12/E9); under *justice* (weak fairness) either the program
does not terminate at all (intermittently enabled escapes may be starved
fairly) or a **flat** measure — height ≤ 2, one hypothesis per SCC —
suffices.  Rows: per workload, the justice verdict, the synthesised
justice-measure height, and the strong-fairness height for comparison;
plus the random-batch agreement between justice synthesis and the
weakly-fair-cycle decision.  The benchmark times justice synthesis + check
on the largest grid.
"""

from common import record_table

from repro.analysis import Table
from repro.completeness import synthesize_measure
from repro.fairness import find_weakly_fair_cycle
from repro.measures import check_measure
from repro.measures.justice import (
    NotWeaklyTerminatingError,
    check_justice_measure,
    synthesize_justice_measure,
)
from repro.ts import explore
from repro.workloads import (
    counter_grid,
    distractor_loop,
    nested_rings,
    p2,
    random_system,
)

WORKLOADS = [
    ("P2(6)", lambda: p2(6)),
    ("distractors(4,3)", lambda: distractor_loop(4, 3)),
    ("grid(9,9)", lambda: counter_grid(9, 9)),
    ("rings(0)", lambda: nested_rings(0)),
    ("rings(1)", lambda: nested_rings(1)),
    ("rings(3)", lambda: nested_rings(3)),
]


def justice_pipeline(system):
    graph = explore(system)
    synthesis = synthesize_justice_measure(graph)
    result = check_justice_measure(graph, synthesis.assignment())
    assert result.ok
    return synthesis


def test_x06_justice_measures(benchmark):
    table = Table(
        "X6 — justice vs strong fairness: verdicts and measure heights",
        ["workload", "terminates under justice", "justice height",
         "terminates under strong fairness", "strong height"],
    )
    for name, make in WORKLOADS:
        graph = explore(make())
        strong_synthesis = synthesize_measure(graph)
        assert check_measure(graph, strong_synthesis.assignment()).ok
        strong_height = strong_synthesis.max_stack_height()
        try:
            justice_synthesis = synthesize_justice_measure(graph)
            assert check_justice_measure(
                graph, justice_synthesis.assignment()
            ).ok
            justice_verdict = "yes"
            justice_height = justice_synthesis.max_stack_height()
            assert justice_height <= 2
        except NotWeaklyTerminatingError:
            justice_verdict = "NO"
            justice_height = "—"
        table.add(name, justice_verdict, justice_height, "yes", strong_height)
    record_table(table)

    # Random-batch agreement: justice synthesis ⟺ no weakly fair cycle.
    agree = 0
    total = 0
    weakly_terminating = 0
    for seed in range(150):
        graph = explore(random_system(seed, states=8, commands=3, extra_edges=7))
        expected = find_weakly_fair_cycle(graph) is None
        try:
            synthesis = synthesize_justice_measure(graph)
            got = True
            assert check_justice_measure(graph, synthesis.assignment()).ok
        except NotWeaklyTerminatingError:
            got = False
        total += 1
        if got == expected:
            agree += 1
        if expected:
            weakly_terminating += 1
    assert agree == total
    batch = Table(
        "X6b — justice synthesis vs weakly-fair-cycle decision",
        ["random systems", "weakly terminating", "agreements"],
    )
    batch.add(total, weakly_terminating, f"{agree}/{total}")
    record_table(batch)

    benchmark(justice_pipeline, counter_grid(19, 19))
