"""X7 (extension) — fairness in practice: scheduler latency.

The paper's hypotheses are about *all* fair schedules; this bench runs
actual ones.  Rows: mean steps to termination of fairly terminating
workloads under a round-robin scheduler, a seeded random scheduler (fair
with probability 1), and the credit-bounded scheduler of the [AO83]
baseline — plus the adversarial scheduler's non-termination as the
control.  Every fair run terminates (asserted); the latencies show what
the fairness assumption costs or buys operationally.  The benchmark times
a round-robin run of the 400-state grid.
"""

import statistics

from common import record_table

from repro.analysis import Table
from repro.baselines import ScheduledSystem
from repro.fairness import (
    AdversarialScheduler,
    RandomScheduler,
    RoundRobinScheduler,
    simulate,
)
from repro.ts import explore
from repro.workloads import counter_grid, p2, p4_bounded

WORKLOADS = [
    ("P2(50)", lambda: p2(50), "la"),
    ("P4b(3,30,5)", lambda: p4_bounded(3, 30, 5), "la"),
    ("grid(19,19)", lambda: counter_grid(19, 19), "step"),
]

RANDOM_SEEDS = range(12)


def round_robin_run(system):
    return simulate(
        system, RoundRobinScheduler(system.commands()), max_steps=200_000
    )


def test_x07_scheduler_latency(benchmark):
    table = Table(
        "X7 — steps to termination by scheduler (fairly terminating workloads)",
        ["workload", "states", "round-robin", "random (mean ± σ, 12 seeds)",
         "credit K=2", "adversarial (starving one command)"],
    )
    for name, make, starve in WORKLOADS:
        system = make()
        states = len(explore(system))
        rr = round_robin_run(system)
        assert rr.terminated
        random_steps = []
        for seed in RANDOM_SEEDS:
            run = simulate(system, RandomScheduler(seed), max_steps=500_000)
            assert run.terminated
            random_steps.append(run.steps)
        credit_run = simulate(
            ScheduledSystem(system, credit=2),
            AdversarialScheduler(avoid={starve}),
            max_steps=500_000,
        )
        assert credit_run.terminated  # the credits force fairness through
        adversarial = simulate(
            system, AdversarialScheduler(avoid={starve}), max_steps=5_000
        )
        assert not adversarial.terminated
        table.add(
            name,
            states,
            rr.steps,
            f"{statistics.mean(random_steps):.0f} ± "
            f"{statistics.pstdev(random_steps):.0f}",
            credit_run.steps,
            f"still running after {adversarial.steps}",
        )
    record_table(table)
    benchmark(round_robin_run, counter_grid(19, 19))
