"""E10 — §2: the explicit-scheduler transformation ([AO83, DH86]).

Paper artifact: earlier methods add nondeterministically assigned
scheduler variables, reducing fair termination to plain termination via
"rather drastic — even 'cruel' — program transformations".  Rows: per
program and credit bound K — the scheduled state-space blowup, artificial
deadlocks introduced, and the plain-termination verdict of the transformed
system (which matches the fair-termination verdict of the original).  The
stack-assertion row is the contrast: no transformation, no blowup.  The
benchmark times the K=2 transformation of P2(6).
"""

from common import record_table

from repro.analysis import Table
from repro.baselines import explicit_scheduler_report
from repro.gcl import parse_program
from repro.ts import explore
from repro.workloads import p2, p4_bounded

CREDITS = (1, 2, 3, 4)


def spin():
    return parse_program("program Spin var x := 0 do go: true -> skip od")


def report_p2():
    return explicit_scheduler_report(explore(p2(6)), credit=2)


def test_e10_explicit_scheduler(benchmark):
    table = Table(
        "E10 — explicit-scheduler (credit) transformation",
        ["program", "fairly terminates", "K", "states (base → scheduled)",
         "blowup", "artificial deadlocks", "scheduled system terminates"],
    )
    for name, make, fair in [
        ("P2(6)", lambda: p2(6), True),
        ("P4b(2,6,3)", lambda: p4_bounded(2, 6, 3), True),
        ("Spin", spin, False),
    ]:
        graph = explore(make())
        for credit in CREDITS:
            report = explicit_scheduler_report(graph, credit)
            # The reduction is faithful on these workloads: the scheduled
            # system terminates iff the original fairly terminates.
            assert report.terminates == fair, (name, credit)
            table.add(
                name,
                "yes" if fair else "NO",
                credit,
                f"{report.base_states} → {report.scheduled_states}",
                f"×{report.blowup:.1f}",
                report.artificial_deadlocks,
                "yes" if report.terminates else "NO",
            )
    record_table(table)
    benchmark(report_p2)
