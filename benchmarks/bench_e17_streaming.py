"""E17 — streaming pipeline: time-to-verdict and peak memory vs materialized.

The streaming PR lets verification and the fair-termination decision run
*during* exploration instead of after it (DESIGN §6e): ``check`` verifies
each transition as its source state is expanded (memory stays proportional
to the frontier, ``--fail-fast`` stops at the first violation) and
``decide`` hunts for a fair lasso over the freshly closed SCCs of staged
bounded explorations, exiting as soon as one is found.  This bench
measures both claims at million-state scale:

* **time-to-verdict, violating family** — ``hypercube_trap(6, 9)``
  (1 000 002 states, fair two-state trap at depth 1): materialized
  ``explore`` + ``check_fair_termination`` vs
  ``check_fair_termination_streaming``, each in a *fresh child process*
  (clean successor caches and RSS baselines), median over
  ``MIN_REPEATS`` runs.  Both must return the same verdict
  (``fairly_terminates=False``, decisive).
* **peak RSS, non-violating check** — ``grid_hypercube(6, 9)``
  (1 000 000 states) under the coordinate-sum assertion: materialized
  ``check_measure`` over the full graph vs ``check_measure_streaming``
  (``keep_witnesses=False`` on both paths), one fresh child each; the
  streaming child must peak below the materialized one.  Run to
  completion the two must agree on every result field.

Gates (full scale only, recorded in the verdict): streaming time-to-verdict
≥ 5× faster than materialized on the violating family, and streaming check
peak RSS strictly below the materialized baseline.  ``ENGINE_BENCH_SMOKE=1``
substitutes hundreds-of-states instances for CI, exercising every code path
without measuring anything.  Rows land in ``BENCH_stream.json``.
"""

from __future__ import annotations

import json
import os
import statistics
import time
from pathlib import Path

from common import MIN_REPEATS, peak_rss_kb, record_table

from repro.analysis import Table

SMOKE = os.environ.get("ENGINE_BENCH_SMOKE") == "1"
REPEATS = MIN_REPEATS
MIN_SPEEDUP = 5.0
CORES = os.cpu_count() or 1
OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_stream.json"

# (dims, side) instances: the trap family carries the time-to-verdict gate,
# the plain hypercube the RSS gate; smoke sizes walk the same code paths.
TRAP_SHAPE = (4, 4) if SMOKE else (6, 9)  # 627 / 1 000 002 states
CUBE_SHAPE = (4, 3) if SMOKE else (6, 9)  # 256 / 1 000 000 states


# ---------------------------------------------------------------------------
# Child-process measurement (module-level: must pickle across fork/spawn)
# ---------------------------------------------------------------------------


def _cube_assignment():
    from repro.measures import StackAssertion
    from repro.workloads import grid_hypercube

    dims, side = CUBE_SHAPE
    system = grid_hypercube(dims, side)
    total = " + ".join(f"x{i}" for i in range(dims))
    assertion = StackAssertion.parse([f"T: {total}"])
    return system, assertion.compile()


def _child_decide_materialized():
    from repro.fairness import check_fair_termination
    from repro.ts import explore
    from repro.workloads import hypercube_trap

    system = hypercube_trap(*TRAP_SHAPE)
    start = time.perf_counter()
    graph = explore(system)
    result = check_fair_termination(graph)
    return {
        "seconds": time.perf_counter() - start,
        "fairly_terminates": result.fairly_terminates,
        "decisive": result.decisive,
        "states": result.states_explored,
        "peak_rss_kb": peak_rss_kb(),
    }


def _child_decide_streaming():
    from repro.fairness import check_fair_termination_streaming
    from repro.workloads import hypercube_trap

    system = hypercube_trap(*TRAP_SHAPE)
    start = time.perf_counter()
    result = check_fair_termination_streaming(system)
    return {
        "seconds": time.perf_counter() - start,
        "fairly_terminates": result.fairly_terminates,
        "decisive": result.decisive,
        "states": result.states_explored,
        "peak_rss_kb": peak_rss_kb(),
    }


def _child_check_materialized():
    from repro.measures import check_measure
    from repro.ts import explore

    system, assignment = _cube_assignment()
    start = time.perf_counter()
    graph = explore(system)
    result = check_measure(graph, assignment, keep_witnesses=False)
    return {
        "seconds": time.perf_counter() - start,
        "ok": result.ok,
        "complete": result.complete,
        "transitions_checked": result.transitions_checked,
        "violations": len(result.violations),
        "peak_rss_kb": peak_rss_kb(),
    }


def _child_check_streaming():
    from repro.measures import check_measure_streaming

    system, assignment = _cube_assignment()
    start = time.perf_counter()
    result = check_measure_streaming(system, assignment, keep_witnesses=False)
    return {
        "seconds": time.perf_counter() - start,
        "ok": result.ok,
        "complete": result.complete,
        "transitions_checked": result.transitions_checked,
        "violations": len(result.violations),
        "peak_rss_kb": peak_rss_kb(),
    }


def _in_fresh_child(fn):
    """Run ``fn()`` in a brand-new single-worker process (clean RSS
    high-water mark, empty successor cache); falls back to in-process
    execution where pools are unavailable — the JSON records which."""
    try:
        from concurrent.futures import ProcessPoolExecutor

        with ProcessPoolExecutor(max_workers=1) as pool:
            return pool.submit(fn).result(), True
    except (ImportError, OSError, RuntimeError, PermissionError):
        return fn(), False


def _measure(fn, repeats):
    runs = []
    isolated = True
    for _ in range(repeats):
        result, in_child = _in_fresh_child(fn)
        isolated = isolated and in_child
        runs.append(result)
    summary = dict(runs[0])
    summary["seconds"] = statistics.median(run["seconds"] for run in runs)
    summary["isolated"] = isolated
    return summary


# ---------------------------------------------------------------------------
# The experiment
# ---------------------------------------------------------------------------


def test_e17_streaming():
    scale = "smoke" if SMOKE else "full"
    table = Table(
        f"E17 — streaming vs materialized pipeline ({scale} sizes, "
        f"{CORES} cores)",
        ["measurement", "materialized", "streaming", "ratio"],
    )

    # -- time-to-verdict on the violating trap family ----------------------
    mat_decide = _measure(_child_decide_materialized, REPEATS)
    stream_decide = _measure(_child_decide_streaming, REPEATS)
    for run in (mat_decide, stream_decide):
        assert run["fairly_terminates"] is False, run
        assert run["decisive"] is True, run
    speedup = (
        mat_decide["seconds"] / stream_decide["seconds"]
        if stream_decide["seconds"] > 0
        else float("inf")
    )
    table.add(
        f"decide trap{TRAP_SHAPE} time-to-verdict",
        f"{mat_decide['seconds']:.3f}s ({mat_decide['states']} states)",
        f"{stream_decide['seconds']:.3f}s ({stream_decide['states']} states)",
        f"{speedup:.1f}x faster",
    )

    # -- peak RSS on the non-violating check ------------------------------
    mat_check = _measure(_child_check_materialized, 1)
    stream_check = _measure(_child_check_streaming, 1)
    for key in ("ok", "complete", "transitions_checked", "violations"):
        assert mat_check[key] == stream_check[key], (
            f"streaming check diverges from materialized on {key}: "
            f"{stream_check[key]!r} != {mat_check[key]!r}"
        )
    assert mat_check["ok"] is True
    rss_ratio = (
        stream_check["peak_rss_kb"] / mat_check["peak_rss_kb"]
        if mat_check["peak_rss_kb"] and stream_check["peak_rss_kb"]
        else None
    )
    table.add(
        f"check cube{CUBE_SHAPE} peak RSS",
        f"{mat_check['peak_rss_kb']} kB",
        f"{stream_check['peak_rss_kb']} kB",
        f"{rss_ratio:.2f}" if rss_ratio is not None else "n/a",
    )
    record_table(table)

    # Gates apply at full scale only; the smoke instances are too small for
    # either the early exit or the frontier-sized memory bound to register.
    speedup_gate = not SMOKE
    rss_gate = not SMOKE and rss_ratio is not None
    OUTPUT.write_text(json.dumps({
        "experiment": "E17",
        "scale": scale,
        "cores": CORES,
        "repeats": REPEATS,
        "trap_shape": list(TRAP_SHAPE),
        "cube_shape": list(CUBE_SHAPE),
        "verdict": {
            "scale": scale,
            "verdicts_identical": True,
            "speedup_gate_applies": speedup_gate,
            "speedup_gate_reason": None if speedup_gate else "smoke scale",
            "min_speedup_required": MIN_SPEEDUP if speedup_gate else None,
            "rss_gate_applies": rss_gate,
            "rss_gate_reason": (
                None if rss_gate else
                ("smoke scale" if SMOKE else "RSS unavailable")
            ),
        },
        "rows": [
            {
                "measurement": "decide_time_to_verdict",
                "workload": f"hypercube_trap{TRAP_SHAPE}",
                "materialized_seconds": mat_decide["seconds"],
                "streaming_seconds": stream_decide["seconds"],
                "materialized_states": mat_decide["states"],
                "streaming_states": stream_decide["states"],
                "speedup": speedup,
                "child_isolated": (
                    mat_decide["isolated"] and stream_decide["isolated"]
                ),
            },
            {
                "measurement": "check_peak_rss",
                "workload": f"grid_hypercube{CUBE_SHAPE}",
                "materialized_peak_rss_kb": mat_check["peak_rss_kb"],
                "streaming_peak_rss_kb": stream_check["peak_rss_kb"],
                "materialized_seconds": mat_check["seconds"],
                "streaming_seconds": stream_check["seconds"],
                "transitions_checked": mat_check["transitions_checked"],
                "rss_ratio": rss_ratio,
                "child_isolated": (
                    mat_check["isolated"] and stream_check["isolated"]
                ),
            },
        ],
    }, indent=2) + "\n")

    if speedup_gate:
        assert speedup >= MIN_SPEEDUP, (
            f"streaming time-to-verdict is only {speedup:.2f}x materialized "
            f"on hypercube_trap{TRAP_SHAPE} (need {MIN_SPEEDUP}x)"
        )
    if rss_gate:
        assert rss_ratio < 1.0, (
            f"streaming check peak RSS is {rss_ratio:.2f}x the materialized "
            f"baseline on grid_hypercube{CUBE_SHAPE} (must be < 1.0x)"
        )
