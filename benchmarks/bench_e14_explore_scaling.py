"""E14 — compiled GCL exploration against the interpreter, at scale.

The compile-and-cache PR lowered every command's guard and body into
Python closures (:mod:`repro.gcl.compile`), memoized successor sets per
state on the :class:`~repro.gcl.program.Program`, and added an optional
cross-run disk cache (now :mod:`repro.engine.graphstore`).  This bench times
``explore()`` per workload family in four configurations —

* **interpreted** — ``Program(ast, compiled=False)``, the seed's
  tree-walking evaluator;
* **compiled** — a fresh compiled program per repeat (cold successor
  cache: the figure includes closure dispatch but no memoization wins);
* **warm** — a second exploration of an already-explored program, where
  every expansion is a successor-cache hit;
* **disk hit** — :func:`~repro.engine.graphstore.explore_with_cache`
  reloading a previously stored graph, skipping exploration entirely —

and asserts **bit-identical graphs** across all four: same state order,
same transitions, same enabled sets, same frontier.  Only GCL programs
have an AST to compile; the explicit-state families (``rings``,
``random``) are recorded as ``mode: "explicit"`` rows without timings so
the JSON shows they were skipped rather than silently dropped.

Rows land in the experiment tables (see EXPERIMENTS.md §E14) and in
``BENCH_explore.json`` at the repo root.  ``ENGINE_BENCH_SMOKE=1``
shrinks the workloads to CI size; the ≥ 2× compiled-vs-interpreted gate
on the largest family applies only at full scale, and the verdict
records the scale.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path

from common import (
    MIN_REPEATS,
    last_peak_rss_kb,
    last_telemetry,
    maybe_enable_bench_telemetry,
    record_table,
    timed_median,
)

from repro.analysis import Table
from repro.engine import explore_with_cache
from repro.gcl import Program
from repro.ts import explore
from repro.workloads import engine_scaling_suite

SMOKE = os.environ.get("ENGINE_BENCH_SMOKE") == "1"
SCALE = "smoke" if SMOKE else "full"
REPEATS = MIN_REPEATS if SMOKE else max(MIN_REPEATS, 3)
LARGEST = "grid"  # the family the speedup criterion is judged on
MIN_SPEEDUP = 2.0
OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_explore.json"


def _graph_fingerprint(graph):
    """Everything observable about a ReachableGraph, as a hashable value.

    Two runs agree on this iff they produced bit-identical graphs:
    identical state *order*, transitions, enabled sets and frontier.
    """
    return (
        tuple(state.values for state in graph.states),
        tuple(
            (t.source, t.command, t.target) for t in graph.transitions
        ),
        tuple(
            frozenset(graph.enabled_at(index))
            for index in range(len(graph))
        ),
        tuple(graph.initial_indices),
        tuple(sorted(graph.frontier)),
    )


def _timed_explore(make_program):
    """Median exploration time over fresh program instances."""
    median, graphs = timed_median(
        explore, repeats=REPEATS, setup=make_program
    )
    fingerprint = _graph_fingerprint(graphs[0])
    for graph in graphs[1:]:
        assert _graph_fingerprint(graph) == fingerprint
    return median, fingerprint


def _timed_warm_explore(ast):
    """Median re-exploration time of an already-explored program (every
    ``expand`` call is a successor-cache hit)."""

    def warmed_program():
        program = Program(ast, compiled=True)
        explore(program)
        return program

    median, graphs = timed_median(
        explore, repeats=REPEATS, setup=warmed_program
    )
    return median, _graph_fingerprint(graphs[0])


def _timed_disk_hit(ast, cache_dir):
    """Median time to reload a stored exploration from ``cache_dir``."""
    primed = Program(ast, compiled=True)
    graph, hit = explore_with_cache(primed, cache_dir=cache_dir)
    assert not hit, "cache directory was expected to start cold"

    median, results = timed_median(
        lambda program: explore_with_cache(program, cache_dir=cache_dir),
        repeats=REPEATS,
        setup=lambda: Program(ast, compiled=True),
    )
    for reloaded, was_hit in results:
        assert was_hit, "second run should reload from the disk cache"
    return median, _graph_fingerprint(results[0][0])


def test_e14_explore_scaling():
    maybe_enable_bench_telemetry()
    table = Table(
        "E14 — compiled vs interpreted exploration "
        f"({'smoke sizes' if SMOKE else 'full sizes'})",
        ["workload", "states", "interp s", "compiled s", "warm s",
         "disk hit s", "speedup", "identical"],
    )
    rows = []
    speedups = {}
    with tempfile.TemporaryDirectory(prefix="e14-cache-") as cache_root:
        for name, make in engine_scaling_suite(SCALE):
            system = make()
            if not isinstance(system, Program):
                rows.append({
                    "workload": name,
                    "mode": "explicit",
                    "note": "explicit-state system: no AST to compile",
                })
                continue
            ast = system.ast
            interp_s, fp_interp = _timed_explore(
                lambda: Program(ast, compiled=False)
            )
            compiled_s, fp_compiled = _timed_explore(
                lambda: Program(ast, compiled=True)
            )
            warm_s, fp_warm = _timed_warm_explore(ast)
            cache_dir = Path(cache_root) / name
            disk_s, fp_disk = _timed_disk_hit(ast, cache_dir)
            assert fp_compiled == fp_interp, f"{name}: compiled != interp"
            assert fp_warm == fp_interp, f"{name}: warm cache != interp"
            assert fp_disk == fp_interp, f"{name}: disk cache != interp"
            states = len(fp_interp[0])
            speedup = (
                interp_s / compiled_s if compiled_s > 0 else float("inf")
            )
            speedups[name] = speedup
            table.add(
                name, states, f"{interp_s:.3f}", f"{compiled_s:.3f}",
                f"{warm_s:.3f}", f"{disk_s:.3f}", f"{speedup:.2f}x", "yes",
            )
            rows.append({
                "workload": name,
                "mode": "gcl",
                "states": states,
                "transitions": len(fp_interp[1]),
                "interpreted_seconds": interp_s,
                "compiled_seconds": compiled_s,
                "warm_cache_seconds": warm_s,
                "disk_hit_seconds": disk_s,
                "speedup": speedup,
                "peak_rss_kb": last_peak_rss_kb(),
                "telemetry": last_telemetry(),
                "identical": True,
            })
    record_table(table)

    largest = next(name for name in speedups if name.startswith(LARGEST))
    OUTPUT.write_text(json.dumps({
        "experiment": "E14",
        "scale": SCALE,
        "repeats": REPEATS,
        "largest_family": largest,
        "largest_speedup": speedups[largest],
        "verdict": {
            "scale": SCALE,
            "headline_column": "compiled",
            "speedup_gate_applies": not SMOKE,
            "min_speedup_required": MIN_SPEEDUP if not SMOKE else None,
        },
        "min_speedup_required": MIN_SPEEDUP if not SMOKE else None,
        "rows": rows,
    }, indent=2) + "\n")

    if not SMOKE:
        assert speedups[largest] >= MIN_SPEEDUP, (
            f"compiled exploration is only {speedups[largest]:.2f}x the "
            f"interpreter on {largest} (need {MIN_SPEEDUP}x)"
        )
