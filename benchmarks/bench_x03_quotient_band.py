"""X3 (ablation) — the Theorem 2 quotient's candidate-depth band.

DESIGN.md calls out the one deliberate approximation in the reproduction:
Theorem 2's minimum ranges over the infinite history tree, while we
minimise over explored histories of bounded depth.  This ablation sweeps
the candidate depth on ``P4b`` at a fixed unwinding depth of 14 and records
where the quotient's verification conditions hold:

* too shallow (below the base graph's eccentricity + stabilisation) — the
  minimiser lacks candidates or picks immature values: FAIL;
* a middle band — PASS;
* too close to the exploration frontier — freshly allocated values still
  have apparent descent-height 0 and the minimiser chases phantom minima:
  FAIL.

The default (``max_depth // 2``) sits in the band.  The benchmark times one
in-band quotient.
"""

from common import record_table

from repro.analysis import Table
from repro.completeness import theorem2_quotient
from repro.workloads import p4_bounded

MAX_DEPTH = 14
CANDIDATE_DEPTHS = (5, 6, 7, 8, 9, 10, 11, 12, 13, 14)


def run(candidate_depth):
    result = theorem2_quotient(
        p4_bounded(2, 4, 2), max_depth=MAX_DEPTH, candidate_depth=candidate_depth
    )
    return result.verify()


def test_x03_quotient_candidate_band(benchmark):
    table = Table(
        "X3 — Theorem 2 quotient: VC outcome vs candidate depth "
        "(P4b, unwinding depth 14; default = 7)",
        ["candidate depth", "VCs", "violations"],
    )
    outcomes = {}
    for depth in CANDIDATE_DEPTHS:
        try:
            verification = run(depth)
            ok = verification.ok
            violations = len(verification.violations)
        except ValueError:
            ok, violations = False, "state unreached"
        outcomes[depth] = ok
        table.add(depth, "PASS" if ok else "FAIL", violations)
    # The band: the default depth (7) passes; the frontier end fails.
    assert outcomes[MAX_DEPTH // 2]
    assert not outcomes[MAX_DEPTH]
    record_table(table)
    benchmark(run, MAX_DEPTH // 2)
