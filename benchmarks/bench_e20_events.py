"""E20 — structured event stream overhead and bit-identity at scale.

The observability PR put a typed event bus under the engine (run/phase
lifecycle, exploration heartbeats, round dispatch, verdicts — see
docs/METHOD.md §13) with the same hard rule the metrics layer obeys:
events must not change results, and a consumer-attached run must stay
within a few percent of a bare one.  This bench checks both claims on
the million-state exploration families:

* **bit-identical graphs** — for every family,
  :func:`~repro.engine.shard.graph_digest` with an NDJSON sink attached
  (the worst case: ``live()`` is true, so the per-expansion ticker runs
  and every event is serialised to disk) equals the digest with the bus
  idle;
* **event overhead** — enabled-vs-disabled wall clock per family; the
  gate (full scale only) is that the largest-frontier family
  ("hypercube") stays under :data:`MAX_EVENTS_OVERHEAD`;
* **stream validity** — every line the sinks wrote parses and validates
  (:func:`repro.telemetry.validate_event_stream` — envelope, catalogue
  name, strictly increasing sequence numbers).

Measurement shape: a multi-second million-state exploration swings
±20 % run to run on a loaded box (page cache, allocator state, GC), far
more than the ≤5 % effect under test, so bare/attached repeats are
**interleaved** (off/on, off/on, …) to cancel drift and the ratio is
taken over the **minimum** of each side — genuine per-event cost is
paid in every run, so it survives the min; one-sided noise does not.

``ENGINE_BENCH_SMOKE=1`` shrinks the workloads to CI size, where only
the identity and validity checks are meaningful.  Rows land in
``BENCH_events.json``.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from pathlib import Path

from common import MIN_REPEATS, peak_rss_kb, record_table

from repro import telemetry
from repro.analysis import Table
from repro.engine.shard import graph_digest
from repro.ts import explore
from repro.workloads import large_scaling_suite

SMOKE = os.environ.get("ENGINE_BENCH_SMOKE") == "1"
SCALE = "smoke" if SMOKE else "full"
REPEATS = MIN_REPEATS
LARGEST = "hypercube"  # the family the overhead gate is judged on
MAX_EVENTS_OVERHEAD = 1.05  # attached / bare, full scale, largest family
OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_events.json"


def _timed_explore(make_system, sink_dir):
    """One warm-up pair, then ``REPEATS`` interleaved bare/attached pairs.

    Returns ``(bare_min_s, attached_min_s, digest, events, states)``.
    Digests must agree across every run of both modes, and every NDJSON
    line each attached run wrote must validate.
    """
    bare: list = []
    attached: list = []
    digests = set()
    stream_len = 0
    states = 0
    for iteration in range(1 + REPEATS):
        warmup = iteration == 0
        for with_sink in (False, True):
            system = make_system()
            sink = None
            if with_sink:
                telemetry.reset_events()
                path = Path(sink_dir) / f"events-{iteration}.ndjson"
                sink = telemetry.NdjsonEventSink(path)
                telemetry.subscribe(sink)
            try:
                start = time.perf_counter()
                graph = explore(system)
                elapsed = time.perf_counter() - start
            finally:
                if sink is not None:
                    sink.close()
            digests.add(graph_digest(graph))
            states = len(graph)
            if with_sink:
                stream = telemetry.validate_event_stream(path.read_text())
                assert stream, "the sink-attached run emitted no events"
                assert any(
                    event["event"] == "explore.summary" for event in stream
                ), "every exploration must emit a summary event"
                stream_len = len(stream)
            if not warmup:
                (attached if with_sink else bare).append(elapsed)
    assert len(digests) == 1, (
        "event emission changed the explored graph (or exploration is "
        "not run-to-run deterministic)"
    )
    return min(bare), min(attached), digests.pop(), stream_len, states


def test_e20_event_stream_overhead():
    table = Table(
        "E20 — event stream overhead on explore "
        f"({'smoke sizes' if SMOKE else 'full sizes'})",
        ["workload", "states", "off s", "on s", "on/off", "events",
         "identical"],
    )
    rows = []
    overheads = {}
    telemetry.disable()
    telemetry.reset()
    telemetry.reset_events()
    for name, make in large_scaling_suite(SCALE):
        with tempfile.TemporaryDirectory() as tmp:
            off_s, on_s, digest, events_written, states = _timed_explore(
                make, tmp
            )
        ratio = on_s / off_s if off_s > 0 else float("inf")
        overheads[name] = ratio
        table.add(
            name, states, f"{off_s:.3f}", f"{on_s:.3f}", f"{ratio:.2f}x",
            events_written, "yes",
        )
        rows.append({
            "workload": name,
            "states": states,
            "graph_digest": digest,
            "disabled_seconds": off_s,
            "enabled_seconds": on_s,
            "events_overhead": ratio,
            "events_written": events_written,
            "peak_rss_kb": peak_rss_kb(),
            "identical": True,
        })
        telemetry.reset_events()
    record_table(table)

    largest = next(name for name in overheads if name.startswith(LARGEST))
    verdict = {
        "gated": not SMOKE,
        "largest": largest,
        "events_overhead": overheads[largest],
        "max_events_overhead": MAX_EVENTS_OVERHEAD,
    }
    OUTPUT.write_text(json.dumps({
        "experiment": "E20",
        "scale": SCALE,
        "repeats": REPEATS,
        "verdict": verdict,
        "rows": rows,
    }, indent=2) + "\n")
    if not SMOKE:
        assert overheads[largest] <= MAX_EVENTS_OVERHEAD, (
            f"event stream cost {overheads[largest]:.2f}x on {largest} — "
            f"an attached consumer must stay under {MAX_EVENTS_OVERHEAD}x"
        )
