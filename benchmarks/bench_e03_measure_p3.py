"""E3 — §3.3, P3/P3': a progress measure for the unfairness hypothesis.

Paper artifact: ``P3'`` attaches ``μ^{ℓa} = z mod 117`` to the
ℓa-hypothesis; (V'_a)/(V'_T) hold on every iteration.  Rows: the paper's
modulus 117 plus a sweep; for the unbounded paper program the check covers
a bounded region (reported), for the ``z ≥ 0`` variant it is exact.  The
benchmark times the exact check at modulus 117.
"""

from common import record_table

from repro.analysis import Table
from repro.measures import annotate
from repro.ts import explore
from repro.workloads import p3, p3_assertion, p3_bounded

MODULI = (3, 17, 117)


def exact_check(modulus: int):
    program = p3_bounded(3, 240, modulus)
    return annotate(program, p3_assertion(modulus)).check()


def test_e03_progress_measure_p3(benchmark):
    table = Table(
        "E3 — P3' (ℓa: z mod m / T: max{y−x, 0})",
        ["modulus", "variant", "states", "transitions", "verdict", "scope"],
    )
    for modulus in MODULI:
        result = annotate(
            p3(3, 240, modulus), p3_assertion(modulus)
        ).check(max_states=2500)
        assert result.ok
        table.add(
            modulus,
            "paper (unbounded z)",
            "2500 (bound)",
            result.transitions_checked,
            "PASS",
            "explored region",
        )
        exact = exact_check(modulus)
        assert exact.is_fair_termination_measure
        graph = explore(p3_bounded(3, 240, modulus))
        table.add(
            modulus,
            "z ≥ 0 variant",
            len(graph),
            exact.transitions_checked,
            "PASS",
            "complete",
        )
    record_table(table)
    benchmark(exact_check, 117)
