"""X5 (extension) — fair response, the [MP91] generalization (§2).

Rows: the request/grant server family — fair termination fails (the server
runs forever, fairly) while ``G(wait → F idle)`` holds; the synthesised
response measure verifies on the pending region, and the degenerate
property (trigger everywhere, respond at terminal states) coincides with
fair termination on a random batch.  The benchmark times the full response
pipeline (product, decision, synthesis, check).
"""

from common import record_table

from repro.analysis import Table
from repro.fairness import check_fair_termination
from repro.response import (
    ObligationSystem,
    ResponseProperty,
    check_fair_response,
    check_response_measure,
    pending_indices,
    synthesize_response_measure,
    termination_as_response,
)
from repro.ts import explore
from repro.workloads import random_system, request_server

SERVED = ResponseProperty(
    name="served",
    trigger=lambda s: s == "wait",
    response=lambda s: s == "idle",
)


def pipeline(noise_states):
    system = request_server(noise_states)
    result = check_fair_response(system, SERVED)
    assert result.holds
    pending = pending_indices(result.product_graph)
    synthesis = synthesize_response_measure(result.product_graph, pending)
    check = check_response_measure(
        result.product_graph, pending, synthesis.assignment()
    )
    assert check.ok
    return result, synthesis


def test_x05_fair_response(benchmark):
    table = Table(
        "X5 — fair response on the request/grant server family",
        ["noise states", "product states", "pending", "fairly terminates",
         "G(wait → F idle)", "measure", "hypothesis"],
    )
    for noise_states in (1, 4, 16, 64):
        system = request_server(noise_states)
        graph = explore(system)
        terminates = check_fair_termination(graph).fairly_terminates
        result, synthesis = pipeline(noise_states)
        table.add(
            noise_states,
            len(result.product_graph),
            result.pending_states,
            "yes" if terminates else "NO",
            "holds",
            "verified",
            synthesis.regions[0].helpful,
        )
        assert not terminates  # response is strictly more general here
    record_table(table)

    # Degenerate instance ≡ fair termination, on a random batch.
    agree = 0
    total = 0
    for seed in range(60):
        system = random_system(seed, states=8, commands=3, extra_edges=7)
        graph = explore(system)
        terminates = check_fair_termination(graph).fairly_terminates
        response = check_fair_response(system, termination_as_response(system))
        total += 1
        if response.holds == terminates:
            agree += 1
    assert agree == total
    reduction = Table(
        "X5b — termination as the degenerate response property",
        ["random systems", "verdicts agreeing with fair termination"],
    )
    reduction.add(total, f"{agree}/{total}")
    record_table(reduction)

    benchmark(pipeline, 16)
