"""Benchmark-session plumbing: print every experiment table at the end.

``benchmarks/`` is not a package, so pytest puts this directory on
``sys.path`` and the bench modules import :mod:`common` top-level.
"""

from common import recorded_tables


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    tables = recorded_tables()
    if not tables:
        return
    terminalreporter.write_sep("=", "experiment tables (see EXPERIMENTS.md)")
    for table in tables:
        terminalreporter.write_line("")
        for line in table.render().splitlines():
            terminalreporter.write_line(line)
