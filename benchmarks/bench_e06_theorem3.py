"""E6 — Theorem 3 and Figures 3–5: the completeness construction.

Paper artifact: the appendix construction builds a fair termination
measure for any fairly terminating tree-like program; Figure 3 is the
initial stack, Figures 4/5 are Case 1 (naturally active) and Case 2
(forced active).  Rows: per program and unwinding depth — tree size, the
cases' firing counts, the size of the constructed ``(W, ≻)``, the longest
descending chain, and the re-verified verification conditions.  The
benchmark times the construction on P2's depth-10 tree.
"""

from common import record_table

from repro.analysis import Table
from repro.completeness import (
    add_history_variable,
    longest_chain_length,
    theorem3_construction,
)
from repro.ts import explore
from repro.workloads import p2, p3_bounded, p4_bounded

PROGRAMS = [
    ("P2(4)", p2(4), (6, 8, 10)),
    ("P3b(2,7,3)", p3_bounded(2, 7, 3), (6, 8, 10)),
    ("P4b(2,5,3)", p4_bounded(2, 5, 3), (5, 7, 9)),
]


def construct(program, depth):
    graph = explore(add_history_variable(program), max_depth=depth)
    return graph, theorem3_construction(graph)


def test_e06_theorem3_construction(benchmark):
    table = Table(
        "E6 — Theorem 3 construction (Figures 3–5) on history trees",
        ["program", "depth", "tree nodes", "case 1", "case 2",
         "|W|", "descents", "longest chain", "VCs"],
    )
    for name, program, depths in PROGRAMS:
        for depth in depths:
            graph, measure = construct(program, depth)
            verification = measure.verify()
            assert verification.ok
            assert measure.order.is_well_founded()
            table.add(
                name,
                depth,
                len(graph),
                measure.stats.case1_total,
                measure.stats.case2_total,
                measure.relation.size,
                len(measure.relation.edges),
                longest_chain_length(measure.relation),
                "PASS",
            )
    record_table(table)
    benchmark(construct, p2(4), 10)
