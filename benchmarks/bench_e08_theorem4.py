"""E8 — Theorem 4 and footnote 1: the recursive semi-measure.

Paper artifact: a recursive ``(μ, (W, ≻))`` exists uniformly in the
program, and it is a measure — ``(W, ≻)`` well-founded — iff the program
fairly terminates.  Footnote 1 places the problem at Π¹₁-complete, so *no
finite audit can decide it*; the rows make that concrete:

* ``P2``: the longest explored ≻-chain **plateaus** (the limit order has
  bounded chains);
* ``rings(2)``: fairly terminates, yet chains keep growing — the limit is
  well-founded with chains of every finite length (order type ≥ ω).
  Growth alone cannot refute fair termination;
* ``Spin``/``Lazy``: chains grow because the limit genuinely contains an
  infinite descent — no measure exists.

Distinguishing the last two cases is exactly what the finite audit cannot
do (Π¹₁-completeness); for finite-state programs the decision procedure of
E12 settles it instead.  The benchmark times a depth-8 audit of P2.
"""

from common import record_table

from repro.analysis import Table
from repro.completeness import semi_measure
from repro.gcl import parse_program
from repro.workloads import nested_rings, p2

DEPTHS = (3, 6, 9, 12)


def spin():
    return parse_program("program Spin var x := 0 do go: true -> skip od")


def lazy():
    # Terminates for 3 steps, then spins: not fairly terminating.
    return parse_program(
        """
        program Lazy
        var x := 0
        do
             work: x < 3 -> x := x + 1
          [] rest: x >= 3 -> skip
        od
        """
    )


def audit_p2():
    return semi_measure(p2(3)).audit(8)


def test_e08_semi_measure_chains(benchmark):
    systems = [
        ("P2(3)", lambda: p2(3), True, "plateau (bounded chains)"),
        ("rings(2)", lambda: nested_rings(2), True,
         "growth, limit still well-founded (≥ ω)"),
        ("Spin", spin, False, "growth, infinite descent in the limit"),
        ("Lazy", lazy, False, "growth, infinite descent in the limit"),
    ]
    table = Table(
        "E8 — Theorem 4: longest ≻-chain vs audit depth "
        "(finite audits cannot decide well-foundedness — footnote 1)",
        ["system", "fairly terminates", "limit (W, ≻)"]
        + [f"depth {d}" for d in DEPTHS],
    )
    results = {}
    for name, make, fair, story in systems:
        chains = [semi_measure(make()).audit(d).longest_chain for d in DEPTHS]
        results[name] = chains
        table.add(name, "yes" if fair else "NO", story, *chains)
    # P2 plateaus; the ill-founded systems grow by at least one per
    # depth-step in the tail; rings(2) grows despite fair termination.
    assert results["P2(3)"][-1] == results["P2(3)"][-2]
    assert results["Spin"] == [3, 6, 9, 12]
    assert results["Lazy"][-1] > results["Lazy"][-2]
    assert results["rings(2)"][-1] > results["rings(2)"][-2]
    record_table(table)
    benchmark(audit_p2)
