"""X4 (ablation) — does the helpful-hypothesis choice matter?

The completeness construction and the synthesiser may have *several*
admissible unfairness hypotheses per region (the paper's §5: "there may be
several choices for an active hypothesis").  The synthesiser picks the
first demanded-but-unfulfilled requirement in requirement order; this
ablation permutes that order over a random-system batch and measures the
effect on the synthesised stacks.  The soundness claim — every synthesised
measure verifies, whatever the choice — is asserted for every permutation.
"""

import itertools

from common import record_table

from repro.analysis import Table
from repro.completeness import NotFairlyTerminatingError, synthesize_measure
from repro.fairness import command_requirements
from repro.measures import check_measure
from repro.ts import explore
from repro.workloads import random_system

SEEDS = range(120)


def sweep(order_index):
    heights = []
    regions = []
    for seed in SEEDS:
        graph = explore(random_system(seed, states=9, commands=3, extra_edges=8))
        requirements = list(command_requirements(graph.system))
        permutation = list(itertools.permutations(requirements))[order_index]
        try:
            synthesis = synthesize_measure(graph, requirements=permutation)
        except NotFairlyTerminatingError:
            continue
        result = check_measure(
            graph, synthesis.assignment(), requirements=permutation
        )
        assert result.ok, seed
        heights.append(synthesis.max_stack_height())
        regions.append(synthesis.region_count())
    return heights, regions


def test_x04_helpful_choice_ablation(benchmark):
    table = Table(
        "X4 — synthesis under permuted requirement orders "
        "(120 random systems; every measure verifies)",
        ["requirement order", "systems proved", "mean stack height",
         "max stack height", "mean regions"],
    )
    baseline = None
    for order_index, permutation in enumerate(
        itertools.permutations(range(3))
    ):
        heights, regions = sweep(order_index)
        mean_height = sum(heights) / len(heights)
        table.add(
            "".join(f"c{i}" for i in permutation),
            len(heights),
            f"{mean_height:.2f}",
            max(heights),
            f"{sum(regions) / len(regions):.1f}",
        )
        if baseline is None:
            baseline = len(heights)
        else:
            # The *verdict* is choice-independent; only shapes may vary.
            assert len(heights) == baseline
    record_table(table)
    benchmark(sweep, 0)
