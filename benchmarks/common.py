"""Shared infrastructure for the benchmark harness.

Each bench regenerates one experiment's rows (see DESIGN.md §5 and
EXPERIMENTS.md) as an :class:`repro.analysis.Table` and registers it with
:func:`record_table`; the conftest's terminal-summary hook prints every
registered table after the benchmark run, so the tables land in
``bench_output.txt`` even under pytest's output capture.
"""

from __future__ import annotations

from typing import List

from repro.analysis.report import Table

_TABLES: List[Table] = []


def record_table(table: Table) -> None:
    """Register an experiment table for end-of-run printing."""
    _TABLES.append(table)


def recorded_tables() -> List[Table]:
    """All tables registered so far (consumed by the conftest hook)."""
    return _TABLES
