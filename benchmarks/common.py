"""Shared infrastructure for the benchmark harness.

Each bench regenerates one experiment's rows (see DESIGN.md §5 and
EXPERIMENTS.md) as an :class:`repro.analysis.Table` and registers it with
:func:`record_table`; the conftest's terminal-summary hook prints every
registered table after the benchmark run, so the tables land in
``bench_output.txt`` even under pytest's output capture.

:func:`timed_median` is the one timing primitive: warmup iterations are
discarded (first-call costs — imports, pool spin-up, allocator warm-up —
are not what the experiments measure) and the reported figure is the
*median* of at least :data:`MIN_REPEATS` timed runs, so a single
scheduling hiccup cannot swing a sub-millisecond row.

Every ``timed_median`` call also snapshots the process's peak RSS
(:func:`peak_rss_kb`, via ``resource.getrusage``) so each ``BENCH_*.json``
row records memory alongside time.  BENCH row schema note: the
``peak_rss_kb`` column is ``max(RUSAGE_SELF, RUSAGE_CHILDREN)`` — pool
workers' memory counts, not just the coordinator's.  ``ru_maxrss`` is a
*high-water mark* — monotone over the process lifetime — so within one
bench process the column reads "peak RSS up to and including this row";
benches that need per-configuration peaks (E15, E18) measure in fresh
child processes instead.

When telemetry is collecting (``REPRO_BENCH_TELEMETRY=1``, or a bench
enabled it explicitly), ``timed_median`` additionally snapshots the
telemetry registry after the timed iterations; :func:`last_telemetry`
exposes it so rows can record engine counters (states expanded, cache
hits, shard rounds) next to time and memory.  Timing runs leave telemetry
alone by default — collection is opt-in precisely so the measured figures
are the uninstrumented ones.
"""

from __future__ import annotations

import os
import statistics
import time
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.analysis.report import Table
from repro.telemetry import core as telemetry

try:
    import resource
except ImportError:  # pragma: no cover - non-POSIX platforms
    resource = None

#: Benches must time at least this many repeats — smoke runs included.
MIN_REPEATS = 3

#: Untimed iterations discarded before measurement starts.
DEFAULT_WARMUP = 1

_TABLES: List[Table] = []

_LAST_PEAK_RSS_KB: Optional[int] = None

_LAST_TELEMETRY: Optional[Dict[str, Any]] = None


def peak_rss_kb() -> Optional[int]:
    """Peak resident set size in KiB (``None`` if unknown).

    Reported as ``max(RUSAGE_SELF, RUSAGE_CHILDREN)``: sharded explorations
    do their heavy lifting in pool workers, whose memory ``RUSAGE_SELF``
    never sees — a parallel row would otherwise report only the
    coordinator's (much smaller) footprint.  ``RUSAGE_CHILDREN`` is the
    high-water mark over *reaped* children, so it covers workers once the
    pool has been shut down; benches that measure in fresh child processes
    (E15, E18) get the child's own self+children peak the same way.

    Linux reports ``ru_maxrss`` in KiB; macOS reports bytes and is
    normalised here.  The value is a lifetime high-water mark.
    """
    if resource is None:
        return None
    try:
        maxrss = max(
            resource.getrusage(resource.RUSAGE_SELF).ru_maxrss,
            resource.getrusage(resource.RUSAGE_CHILDREN).ru_maxrss,
        )
    except (OSError, ValueError):  # pragma: no cover - exotic sandboxes
        return None
    import sys

    if sys.platform == "darwin":  # pragma: no cover - linux CI
        return int(maxrss // 1024)
    return int(maxrss)


def last_peak_rss_kb() -> Optional[int]:
    """Peak RSS snapshotted by the most recent :func:`timed_median` call."""
    return _LAST_PEAK_RSS_KB


def last_telemetry() -> Optional[Dict[str, Any]]:
    """Telemetry snapshot from the most recent :func:`timed_median` call.

    ``None`` unless telemetry was collecting during the timed runs
    (``REPRO_BENCH_TELEMETRY=1`` or an explicit ``telemetry.enable()``).
    """
    return _LAST_TELEMETRY


def maybe_enable_bench_telemetry() -> bool:
    """Honour ``REPRO_BENCH_TELEMETRY=1``: reset and enable collection.

    Returns whether collection is on.  Called by benches that want their
    rows annotated; the default (unset) keeps timing runs uninstrumented.
    """
    if os.environ.get("REPRO_BENCH_TELEMETRY") == "1":
        telemetry.reset()
        telemetry.enable()
        return True
    return telemetry.enabled()


def record_table(table: Table) -> None:
    """Register an experiment table for end-of-run printing."""
    _TABLES.append(table)


def recorded_tables() -> List[Table]:
    """All tables registered so far (consumed by the conftest hook)."""
    return _TABLES


def timed_median(
    run: Callable[..., Any],
    *,
    repeats: int = MIN_REPEATS,
    warmup: int = DEFAULT_WARMUP,
    setup: Optional[Callable[[], Any]] = None,
) -> Tuple[float, List[Any]]:
    """``(median_seconds, timed_results)`` for ``repeats`` calls of ``run``.

    ``setup`` (if given) is called before every iteration, *outside* the
    timed region, and its value is passed to ``run`` — use it to rebuild
    per-iteration state (a fresh graph, a cold cache) without billing the
    rebuild to the measurement.  The first ``warmup`` iterations run and
    are discarded; the remaining ``repeats`` are timed and their results
    returned in order so callers can assert run-to-run agreement.
    """
    if repeats < MIN_REPEATS:
        raise ValueError(
            f"repeats must be >= {MIN_REPEATS}, got {repeats} "
            "(single-shot timings of sub-millisecond rows are pure noise)"
        )
    global _LAST_PEAK_RSS_KB, _LAST_TELEMETRY
    durations: List[float] = []
    results: List[Any] = []
    for iteration in range(warmup + repeats):
        argument = setup() if setup is not None else None
        start = time.perf_counter()
        result = run(argument) if setup is not None else run()
        elapsed = time.perf_counter() - start
        if iteration >= warmup:
            durations.append(elapsed)
            results.append(result)
    _LAST_PEAK_RSS_KB = peak_rss_kb()
    _LAST_TELEMETRY = telemetry.snapshot() if telemetry.enabled() else None
    return statistics.median(durations), results
