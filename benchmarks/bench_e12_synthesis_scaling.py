"""E12 — the decision procedure and measure synthesis at scale.

Paper context: fair termination is Π¹₁-complete in general (footnote 1),
but finite-state instances are decidable — and the completeness argument
is *constructive* there: the synthesiser emits a stack assignment that the
independent checker then verifies.  Rows: per workload family and size —
states, decision time burden proxies (transitions), synthesised stack
height, and checker verdict; every synthesised measure passes.  Benchmarks:
the full decide→synthesise→verify pipeline on a ~2.5k-state grid.
"""

from common import record_table

from repro.analysis import Table
from repro.completeness import synthesize_measure
from repro.fairness import check_fair_termination
from repro.measures import check_measure
from repro.ts import explore
from repro.workloads import (
    counter_grid,
    modulus_chain,
    nested_rings,
    token_ring,
)

WORKLOADS = [
    ("grid(9,9)", lambda: counter_grid(9, 9)),
    ("grid(19,19)", lambda: counter_grid(19, 19)),
    ("grid(49,49)", lambda: counter_grid(49, 49)),
    ("chain(2 stages)", lambda: modulus_chain(2)),
    ("chain(3 stages)", lambda: modulus_chain(3, fuel=5)),
    ("ring(32)", lambda: token_ring(32)),
    ("ring(128)", lambda: token_ring(128)),
    ("rings(8)", lambda: nested_rings(8)),
]


def pipeline(system):
    graph = explore(system)
    verdict = check_fair_termination(graph)
    assert verdict.fairly_terminates
    synthesis = synthesize_measure(graph)
    result = check_measure(graph, synthesis.assignment(), keep_witnesses=False)
    assert result.ok
    return graph, synthesis


def test_e12_synthesis_scaling(benchmark):
    table = Table(
        "E12 — decide → synthesise → verify on growing workloads",
        ["workload", "states", "transitions", "stack height", "regions",
         "verified"],
    )
    for name, make in WORKLOADS:
        graph, synthesis = pipeline(make())
        table.add(
            name,
            len(graph),
            len(graph.transitions),
            synthesis.max_stack_height(),
            synthesis.region_count(),
            "PASS",
        )
    record_table(table)
    benchmark(pipeline, counter_grid(49, 49))
