"""E16 — telemetry overhead and bit-identity on exploration.

The telemetry PR instrumented the engine end to end (spans, counters,
histograms, worker-delta aggregation — see docs/METHOD.md §Observability)
under one hard rule: collection must not change results, and *disabled*
collection must cost nothing measurable.  This bench checks both claims
on the engine-scaling families:

* **bit-identical graphs** — for every family, ``explore`` with telemetry
  collecting must produce the same
  :func:`~repro.engine.shard.graph_digest` as with telemetry off;
* **collection overhead** — enabled-vs-disabled exploration wall clock,
  reported per family as a ratio.  The disabled path is the default for
  every library caller, so the enabled ratio is the *price of observing*,
  not a tax on normal runs;
* **snapshot** — the enabled run's registry snapshot is validated against
  the stable schema (:func:`repro.telemetry.validate_snapshot`) and the
  largest family's snapshot is embedded in the output rows.

Gate (full scale only): enabled-collection overhead on the largest family
stays under ``MAX_ENABLED_OVERHEAD``.  ``ENGINE_BENCH_SMOKE=1`` shrinks
the workloads to CI size, where only the identity and schema checks are
meaningful (millisecond rows make ratios pure noise).  Rows land in
``BENCH_telemetry.json``.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from common import MIN_REPEATS, last_peak_rss_kb, record_table, timed_median

from repro import telemetry
from repro.analysis import Table
from repro.engine.shard import graph_digest
from repro.ts import explore
from repro.workloads import engine_scaling_suite

SMOKE = os.environ.get("ENGINE_BENCH_SMOKE") == "1"
SCALE = "smoke" if SMOKE else "full"
REPEATS = MIN_REPEATS
LARGEST = "grid"  # the family the overhead gate is judged on
MAX_ENABLED_OVERHEAD = 1.5  # enabled / disabled, full scale, largest family
OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_telemetry.json"


def _timed_explore(make_system):
    """``(median_seconds, digest)`` for exploring fresh instances.

    ``setup`` rebuilds the system outside the timed region so successor
    caches never carry over between iterations; repeats must agree on the
    digest, so a flaky exploration cannot masquerade as an overhead delta.
    """
    median, graphs = timed_median(
        lambda system: explore(system),
        repeats=REPEATS,
        setup=make_system,
    )
    digests = {graph_digest(graph) for graph in graphs}
    assert len(digests) == 1, "exploration must be run-to-run deterministic"
    return median, digests.pop()


def test_e16_telemetry_overhead():
    table = Table(
        "E16 — telemetry collection overhead on explore "
        f"({'smoke sizes' if SMOKE else 'full sizes'})",
        ["workload", "states", "off s", "on s", "on/off", "identical"],
    )
    rows = []
    overheads = {}
    telemetry.disable()
    telemetry.reset()
    for name, make in engine_scaling_suite(SCALE):
        off_s, off_digest = _timed_explore(make)
        telemetry.reset()
        telemetry.enable()
        try:
            on_s, on_digest = _timed_explore(make)
            snapshot = telemetry.snapshot()
        finally:
            telemetry.disable()
        telemetry.validate_snapshot(snapshot)
        assert on_digest == off_digest, (
            f"{name}: telemetry collection changed the explored graph"
        )
        states = snapshot["metrics"]["counters"].get("explore.states", 0)
        ratio = on_s / off_s if off_s > 0 else float("inf")
        overheads[name] = ratio
        table.add(
            name, states, f"{off_s:.3f}", f"{on_s:.3f}", f"{ratio:.2f}x",
            "yes",
        )
        rows.append({
            "workload": name,
            "states": states,
            "digest": off_digest,
            "disabled_seconds": off_s,
            "enabled_seconds": on_s,
            "enabled_overhead": ratio,
            "peak_rss_kb": last_peak_rss_kb(),
            "telemetry": snapshot if name.startswith(LARGEST) else None,
            "identical": True,
        })
        telemetry.reset()
    record_table(table)

    largest = next(name for name in overheads if name.startswith(LARGEST))
    verdict = {
        "gated": not SMOKE,
        "largest": largest,
        "enabled_overhead": overheads[largest],
        "max_enabled_overhead": MAX_ENABLED_OVERHEAD,
    }
    OUTPUT.write_text(json.dumps({
        "experiment": "E16",
        "scale": SCALE,
        "verdict": verdict,
        "rows": rows,
    }, indent=2) + "\n")
    if not SMOKE:
        assert overheads[largest] <= MAX_ENABLED_OVERHEAD, (
            f"telemetry collection cost {overheads[largest]:.2f}x on "
            f"{largest} — the observing price must stay under "
            f"{MAX_ENABLED_OVERHEAD}x"
        )
