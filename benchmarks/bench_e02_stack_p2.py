"""E2 — §3.2, P2/P2': one unfairness hypothesis on top of T.

Paper artifact: ``P2'`` annotates P2 with ``(ℓa / T: max{y−x, 0})``; the
local conditions (V_a)/(V_T) hold on every iteration.  Rows: per distance,
the active-level histogram — level 0 on exactly the ``la`` steps, level 1
on exactly the ``lb`` steps, matching the (V_T)/(V_a) split of §3.2 — and
Floyd's method failing on the same program.  The benchmark times the
explore-and-check cycle at distance 500.
"""

from common import record_table

from repro.analysis import Table, histogram_line
from repro.baselines import TerminationMeasure, check_termination_measure
from repro.measures import annotate
from repro.ts import explore
from repro.workloads import p2, p2_assertion

DISTANCES = (10, 100, 500, 2000)


def check_at(distance: int):
    graph = explore(p2(distance))
    result = annotate(p2(distance), p2_assertion()).check(graph=graph)
    return graph, result


def test_e02_stack_assertion_p2(benchmark):
    table = Table(
        "E2 — P2' (ℓa / T: max{y−x, 0})",
        ["distance", "states", "stack check", "active levels", "Floyd alone"],
    )
    for distance in DISTANCES:
        graph, result = check_at(distance)
        assert result.is_fair_termination_measure
        histogram = result.active_levels()
        assert histogram == {0: distance, 1: distance}
        floyd = check_termination_measure(
            graph, TerminationMeasure(lambda s: max(s["y"] - s["x"], 0))
        )
        table.add(
            distance,
            len(graph),
            "PASS",
            histogram_line(histogram),
            f"FAIL ({len(floyd.violations)} skip steps)",
        )
    record_table(table)
    benchmark(check_at, 500)
