"""E11 — §2 + §5: fair termination as a Rabin condition; Rabin measures.

Paper artifacts: (a) "the condition of fair termination is but an instance
of a Rabin pairs condition" — we encode unfairness as one Rabin pair per
command over command-annotated states and check it agrees with the
strong-fairness spec on a batch of lassos; (b) the three §5 differences
that block translating stack measures directly into Rabin measures —
functional colouring, new-state-only enabledness, determined active
hypothesis — each demonstrated on a concrete measure.  The benchmark times
Rabin-condition evaluation over the harvested lassos.
"""

from common import record_table

from repro.analysis import Table
from repro.fairness import STRONG_FAIRNESS
from repro.measures import annotate
from repro.rabin import (
    CommandHistorySystem,
    check_rabin_style,
    classify_stack_as_rabin,
    fair_termination_rabin_condition,
)
from repro.ts import (
    cycle_through_all,
    decompose,
    explore,
    find_path_indices,
    internal_transitions,
    lasso_from_indices,
)
from repro.workloads import p2, p2_assertion, p4_bounded, p4_assertion, random_system


def harvest_annotated_lassos():
    """Lassos over command-annotated states, with ground-truth fairness."""
    cases = []
    for seed in range(120):
        base = random_system(seed, states=7, commands=3, extra_edges=6)
        annotated = CommandHistorySystem(base)
        graph = explore(annotated)
        condition = fair_termination_rabin_condition(base)
        for component in decompose(graph).components:
            if not internal_transitions(graph, component):
                continue
            cycle = cycle_through_all(graph, component)
            stem = find_path_indices(graph, graph.initial_indices, cycle[0].source)
            lasso = lasso_from_indices(graph, stem, cycle)
            cases.append((annotated, condition, lasso))
    return cases


def evaluate(cases):
    agreements = 0
    unfair_count = 0
    for annotated, condition, lasso in cases:
        rabin_says_unfair = condition.satisfied_on_lasso(lasso)
        spec_says_unfair = not STRONG_FAIRNESS.is_fair(
            lasso, annotated.enabled, annotated.commands()
        )
        if rabin_says_unfair == spec_says_unfair:
            agreements += 1
        if spec_says_unfair:
            unfair_count += 1
    return agreements, unfair_count


def test_e11_rabin_condition_and_measures(benchmark):
    cases = harvest_annotated_lassos()
    agreements, unfair_count = evaluate(cases)
    assert agreements == len(cases)

    table = Table(
        "E11a — unfairness as a Rabin pairs condition (one pair per command)",
        ["lassos tested", "unfair", "fair", "Rabin ≡ strong-fairness spec"],
    )
    table.add(len(cases), unfair_count, len(cases) - unfair_count,
              f"{agreements}/{len(cases)}")
    record_table(table)

    # §5 differences: are the paper's own annotations Rabin-translatable?
    diff_table = Table(
        "E11b — §5: stack measures under the stricter Rabin rules",
        ["measure", "valid stack measure", "valid Rabin-style measure",
         "blocking differences"],
    )
    for name, program, assertion in [
        ("P2'", p2(4), p2_assertion()),
        ("P4b'", p4_bounded(2, 6, 3), p4_assertion(3)),
    ]:
        graph = explore(program)
        stack_ok = annotate(program, assertion).check(graph=graph).ok
        assignment = assertion.compile()
        rabin_report = check_rabin_style(graph, assignment)
        verdict = classify_stack_as_rabin(graph, assignment)
        diff_table.add(
            name,
            "yes" if stack_ok else "no",
            "yes" if rabin_report.ok else "NO",
            str(verdict),
        )
        assert stack_ok
    record_table(diff_table)

    # §5's opening point, quantified: the coloured tree behind a measure
    # "has to be explicitly described", and that description grows with the
    # state space; the stack assertion denoting it is constant program text.
    from repro.rabin import description_sizes

    tree_table = Table(
        "E11c — explicit coloured tree vs self-contained assertion (P2')",
        ["distance", "states", "explicit tree vertices", "assertion chars"],
    )
    assertion = p2_assertion()
    text = assertion.render()
    previous = 0
    for distance in (10, 100, 1000):
        graph = explore(p2(distance))
        vertices, chars = description_sizes(graph, assertion.compile(), text)
        assert vertices > previous  # the tree keeps growing...
        previous = vertices
        tree_table.add(distance, len(graph), vertices, chars)  # ...text doesn't
    record_table(tree_table)

    benchmark(evaluate, cases)
