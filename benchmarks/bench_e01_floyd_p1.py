"""E1 — §3.1, P1/P1': Floyd's method on the plain counting loop.

Paper artifact: the termination measure ``μ^T = max{y−x, 0}`` decreases on
every iteration of ``P1``.  Rows: loop distance sweep — states explored,
transitions checked, violations (always 0).  The benchmark times one full
explore-and-check cycle at distance 1000.
"""

from common import record_table

from repro.analysis import Table
from repro.baselines import TerminationMeasure, check_termination_measure
from repro.ts import explore
from repro.workloads import p1

DISTANCES = (10, 100, 1000, 10_000)


def check_at(distance: int):
    graph = explore(p1(distance))
    measure = TerminationMeasure(
        lambda s: max(s["y"] - s["x"], 0), description="max{y-x, 0}"
    )
    return graph, check_termination_measure(graph, measure)


def test_e01_floyd_p1(benchmark):
    table = Table(
        "E1 — P1' (Floyd loop variant max{y−x, 0})",
        ["distance", "states", "transitions", "violations", "verdict"],
    )
    for distance in DISTANCES:
        graph, result = check_at(distance)
        assert result.ok and result.complete
        table.add(
            distance,
            len(graph),
            result.transitions_checked,
            len(result.violations),
            "terminates (measure verified)",
        )
    record_table(table)
    benchmark(check_at, 1000)
