"""E7 — Theorem 2: quotienting the tree measure onto the original program.

Paper artifact: ``θ(p)`` is the lexicographic minimum of the tree measure
over histories ending at ``p``; the quotient satisfies the verification
conditions on the *unaltered* program.  Rows: per program — exactness
(finite tree vs bounded), candidate depth, minimiser-depth spread, and the
re-checked VCs; plus the convergence phenomenon (frontier candidates chase
phantom minima — the same quotient FAILS when the minimum ranges all the
way to the exploration frontier).  The benchmark times the quotient on P2.
"""

from common import record_table

from repro.analysis import Table
from repro.completeness import theorem2_quotient
from repro.workloads import p1, p2, p4_bounded


def quotient_p2():
    return theorem2_quotient(p2(4), max_depth=12)


def test_e07_theorem2_quotient(benchmark):
    table = Table(
        "E7 — Theorem 2 quotient onto the original program",
        ["program", "tree depth", "candidates to depth", "exact",
         "minimiser depths", "VCs on original"],
    )
    cases = [
        ("P1(4)", p1(4), 10, None),
        ("P2(4)", p2(4), 12, None),
        ("P4b(2,4,2)", p4_bounded(2, 4, 2), 14, None),
    ]
    for name, program, depth, candidate in cases:
        result = theorem2_quotient(
            program, max_depth=depth, candidate_depth=candidate
        )
        verification = result.verify()
        assert verification.ok, name
        spread = sorted(set(result.minimiser_depth.values()))
        table.add(
            name,
            depth,
            depth if result.exact else depth // 2,
            "yes (finite tree)" if result.exact else "bounded",
            f"{spread[0]}..{spread[-1]}",
            "PASS",
        )
    # The divergent variant: minimising over frontier histories fails.
    divergent = theorem2_quotient(
        p4_bounded(2, 4, 2), max_depth=14, candidate_depth=14
    )
    bad = divergent.verify()
    table.add(
        "P4b(2,4,2)",
        14,
        "14 (= frontier)",
        "bounded",
        "chases frontier",
        f"FAIL ({len(bad.violations)} violations — phantom minima)",
    )
    assert not bad.ok
    record_table(table)
    benchmark(quotient_p2)
