"""Unit tests for response properties and the obligation dynamics."""

from repro.response import ResponseProperty, termination_as_response
from repro.workloads import p2


def prop(trigger, response):
    return ResponseProperty(name="t", trigger=trigger, response=response)


class TestObligationDynamics:
    def test_trigger_raises(self):
        p = prop(lambda s: s == "A", lambda s: s == "Z")
        assert p.step_pending(False, "A") is True

    def test_response_discharges(self):
        p = prop(lambda s: s == "A", lambda s: s == "Z")
        assert p.step_pending(True, "Z") is False

    def test_pending_persists(self):
        p = prop(lambda s: s == "A", lambda s: s == "Z")
        assert p.step_pending(True, "B") is True
        assert p.step_pending(False, "B") is False

    def test_response_wins_over_trigger(self):
        # A state that both triggers and responds leaves no obligation:
        # the request is served on arrival.
        p = prop(lambda s: True, lambda s: True)
        assert p.step_pending(False, "X") is False
        assert p.initial_pending("X") is False

    def test_initial_pending(self):
        p = prop(lambda s: s == "A", lambda s: s == "Z")
        assert p.initial_pending("A") is True
        assert p.initial_pending("B") is False

    def test_str_mentions_name(self):
        assert "t" in str(prop(lambda s: True, lambda s: False))


class TestTerminationAsResponse:
    def test_pending_iff_running(self):
        program = p2(3)
        p = termination_as_response(program)
        running = program.state(x=0, y=3)
        terminal = program.state(x=3, y=3)
        assert p.initial_pending(running)
        assert not p.step_pending(True, terminal)
        assert p.step_pending(True, running)
